//! Offline stand-in for the subset of `crossbeam` the workspace uses:
//! `crossbeam::channel` MPMC channels (bounded + unbounded).
//!
//! Implemented as a `Mutex<VecDeque>` + two `Condvar`s. This trades the
//! lock-free fast path of real crossbeam for zero dependencies; the channel
//! semantics (cloneable senders *and* receivers, disconnect on last drop,
//! blocking bounded send, `recv_timeout`) match what the solver and the
//! virtual-device workers rely on.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        /// `None` = unbounded.
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half. Cloneable; the channel disconnects when the last
    /// sender is dropped.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half. Cloneable (MPMC); the channel disconnects for
    /// senders when the last receiver is dropped.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// The message could not be delivered because all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error from [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error from [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// An unbounded channel: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A bounded channel: `send` blocks while `cap` messages are queued.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    fn lock<T>(chan: &Chan<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
        chan.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    impl<T> Sender<T> {
        /// Deliver `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut inner = lock(&self.0);
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
                if !full {
                    inner.queue.push_back(msg);
                    drop(inner);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                inner = self
                    .0
                    .not_full
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Whether a bounded channel is at capacity (always `false` for
        /// unbounded channels).
        pub fn is_full(&self) -> bool {
            let inner = lock(&self.0);
            inner.cap.is_some_and(|c| inner.queue.len() >= c)
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            lock(&self.0).queue.len()
        }

        /// Whether no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.0).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.0);
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                // Wake receivers blocked in recv/recv_timeout so they can
                // observe the disconnect.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Take a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = lock(&self.0);
            match inner.queue.pop_front() {
                Some(v) => {
                    drop(inner);
                    self.0.not_full.notify_one();
                    Ok(v)
                }
                None if inner.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = lock(&self.0);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .0
                    .not_empty
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Block until a message arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = lock(&self.0);
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .0
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Queued message count.
        pub fn len(&self) -> usize {
            lock(&self.0).queue.len()
        }

        /// Whether no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.0).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = lock(&self.0);
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                // Wake senders blocked on a full bounded channel so they can
                // observe the disconnect.
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            assert!(tx.is_full());
            let t = thread::spawn(move || tx.send(2).unwrap());
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(2));
            t.join().unwrap();
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn mpmc_cloned_receivers_share_the_stream() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Ok(v) = rx1.try_recv() {
                got.push(v);
                if let Ok(v) = rx2.try_recv() {
                    got.push(v);
                }
            }
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }
    }
}
