//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no registry access. The shim has two layers:
//!
//! * The `Serialize`/`Deserialize` trait names plus no-op derive macros, so
//!   types annotated for the real serde compile unchanged. When a crates.io
//!   backend lands, point the `serde` workspace dependency back at the
//!   registry and the annotations light up.
//! * [`json`] — a real (small) JSON value model with a writer and parser,
//!   standing in for `serde_json`. The wire types in `dabs-server` and the
//!   CLI's `--json` output implement explicit `to_json`/`from_json`
//!   conversions against it.

pub mod json;

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
