//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no registry access, and the workspace only ever
//! *derives* `Serialize`/`Deserialize` — nothing serializes yet. This shim
//! supplies the two trait names plus no-op derive macros so the annotated
//! types compile unchanged. When a real serialization backend (serde_json,
//! bincode, …) lands, point the `serde` workspace dependency back at
//! crates.io and everything keeps working.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
