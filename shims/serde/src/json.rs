//! Minimal JSON data model, writer, and parser — the shim's stand-in for
//! `serde_json`.
//!
//! The workspace's wire formats (the `dabs-server` line protocol, the CLI's
//! `--json` output) need an actual serialization backend, not just the trait
//! names. Rather than pulling `serde_json` into an offline build, this module
//! provides a small self-describing [`Json`] value with a compact writer and
//! a strict recursive-descent parser. Wire types implement explicit
//! `to_json`/`from_json` conversions instead of derives — the set of types
//! that cross a process boundary is small and the explicit form doubles as
//! wire-format documentation.
//!
//! Integers are kept as `i64` (never routed through `f64`), so energies and
//! counters round-trip exactly.

use std::fmt;

/// A JSON value.
///
/// Object fields preserve insertion order (`Vec` of pairs, not a map): the
/// protocol cares about stable, readable output, and objects are tiny.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integer literal (no `.`/exponent). Exact for the full `i64` range.
    Int(i64),
    /// Any literal with a fraction or exponent.
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    // Typed field accessors: `get` + coercion in one step, `None` when the
    // field is absent, null, or the wrong type.

    pub fn get_i64(&self, key: &str) -> Option<i64> {
        self.get(key).and_then(Json::as_i64)
    }

    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    pub fn get_bool(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }

    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    /// Saturates at `i64::MAX`: the `Int` payload is signed, and for the
    /// wire's unsigned fields (batch budgets, epoch-ms deadlines) a clamped
    /// huge value beats a silent wrap to a negative that `as_u64` would
    /// then drop entirely.
    fn from(v: u64) -> Self {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    /// Saturates at `i64::MAX` (see `From<u64>`).
    fn from(v: usize) -> Self {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Float(v)
    }
}

impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Self {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// Parse or structure error, with a byte offset for parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl fmt::Display for Json {
    /// Compact single-line form — exactly what the newline-delimited
    /// protocol needs.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Int(i) => write!(f, "{i}"),
            Json::Float(x) => {
                if x.is_finite() {
                    // Keep a syntactic marker so the value re-parses as
                    // Float: integral floats get `.1` precision, and beyond
                    // 1e15 (where `{x:.1}` output gets unwieldy and Rust's
                    // plain Display would emit a bare integer literal)
                    // exponent form.
                    if x.fract() != 0.0 {
                        write!(f, "{x}")
                    } else if x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x:e}")
                    }
                } else {
                    f.write_str("null") // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Maximum container nesting the parser accepts. The parser is recursive
/// and fed directly from untrusted TCP lines, so without a cap a request of
/// ~100k `[` characters overflows the connection thread's stack and aborts
/// the whole process. The protocol's real documents nest a handful of
/// levels; 128 is far above any legitimate message and far below any stack.
pub const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            message: msg.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("invalid literal, expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character {:?}", b as char))),
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_PARSE_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.err(format!("invalid escape {:?}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    self.pos -= 1;
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    if c == '"' || c == '\\' {
                        continue; // handled on next iteration
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("invalid number {text:?}")))
        } else {
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                // Out-of-range integer literal: degrade to f64 like serde_json
                // does with arbitrary_precision off.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err(format!("invalid number {text:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Json) -> Json {
        Json::parse(&v.to_string()).expect("round trip parse")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(1.5),
            Json::Float(-2.25e10),
            Json::str(""),
            Json::str("hello"),
        ] {
            assert_eq!(round_trip(&v), v, "{v}");
        }
    }

    #[test]
    fn i64_extremes_are_exact() {
        let v = Json::parse("9223372036854775807").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MAX));
        let v = Json::parse("-9223372036854775808").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1F600}µ";
        let v = Json::str(s);
        assert_eq!(round_trip(&v), v);
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::str("Aé😀")
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("op", Json::str("submit")),
            ("ids", Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            (
                "inner",
                Json::obj([("x", Json::Null), ("y", Json::Bool(true))]),
            ),
        ]);
        assert_eq!(round_trip(&v), v);
        assert_eq!(v.get_str("op"), Some("submit"));
        assert_eq!(v.get("ids").and_then(Json::as_arr).map(<[_]>::len), Some(2));
    }

    #[test]
    fn whitespace_tolerated_garbage_rejected() {
        assert!(Json::parse("  { \"a\" : [ 1 , 2 ] }\n").is_ok());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn floats_reparse_as_floats() {
        // The writer must keep a syntactic float marker for integral floats,
        // including magnitudes where Rust's plain Display would print a bare
        // integer literal (no '.', no exponent).
        for x in [
            3.0,
            -3.0,
            1e15,
            -1e15,
            1e16,
            9.007199254740992e18,
            1e300,
            f64::MAX,
        ] {
            let v = Json::Float(x);
            match round_trip(&v) {
                Json::Float(f) => assert_eq!(f, x, "{v}"),
                other => panic!("expected float for {x}, got {other:?}"),
            }
        }
    }

    #[test]
    fn nesting_depth_is_capped() {
        // One level under the cap parses; at the cap the parser must return
        // an error instead of recursing (a ~100k-deep document would
        // otherwise overflow the stack and abort the process).
        let ok = format!(
            "{}null{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
        let deep = format!(
            "{}null{}",
            "[".repeat(MAX_PARSE_DEPTH + 1),
            "]".repeat(MAX_PARSE_DEPTH + 1)
        );
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let hostile = "[".repeat(100_000);
        assert!(Json::parse(&hostile).is_err());
        // Mixed containers count object levels too, and siblings do not
        // accumulate depth.
        let obj_deep = format!("{}1{}", "{\"k\":[".repeat(70), "]}".repeat(70));
        assert!(Json::parse(&obj_deep).is_err());
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn u64_conversion_saturates_instead_of_wrapping() {
        assert_eq!(Json::from(u64::MAX).as_i64(), Some(i64::MAX));
        assert_eq!(Json::from(u64::MAX).as_u64(), Some(i64::MAX as u64));
        assert_eq!(Json::from(7u64).as_u64(), Some(7));
    }

    #[test]
    fn typed_getters() {
        let v = Json::parse("{\"i\":-4,\"u\":7,\"b\":true,\"s\":\"x\",\"f\":0.5}").unwrap();
        assert_eq!(v.get_i64("i"), Some(-4));
        assert_eq!(v.get_u64("u"), Some(7));
        assert_eq!(v.get_u64("i"), None, "negative is not u64");
        assert_eq!(v.get_bool("b"), Some(true));
        assert_eq!(v.get_str("s"), Some("x"));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get_i64("missing"), None);
    }
}
