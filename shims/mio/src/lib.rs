//! Offline stand-in for [mio](https://docs.rs/mio): readiness-based I/O
//! event polling over raw Linux `epoll`.
//!
//! The build environment has no cargo registry, so this shim implements the
//! small slice of mio's surface the workspace uses — [`Poll`], [`Events`],
//! [`Token`], [`Interest`], [`Waker`] — directly on the `epoll` family of
//! syscalls (declared as `extern "C"` against the libc the Rust standard
//! library already links; no `libc` crate needed).
//!
//! Deliberate divergences from real mio, documented here because call sites
//! rely on them:
//!
//! * **Level-triggered**, not edge-triggered: an event keeps firing while
//!   the condition holds, so a handler that does not fully drain a socket is
//!   re-notified on the next poll instead of hanging. This makes the event
//!   loop's pause/resume read-interest dance (backpressure) simpler and is
//!   why [`Waker`] exposes an explicit [`Waker::drain`].
//! * Registration takes any [`AsRawFd`] source directly — no
//!   `mio::net` wrapper types, `std::net` sockets register as-is (callers
//!   set them non-blocking themselves).
//! * Only Linux is supported, matching the repo's target environment.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// Identifies one registered event source in a poll's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Which readiness classes a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const READABLE: Interest = Interest(0b01);
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combine two interests (named `add` for real-mio API compatibility).
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }

    fn epoll_mask(self) -> u32 {
        let mut mask = 0;
        if self.is_readable() {
            // RDHUP rides with read interest only: a write-only
            // registration on a half-closed socket must not level-fire
            // forever on the peer's FIN.
            mask |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if self.is_writable() {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

/// The raw syscall layer. Everything `unsafe` in this crate lives here.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o0004000;

    /// Linux's `struct epoll_event`. Packed on x86_64 (the kernel ABI);
    /// `data` carries the registration's token.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    // The libc the standard library links already exports these; declaring
    // them here avoids a `libc` crate dependency the offline build cannot
    // fetch.
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        // SAFETY: epoll_create1 takes no pointers; the flag is a valid
        // constant and the return value is checked for -1/errno.
        check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
    }

    pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
        let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
        // SAFETY: `ptr` is either null (only for EPOLL_CTL_DEL, where the
        // kernel ignores it) or a valid, live `EpollEvent` borrowed for the
        // duration of the call.
        check(unsafe { epoll_ctl(epfd, op, fd, ptr) })?;
        Ok(())
    }

    /// Wait for events; retries on EINTR. Returns how many slots of `buf`
    /// were filled.
    pub fn wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: `buf` is a live, writable slice and `maxevents` is
            // exactly its length, so the kernel writes only within bounds.
            let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
            match check(n) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    pub fn eventfd_new() -> io::Result<RawFd> {
        // SAFETY: eventfd takes no pointers; flags are valid constants and
        // the return value is checked for -1/errno.
        check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
    }

    pub fn close_fd(fd: RawFd) {
        // SAFETY: the callers own `fd` (created by epoll_create/eventfd in
        // this module) and call this exactly once, from Drop.
        let _ = unsafe { close(fd) };
    }

    /// Write one u64 to an eventfd (the wake signal).
    pub fn eventfd_write(fd: RawFd) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: the buffer is a live 8-byte value, the exact size an
        // eventfd write requires.
        let n = unsafe { write(fd, (&raw const one).cast::<u8>(), 8) };
        // EAGAIN means the counter is already saturated — the wakeup is
        // pending either way, so that is success for our purposes.
        if n == 8 || io::Error::last_os_error().kind() == io::ErrorKind::WouldBlock {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    }

    /// Read the eventfd counter down to zero (clears the level-triggered
    /// readiness).
    pub fn eventfd_drain(fd: RawFd) {
        let mut buf = [0u8; 8];
        // SAFETY: the buffer is a live 8-byte array, the exact size an
        // eventfd read produces; a short/failed read (EAGAIN once drained)
        // just ends the drain.
        while unsafe { read(fd, buf.as_mut_ptr(), 8) } == 8 {}
    }
}

/// One readiness notification out of [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    events: u32,
    token: u64,
}

impl Event {
    pub fn token(&self) -> Token {
        Token(self.token as usize)
    }

    pub fn is_readable(&self) -> bool {
        self.events & (sys::EPOLLIN | sys::EPOLLHUP) != 0
    }

    pub fn is_writable(&self) -> bool {
        self.events & sys::EPOLLOUT != 0
    }

    pub fn is_error(&self) -> bool {
        self.events & sys::EPOLLERR != 0
    }

    /// The peer shut down its write half (or the connection is gone).
    pub fn is_read_closed(&self) -> bool {
        self.events & (sys::EPOLLRDHUP | sys::EPOLLHUP) != 0
    }
}

/// Reusable buffer of readiness events.
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    pub fn with_capacity(cap: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; cap.max(1)],
            len: 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| Event {
            // Copy out of the packed struct before use.
            events: e.events,
            token: e.data,
        })
    }
}

impl std::fmt::Debug for Events {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Events").field("len", &self.len).finish()
    }
}

/// The epoll instance: register sources, wait for readiness.
#[derive(Debug)]
pub struct Poll {
    epfd: RawFd,
}

impl Poll {
    pub fn new() -> io::Result<Poll> {
        Ok(Poll {
            epfd: sys::epoll_create()?,
        })
    }

    /// Start watching `source` for `interest`, tagged with `token`.
    /// Level-triggered (see the module docs).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.epoll_mask(),
            data: token.0 as u64,
        };
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            source.as_raw_fd(),
            Some(&mut ev),
        )
    }

    /// Replace an existing registration's token/interest.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events: interest.epoll_mask(),
            data: token.0 as u64,
        };
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            source.as_raw_fd(),
            Some(&mut ev),
        )
    }

    /// Stop watching `source`.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, source.as_raw_fd(), None)
    }

    /// Block until at least one event is ready, `timeout` passes (`None` =
    /// forever), or a [`Waker`] fires. EINTR is retried internally.
    pub fn poll(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            // Round up so a 1ns timeout doesn't busy-spin as 0ms.
            Some(t) => {
                i32::try_from(t.as_millis().max(u128::from(!t.is_zero()))).unwrap_or(i32::MAX)
            }
            None => -1,
        };
        events.len = sys::wait(self.epfd, &mut events.buf, timeout_ms)?;
        Ok(())
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// Cross-thread wakeup for a [`Poll`]: an eventfd registered for
/// readability. Any thread may call [`Waker::wake`]; the polling thread sees
/// the waker's token and calls [`Waker::drain`] to clear it (level-triggered
/// divergence from real mio, which clears implicitly).
#[derive(Debug)]
pub struct Waker {
    efd: RawFd,
}

impl Waker {
    /// Create and register with `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let efd = sys::eventfd_new()?;
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN,
            data: token.0 as u64,
        };
        if let Err(e) = sys::ctl(poll.epfd, sys::EPOLL_CTL_ADD, efd, Some(&mut ev)) {
            sys::close_fd(efd);
            return Err(e);
        }
        Ok(Waker { efd })
    }

    /// Make the next (or current) `poll` call return with this waker's
    /// token. Cheap and safe from any thread; coalesces with pending wakes.
    pub fn wake(&self) -> io::Result<()> {
        sys::eventfd_write(self.efd)
    }

    /// Clear pending wakeups so the level-triggered registration stops
    /// firing. Call from the polling thread when the waker's token shows up.
    pub fn drain(&self) {
        sys::eventfd_drain(self.efd);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.efd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    const LISTENER: Token = Token(0);
    const WAKER: Token = Token(1);

    #[test]
    fn poll_times_out_when_idle() {
        let poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(8);
        let t0 = Instant::now();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poll = Poll::new().unwrap();
        poll.register(&listener, LISTENER, Interest::READABLE)
            .unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("accept readiness");
        assert_eq!(ev.token(), LISTENER);
        assert!(ev.is_readable());
    }

    #[test]
    fn level_triggering_refires_until_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        client.write_all(b"hi").unwrap();

        let poll = Poll::new().unwrap();
        poll.register(&server, Token(7), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        // Unread data keeps the source readable across polls.
        for _ in 0..2 {
            poll.poll(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert!(events
                .iter()
                .any(|e| e.token() == Token(7) && e.is_readable()));
        }
        // Drain, then the readiness goes away.
        let mut buf = [0u8; 8];
        let mut srv = &server;
        assert_eq!(srv.read(&mut buf).unwrap(), 2);
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(!events.iter().any(|e| e.token() == Token(7)));
    }

    #[test]
    fn interest_add_combines_and_reregister_switches() {
        let both = Interest::READABLE.add(Interest::WRITABLE);
        assert!(both.is_readable() && both.is_writable());

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let poll = Poll::new().unwrap();
        poll.register(&server, Token(3), Interest::READABLE)
            .unwrap();
        // An idle established socket is writable but not readable.
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty(), "no data yet, no readable event");
        poll.reregister(&server, Token(3), both).unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token() == Token(3)).unwrap();
        assert!(ev.is_writable());
        poll.deregister(&server).unwrap();
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        drop(client);
    }

    #[test]
    fn peer_shutdown_reports_read_closed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        let poll = Poll::new().unwrap();
        poll.register(&server, Token(9), Interest::READABLE)
            .unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token() == Token(9)).unwrap();
        assert!(ev.is_read_closed());
        assert!(ev.is_readable(), "EOF also reads as readable (read -> 0)");
    }

    #[test]
    fn waker_wakes_poll_from_another_thread_and_drains() {
        let poll = Poll::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poll, WAKER).unwrap());
        let remote = std::sync::Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            remote.wake().unwrap();
            remote.wake().unwrap(); // coalesces
        });
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("waker event");
        assert_eq!(ev.token(), WAKER);
        waker.drain();
        // Once drained the level-triggered eventfd stops firing.
        poll.poll(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        handle.join().unwrap();
    }
}
