//! Offline stand-in for the subset of `criterion` used by
//! `crates/bench/benches/microbench.rs`: `Criterion`, benchmark groups,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's full statistical pipeline, each benchmark is
//! warmed up briefly and then timed for a fixed wall-clock budget; the
//! mean iteration time is printed. Good enough to compare hot paths
//! before/after a change while staying dependency-free.

use std::time::{Duration, Instant};

/// Identity function the optimiser cannot see through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id for `function_id` at `parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        Self {
            label: label.to_owned(),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.label
    }
}

/// Passed to the closure given to `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    /// Mean time per iteration, recorded by `iter`.
    mean: Duration,
    measure_for: Duration,
}

impl Bencher {
    /// Time `routine`, storing the mean per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: a few iterations to fault in caches and pages.
        for _ in 0..8 {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure_for {
            black_box(routine());
            iters += 1;
        }
        self.mean = start.elapsed() / (iters.max(1) as u32);
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measure_for: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(None, id.into(), self.measure_for, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion API shim: sample count is ignored (we time for a fixed
    /// wall-clock budget instead), but the call must compile.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), id.into(), self.criterion.measure_for, f);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), id, self.criterion.measure_for, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (no-op; kept for API fidelity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: BenchmarkId,
    measure_for: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        mean: Duration::ZERO,
        measure_for,
    };
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label,
    };
    println!("{full:<40} {:>12.1?}/iter", b.mean);
}

/// Collect benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
