//! Offline stand-in for the subset of `parking_lot` the workspace uses:
//! a `Mutex` whose `lock()` returns the guard directly (no poison `Result`).
//! Backed by `std::sync::Mutex`; poisoning is swallowed via `into_inner`,
//! which matches parking_lot's no-poisoning semantics.

use std::fmt;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
