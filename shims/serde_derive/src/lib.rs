//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` backing the
//! offline serde shim. Emitting an empty token stream is sound here because
//! nothing in the workspace bounds on the serde traits yet; the derive only
//! needs to be *resolvable* for the annotated types to compile.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
