//! Offline stand-in for the subset of `proptest` used by the DABS test
//! suite: the `proptest!` macro, `Strategy` with `prop_map` /
//! `prop_flat_map` / `prop_filter`, integer-range and tuple strategies,
//! `collection::vec`, `any::<T>()`, `Just`, `prop_assert*`, and
//! `prop_assume!`.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! test dependency:
//!
//! * **No shrinking** — a failing case reports its inputs' `Debug` form but
//!   is not minimised.
//! * **Deterministic RNG** — cases derive from a fixed seed (keyed by the
//!   test name), so failures reproduce exactly across runs.

pub mod test_runner {
    /// Per-test configuration. Only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of passing cases required.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// A `prop_assert*` failed; the test fails.
        Fail(String),
    }

    /// splitmix64 — a tiny deterministic generator for case inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded from `seed`.
        pub fn deterministic(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant at test-input quality.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// How many consecutive `prop_filter` rejections abort a sample.
    const FILTER_RETRY_LIMIT: u32 = 10_000;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from a strategy built from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values satisfying `pred` (re-drawing otherwise).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_RETRY_LIMIT {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected every candidate", self.reason);
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    if span > u64::MAX as u128 {
                        // Full 2^64-wide domain (only reachable for 64-bit
                        // types): every bit pattern is a valid value.
                        rng.next_u64() as $t
                    } else {
                        (lo + rng.below(span as u64) as i128) as $t
                    }
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy form of [`Arbitrary`]; see [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive length bounds for [`vec`](fn@vec).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element drawn from `element`, length from
    /// `size` (a `usize`, `a..b`, or `a..=b`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                self.size.min + rng.below((self.size.max - self.size.min + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0usize..10, seed in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Key the RNG stream by the test name so distinct properties
            // see distinct inputs, deterministically across runs.
            let seed = stringify!($name)
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
                });
            let mut rng = $crate::test_runner::TestRng::deterministic(seed);
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                // The closure gives `prop_assert*`/`prop_assume!` a `return`
                // target distinct from the test fn; calling it in place is
                // the point.
                #[allow(clippy::redundant_closure_call)]
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 256 + 16 * config.cases,
                            "prop_assume! rejected too many cases ({rejected})"
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed: {msg}", stringify!($name));
                    }
                }
            }
        }
    )*};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(v in collection::vec(any::<u16>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn flat_map_filter_compose(
            pair in (2usize..20).prop_flat_map(|n| {
                ((0..n), (0..n)).prop_filter("distinct", |(a, b)| a != b)
            }),
        ) {
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..4) {
            prop_assume!(x != 3);
            prop_assert!(x < 3);
        }

        #[test]
        fn just_and_map(v in Just(21usize).prop_map(|x| x * 2)) {
            prop_assert_eq!(v, 42);
        }

        #[test]
        fn full_domain_inclusive_ranges_do_not_panic(
            a in i64::MIN..=i64::MAX,
            b in 0u64..=u64::MAX,
            c in u8::MIN..=u8::MAX,
        ) {
            // The 2^64-wide spans must not overflow to a zero modulus.
            let _ = (a, b, c);
        }
    }
}
