//! Chrome `trace_event` JSON export.
//!
//! Emits the "JSON Object Format" understood by `chrome://tracing` and
//! Perfetto: `{"traceEvents": [...], "displayTimeUnit": "ms"}` where each
//! event carries `name`/`cat`/`ph`/`ts`/`pid`/`tid` (plus `dur` for
//! complete spans and an `args` object). Written by hand — this crate has
//! no serializer dependency — with full string escaping.

use crate::trace::TraceEvent;

/// One exportable trace event with owned strings, so callers outside the
/// hot path (e.g. a CLI reconstructing a job timeline fetched over the
/// wire) can build events from dynamic data.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Comma-separated category list.
    pub cat: String,
    /// Chrome phase code: `'X'` complete, `'i'` instant, `'B'`/`'E'`
    /// span open/close.
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts_us: u64,
    /// Duration in microseconds (only emitted for `'X'`).
    pub dur_us: u64,
    /// Process lane.
    pub pid: u64,
    /// Thread lane.
    pub tid: u64,
    /// Numeric arguments, shown in the trace viewer's detail pane.
    pub args: Vec<(String, i64)>,
}

impl From<&TraceEvent> for ChromeEvent {
    fn from(ev: &TraceEvent) -> Self {
        let mut args = vec![("id".to_string(), ev.id as i64)];
        if !ev.arg_name.is_empty() {
            args.push((ev.arg_name.to_string(), ev.arg));
        }
        ChromeEvent {
            name: ev.name.to_string(),
            cat: ev.cat.to_string(),
            ph: ev.ph.code(),
            ts_us: ev.ts_us,
            dur_us: ev.dur_us,
            pid: 1,
            tid: ev.tid,
            args,
        }
    }
}

/// Escape `s` for inclusion in a JSON string literal. The output is pure
/// printable ASCII: control characters (C0, DEL, C1) and all non-ASCII
/// text go out as `\u` escapes, with astral-plane characters encoded as
/// UTF-16 surrogate pairs — a single `\u{:04x}` of the scalar value would
/// silently truncate anything above the BMP.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            ' '..='~' => out.push(c),
            c => {
                let mut units = [0u16; 2];
                for unit in c.encode_utf16(&mut units) {
                    out.push_str(&format!("\\u{unit:04x}"));
                }
            }
        }
    }
}

fn write_event(out: &mut String, ev: &ChromeEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, &ev.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, &ev.cat);
    out.push_str("\",\"ph\":\"");
    escape_into(out, &ev.ph.to_string());
    out.push_str("\",\"ts\":");
    out.push_str(&ev.ts_us.to_string());
    if ev.ph == 'X' {
        out.push_str(",\"dur\":");
        out.push_str(&ev.dur_us.to_string());
    }
    if ev.ph == 'i' {
        // Instant scope: thread-local, the narrowest marker.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"pid\":");
    out.push_str(&ev.pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&ev.tid.to_string());
    out.push_str(",\"args\":{");
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push_str("}}");
}

/// Render `events` as a complete Chrome trace document.
pub fn write_trace(events: &[ChromeEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Convert a batch of ring events and render the trace document in one
/// step.
pub fn export_events(events: &[TraceEvent]) -> String {
    let chrome: Vec<ChromeEvent> = events.iter().map(ChromeEvent::from).collect();
    write_trace(&chrome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeEvent {
        ChromeEvent {
            name: "unit_run".into(),
            cat: "pool".into(),
            ph: 'X',
            ts_us: 120,
            dur_us: 30,
            pid: 1,
            tid: 2,
            args: vec![("job".into(), 7)],
        }
    }

    #[test]
    fn complete_event_has_required_fields() {
        let doc = write_trace(&[sample()]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        for field in [
            "\"name\":\"unit_run\"",
            "\"cat\":\"pool\"",
            "\"ph\":\"X\"",
            "\"ts\":120",
            "\"dur\":30",
            "\"pid\":1",
            "\"tid\":2",
            "\"args\":{\"job\":7}",
        ] {
            assert!(doc.contains(field), "missing {field} in {doc}");
        }
    }

    #[test]
    fn instant_event_omits_dur_and_scopes_to_thread() {
        let mut ev = sample();
        ev.ph = 'i';
        let doc = write_trace(&[ev]);
        assert!(!doc.contains("\"dur\""));
        assert!(doc.contains("\"s\":\"t\""));
    }

    #[test]
    fn strings_are_escaped() {
        let mut ev = sample();
        ev.name = "we\"ird\\name\n".into();
        let doc = write_trace(&[ev]);
        assert!(doc.contains("we\\\"ird\\\\name\\n"));
    }

    /// Decode a JSON string-literal body (no surrounding quotes) exactly
    /// as a spec-compliant parser would, combining surrogate pairs.
    fn unescape(s: &str) -> String {
        let mut out = String::new();
        let mut it = s.chars();
        while let Some(c) = it.next() {
            if c != '\\' {
                out.push(c);
                continue;
            }
            match it.next().unwrap() {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex4 = |it: &mut std::str::Chars| -> u32 {
                        (0..4).fold(0, |a, _| a * 16 + it.next().unwrap().to_digit(16).unwrap())
                    };
                    let hi = hex4(&mut it);
                    let cp = if (0xd800..0xdc00).contains(&hi) {
                        assert_eq!(it.next(), Some('\\'), "lone high surrogate");
                        assert_eq!(it.next(), Some('u'), "lone high surrogate");
                        let lo = hex4(&mut it);
                        assert!((0xdc00..0xe000).contains(&lo), "bad low surrogate {lo:04x}");
                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                    } else {
                        hi
                    };
                    out.push(char::from_u32(cp).unwrap());
                }
                other => panic!("unexpected escape \\{other}"),
            }
        }
        out
    }

    #[test]
    fn hostile_job_names_round_trip() {
        // DEL, C1 controls, BMP unicode, and astral-plane emoji — the
        // names a job spec can legally carry into the trace export.
        let hostile = [
            "job\u{7f}name",
            "c1\u{9c}control",
            "quote\"back\\slash\nnewline\ttab",
            "bmp: déjà vu — ✓",
            "astral: \u{1f600}\u{1F680} \u{10FFFF}",
        ];
        for name in hostile {
            let mut ev = sample();
            ev.name = name.into();
            let doc = write_trace(&[ev]);
            // Perfetto's JSON ingestion wants plain ASCII documents.
            assert!(doc.is_ascii(), "non-ASCII byte leaked for {name:?}");
            let body = doc
                .split("{\"name\":\"")
                .nth(1)
                .unwrap()
                .split("\",\"cat\"")
                .next()
                .unwrap();
            assert_eq!(unescape(body), name, "round-trip broke for {name:?}");
        }
        // The astral escape must be a surrogate pair, not a truncated
        // single \u of the scalar value.
        let mut ev = sample();
        ev.name = "\u{1f600}".into();
        let doc = write_trace(&[ev]);
        assert!(
            doc.contains("\\ud83d\\ude00"),
            "missing surrogate pair: {doc}"
        );
        assert!(!doc.contains("\\uf600"), "truncated astral escape: {doc}");
    }

    #[test]
    fn braces_balance_across_many_events() {
        let events: Vec<ChromeEvent> = (0..10).map(|_| sample()).collect();
        let doc = write_trace(&events);
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(doc.matches("\"name\"").count(), 10);
    }

    #[test]
    fn ring_events_convert() {
        let t = crate::Tracer::with_capacity(8);
        t.instant("admitted", "job", 0, 9);
        let snap = t.snapshot();
        let doc = export_events(&snap.events);
        assert!(doc.contains("\"name\":\"admitted\""));
        assert!(doc.contains("\"id\":9"));
    }
}
