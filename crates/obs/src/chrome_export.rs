//! Chrome `trace_event` JSON export.
//!
//! Emits the "JSON Object Format" understood by `chrome://tracing` and
//! Perfetto: `{"traceEvents": [...], "displayTimeUnit": "ms"}` where each
//! event carries `name`/`cat`/`ph`/`ts`/`pid`/`tid` (plus `dur` for
//! complete spans and an `args` object). Written by hand — this crate has
//! no serializer dependency — with full string escaping.

use crate::trace::TraceEvent;

/// One exportable trace event with owned strings, so callers outside the
/// hot path (e.g. a CLI reconstructing a job timeline fetched over the
/// wire) can build events from dynamic data.
#[derive(Debug, Clone)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Comma-separated category list.
    pub cat: String,
    /// Chrome phase code: `'X'` complete, `'i'` instant, `'B'`/`'E'`
    /// span open/close.
    pub ph: char,
    /// Timestamp in microseconds.
    pub ts_us: u64,
    /// Duration in microseconds (only emitted for `'X'`).
    pub dur_us: u64,
    /// Process lane.
    pub pid: u64,
    /// Thread lane.
    pub tid: u64,
    /// Numeric arguments, shown in the trace viewer's detail pane.
    pub args: Vec<(String, i64)>,
}

impl From<&TraceEvent> for ChromeEvent {
    fn from(ev: &TraceEvent) -> Self {
        let mut args = vec![("id".to_string(), ev.id as i64)];
        if !ev.arg_name.is_empty() {
            args.push((ev.arg_name.to_string(), ev.arg));
        }
        ChromeEvent {
            name: ev.name.to_string(),
            cat: ev.cat.to_string(),
            ph: ev.ph.code(),
            ts_us: ev.ts_us,
            dur_us: ev.dur_us,
            pid: 1,
            tid: ev.tid,
            args,
        }
    }
}

/// Escape `s` for inclusion in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn write_event(out: &mut String, ev: &ChromeEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, &ev.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, &ev.cat);
    out.push_str("\",\"ph\":\"");
    escape_into(out, &ev.ph.to_string());
    out.push_str("\",\"ts\":");
    out.push_str(&ev.ts_us.to_string());
    if ev.ph == 'X' {
        out.push_str(",\"dur\":");
        out.push_str(&ev.dur_us.to_string());
    }
    if ev.ph == 'i' {
        // Instant scope: thread-local, the narrowest marker.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"pid\":");
    out.push_str(&ev.pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&ev.tid.to_string());
    out.push_str(",\"args\":{");
    for (i, (k, v)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(out, k);
        out.push_str("\":");
        out.push_str(&v.to_string());
    }
    out.push_str("}}");
}

/// Render `events` as a complete Chrome trace document.
pub fn write_trace(events: &[ChromeEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 128);
    out.push_str("{\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, ev);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Convert a batch of ring events and render the trace document in one
/// step.
pub fn export_events(events: &[TraceEvent]) -> String {
    let chrome: Vec<ChromeEvent> = events.iter().map(ChromeEvent::from).collect();
    write_trace(&chrome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChromeEvent {
        ChromeEvent {
            name: "unit_run".into(),
            cat: "pool".into(),
            ph: 'X',
            ts_us: 120,
            dur_us: 30,
            pid: 1,
            tid: 2,
            args: vec![("job".into(), 7)],
        }
    }

    #[test]
    fn complete_event_has_required_fields() {
        let doc = write_trace(&[sample()]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        for field in [
            "\"name\":\"unit_run\"",
            "\"cat\":\"pool\"",
            "\"ph\":\"X\"",
            "\"ts\":120",
            "\"dur\":30",
            "\"pid\":1",
            "\"tid\":2",
            "\"args\":{\"job\":7}",
        ] {
            assert!(doc.contains(field), "missing {field} in {doc}");
        }
    }

    #[test]
    fn instant_event_omits_dur_and_scopes_to_thread() {
        let mut ev = sample();
        ev.ph = 'i';
        let doc = write_trace(&[ev]);
        assert!(!doc.contains("\"dur\""));
        assert!(doc.contains("\"s\":\"t\""));
    }

    #[test]
    fn strings_are_escaped() {
        let mut ev = sample();
        ev.name = "we\"ird\\name\n".into();
        let doc = write_trace(&[ev]);
        assert!(doc.contains("we\\\"ird\\\\name\\n"));
    }

    #[test]
    fn braces_balance_across_many_events() {
        let events: Vec<ChromeEvent> = (0..10).map(|_| sample()).collect();
        let doc = write_trace(&events);
        let open = doc.matches('{').count();
        let close = doc.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(doc.matches("\"name\"").count(), 10);
    }

    #[test]
    fn ring_events_convert() {
        let t = crate::Tracer::with_capacity(8);
        t.instant("admitted", "job", 0, 9);
        let snap = t.snapshot();
        let doc = export_events(&snap.events);
        assert!(doc.contains("\"name\":\"admitted\""));
        assert!(doc.contains("\"id\":9"));
    }
}
