//! `dabs-obs` — zero-dependency observability core for the DABS stack.
//!
//! Every other crate in the workspace (core, model, server, bench, cli)
//! records into this one, so it depends on nothing but `std`. Three
//! building blocks:
//!
//! * **Metrics** ([`Counter`], [`Gauge`], [`LogHistogram`]) — lock-free
//!   atomic recording on the hot path; [`HistSnapshot`] supports merge and
//!   percentile queries over HDR-style log-bucketed counts (power-of-2
//!   major buckets × 8 linear sub-buckets, ≤ 12.5 % relative error,
//!   saturating overflow bucket).
//! * **Tracing** ([`Tracer`], [`TraceEvent`]) — a bounded ring buffer of
//!   `Copy` events with `&'static str` names. Recording never blocks and
//!   never panics: a slot that cannot be claimed immediately, or an event
//!   overwritten by wrap-around, increments a drop counter instead.
//! * **Export** ([`chrome`]) — the Chrome `trace_event` JSON format
//!   (loadable in `chrome://tracing` and Perfetto), written by hand so the
//!   crate stays dependency-free.
//!
//! The bridge from these snapshot types to `core::stats::MetricSet` lives
//! in `dabs-core` (this crate cannot see `Metric` without creating a
//! dependency cycle once model/search are instrumented).

pub mod chrome_export;
mod counter;
mod hist;
mod trace;

pub use chrome_export as chrome;
pub use chrome_export::ChromeEvent;
pub use counter::{Counter, Gauge};
pub use hist::{HistSnapshot, LogHistogram, HIST_BUCKETS, HIST_OVERFLOW_FLOOR};
pub use trace::{
    global, Phase, SpanTimer, TraceEvent, TraceSnapshot, Tracer, DEFAULT_TRACE_CAPACITY,
};

/// Sampling shift used by hot-loop instrumentation across the workspace:
/// shared atomics are touched once every `2^OBS_SAMPLE_SHIFT` batches, so
/// the flip loop itself stays scan-free-fast.
pub const OBS_SAMPLE_SHIFT: u32 = 5;

/// Mask form of [`OBS_SAMPLE_SHIFT`]: `batches & OBS_SAMPLE_MASK == 0`
/// selects the 1-in-2^k publication batches.
pub const OBS_SAMPLE_MASK: u64 = (1 << OBS_SAMPLE_SHIFT) - 1;
