//! Log-bucketed histogram with lock-free recording.
//!
//! HDR-style bucket scheme: values 0..16 get exact unit buckets; beyond
//! that each power-of-2 *major* bucket is split into 8 linear
//! *sub-buckets*, so the relative quantization error is bounded by
//! `2^-3 = 12.5 %`. Values at or above [`HIST_OVERFLOW_FLOOR`] saturate
//! into a single overflow bucket (the true maximum is still tracked
//! exactly). Recording is a single relaxed `fetch_add` plus min/max
//! updates — no locks, safe from any thread.

use std::sync::atomic::{AtomicU64, Ordering};

const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS; // 8 sub-buckets per major
const MAX_MAJOR: u32 = 31; // regular buckets cover values < 2^32

/// Total bucket count: 240 regular buckets (16 exact unit buckets plus 8
/// sub-buckets for each major 4..=31) + 1 saturating overflow bucket.
pub const HIST_BUCKETS: usize = ((MAX_MAJOR as usize - 1) * SUB) + 1;

/// Smallest value that lands in the overflow bucket (`2^32`; as
/// microseconds that is ≈ 71.6 minutes — far beyond any span we time).
pub const HIST_OVERFLOW_FLOOR: u64 = 1 << (MAX_MAJOR + 1);

/// Bucket index for `v`. Total order preserving: `a <= b` implies
/// `index(a) <= index(b)`.
#[inline]
fn index(v: u64) -> usize {
    if v < (2 * SUB) as u64 {
        return v as usize;
    }
    let major = 63 - v.leading_zeros();
    if major > MAX_MAJOR {
        return HIST_BUCKETS - 1;
    }
    let sub = (v >> (major - SUB_BITS)) as usize & (SUB - 1);
    (major as usize - 2) * SUB + sub
}

/// Value range `[lo, hi)` covered by bucket `idx` (the overflow bucket's
/// `hi` is `u64::MAX`).
fn bounds(idx: usize) -> (u64, u64) {
    if idx < 2 * SUB {
        return (idx as u64, idx as u64 + 1);
    }
    if idx >= HIST_BUCKETS - 1 {
        return (HIST_OVERFLOW_FLOOR, u64::MAX);
    }
    let major = (idx / SUB + 2) as u32;
    let sub = (idx % SUB) as u64;
    let width = 1u64 << (major - SUB_BITS);
    let lo = (1u64 << major) + sub * width;
    (lo, lo + width)
}

/// Lock-free log-bucketed histogram. Record from any thread; snapshot at
/// leisure.
#[derive(Debug)]
pub struct LogHistogram {
    counts: Box<[AtomicU64; HIST_BUCKETS]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation of `v`. Lock-free; never blocks or panics.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations so far (sums the buckets, so it agrees with what
    /// a concurrently taken snapshot could see).
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Point-in-time copy of the bucket counts. Concurrent recorders may
    /// land observations between bucket reads, so a snapshot is a
    /// *consistent lower bound*: every bucket holds at least the
    /// observations recorded before the snapshot began, and repeated
    /// snapshots are monotone per bucket.
    pub fn snapshot(&self) -> HistSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        HistSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`LogHistogram`]'s state; supports merge and
/// percentile queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    counts: Vec<u64>,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// A snapshot with no observations.
    pub fn empty() -> Self {
        Self {
            counts: vec![0; HIST_BUCKETS],
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then_some(self.min)
    }

    /// Exact largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then_some(self.max)
    }

    /// Mean of all observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Observations recorded into the saturating overflow bucket.
    pub fn overflow(&self) -> u64 {
        self.counts[HIST_BUCKETS - 1]
    }

    /// Fold `other` into `self` (element-wise bucket add, min/max/sum
    /// combine). Merging disjoint snapshots is exact.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile for `q` in `[0, 1]`. Returns the inclusive
    /// upper bound of the bucket holding the ranked observation, so the
    /// true value `e` satisfies `e <= p <= e · 1.125` (exact for values
    /// below 16; clamped to the exact max for the overflow bucket).
    /// Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if idx == HIST_BUCKETS - 1 {
                    return self.max;
                }
                let (_, hi) = bounds(idx);
                return (hi - 1).min(self.max);
            }
        }
        self.max
    }

    /// Shorthand percentiles.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }
    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Raw bucket counts (length [`HIST_BUCKETS`]).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }

    /// Value range `[lo, hi)` covered by bucket `idx`.
    pub fn bucket_bounds(idx: usize) -> (u64, u64) {
        bounds(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_exact_below_sixteen() {
        for v in 0..16u64 {
            assert_eq!(index(v), v as usize);
        }
    }

    #[test]
    fn index_is_monotone_and_bounds_roundtrip() {
        let mut values: Vec<u64> = (0..40u32)
            .flat_map(|shift| [0u64, 1, 3].map(|off| (1u64 << shift).saturating_add(off)))
            .collect();
        values.sort_unstable();
        let mut last = 0usize;
        for v in values {
            let idx = index(v);
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
            let (lo, hi) = bounds(idx);
            assert!(lo <= v && v < hi, "v={v} outside bucket [{lo},{hi})");
        }
    }

    #[test]
    fn bounds_tile_the_value_space() {
        // Consecutive buckets must abut exactly: no gaps, no overlap.
        for idx in 0..HIST_BUCKETS - 1 {
            let (_, hi) = bounds(idx);
            let (lo_next, _) = bounds(idx + 1);
            assert_eq!(
                hi,
                lo_next,
                "gap/overlap between buckets {idx} and {}",
                idx + 1
            );
        }
        assert_eq!(bounds(HIST_BUCKETS - 1).0, HIST_OVERFLOW_FLOOR);
    }

    #[test]
    fn records_and_reports_basic_stats() {
        let h = LogHistogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1106);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(1000));
        assert!((s.mean() - 221.2).abs() < 1e-9);
    }

    #[test]
    fn overflow_bucket_saturates_not_panics() {
        let h = LogHistogram::new();
        h.record(HIST_OVERFLOW_FLOOR);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        let s = h.snapshot();
        assert_eq!(s.overflow(), 3);
        assert_eq!(s.count(), 3);
        assert_eq!(s.max(), Some(u64::MAX));
        // Percentiles in the overflow bucket clamp to the exact max.
        assert_eq!(s.p99(), u64::MAX);
    }

    #[test]
    fn merge_of_disjoint_snapshots_is_exact() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        for v in 0..100u64 {
            a.record(v);
        }
        for v in 10_000..10_100u64 {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.min(), Some(0));
        assert_eq!(m.max(), Some(10_099));
        assert_eq!(
            m.sum(),
            (0..100u64).sum::<u64>() + (10_000..10_100u64).sum::<u64>()
        );
        // The merged median sits between the two disjoint clouds' medians.
        assert!(m.p50() >= 99 && m.p50() < 10_000 * 9 / 8);
    }

    #[test]
    fn percentile_of_empty_snapshot_is_zero() {
        // Pinned behavior: an empty snapshot answers 0 at every quantile —
        // never a panic, never the saturated `max` sentinel.
        let snap = LogHistogram::new().snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.percentile(q), 0, "q={q}");
        }
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert_eq!(snap.p999(), 0);
    }

    #[test]
    fn percentile_extremes_on_single_sample() {
        // With one observation, every quantile — including the degenerate
        // q=0.0 (rank clamps up to 1) and q=1.0 — is that sample.
        for v in [0u64, 1, 7, 1_000] {
            let h = LogHistogram::new();
            h.record(v);
            let snap = h.snapshot();
            for q in [0.0, 0.5, 1.0] {
                assert_eq!(snap.percentile(q), v, "v={v} q={q}");
            }
        }
    }

    #[test]
    fn percentiles_agree_with_exact_nearest_rank() {
        // ≤10k synthetic samples spanning several majors; the histogram's
        // answer must bracket the exact nearest-rank within one bucket.
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 9_876_543_210u64;
        for _ in 0..10_000 {
            // xorshift64 spread over [0, 2^20)
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(x % (1 << 20));
        }
        let h = LogHistogram::new();
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.50, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let approx = snap.percentile(q);
            assert!(
                exact <= approx,
                "q={q}: approx {approx} below exact {exact}"
            );
            // Upper bucket edge is within 12.5 % (plus 1 for unit buckets).
            assert!(
                approx as f64 <= exact as f64 * 1.125 + 1.0,
                "q={q}: approx {approx} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn empty_snapshot_is_inert() {
        let s = HistSnapshot::empty();
        assert_eq!(s.count(), 0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_records_all_land() {
        use std::sync::Arc;
        let h = Arc::new(LogHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        h.record(t * 100_000 + i);
                    }
                })
            })
            .collect();
        for hd in handles {
            hd.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 20_000);
    }
}
