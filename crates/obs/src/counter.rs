//! Atomic counters and gauges — the simplest two metric kinds.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonically increasing event count. All operations are relaxed: the
/// counter carries no synchronization obligations, only a tally.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicU64::new(0),
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current tally.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed level (queue depth, busy workers, …).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Self {
            value: AtomicI64::new(0),
        }
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjust the level by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_levels() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn counter_is_exact_under_contention() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 40_000);
    }
}
