//! Bounded ring-buffer event tracer.
//!
//! The ring holds the last ~`capacity` [`TraceEvent`]s. Recording is
//! wait-free in spirit and non-blocking in letter: a writer claims a slot
//! with one `fetch_add`, then *tries* to take the slot's lock. If the slot
//! is contended (another writer wrapped onto it at the same instant) the
//! event is counted as dropped instead of blocking; overwriting a
//! still-unread event also counts as a drop. The hot path therefore never
//! blocks and never panics — a full or contended ring only moves the drop
//! counter.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// What kind of Chrome `trace_event` an event maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A span with an explicit duration (`"ph":"X"`).
    Complete,
    /// A point-in-time marker (`"ph":"i"`).
    Instant,
    /// Span open (`"ph":"B"`) — prefer [`Phase::Complete`]; kept for
    /// callers that cannot measure the duration at one site.
    Begin,
    /// Span close (`"ph":"E"`).
    End,
}

impl Phase {
    /// The single-character Chrome phase code.
    pub fn code(self) -> char {
        match self {
            Phase::Complete => 'X',
            Phase::Instant => 'i',
            Phase::Begin => 'B',
            Phase::End => 'E',
        }
    }
}

/// One trace event. `Copy` with `&'static str` names so recording moves a
/// few words — no allocation on the hot path.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Event name (Chrome `name`).
    pub name: &'static str,
    /// Category (Chrome `cat`): `pool`, `job`, `conn`, …
    pub cat: &'static str,
    /// Event kind.
    pub ph: Phase,
    /// Microseconds since the tracer's origin.
    pub ts_us: u64,
    /// Span duration in microseconds (0 for instants).
    pub dur_us: u64,
    /// Logical thread/worker lane (Chrome `tid`).
    pub tid: u64,
    /// Correlation id (job id, unit seq, …); rendered as an arg.
    pub id: u64,
    /// Name of the numeric argument, `""` when unused.
    pub arg_name: &'static str,
    /// Numeric argument value (queue-wait µs, energy, …).
    pub arg: i64,
}

/// Point-in-time copy of the ring's contents.
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Surviving events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Events lost to wrap-around overwrites or slot contention.
    pub dropped: u64,
    /// Total events ever offered to the ring.
    pub recorded: u64,
}

/// Bounded, non-blocking event ring.
pub struct Tracer {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    mask: usize,
    head: AtomicUsize,
    dropped: AtomicU64,
    origin: Instant,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

/// Default ring capacity (events).
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

impl Default for Tracer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl Tracer {
    /// A ring holding the most recent ~`capacity` events (rounded up to a
    /// power of two, minimum 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            origin: Instant::now(),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Microseconds elapsed since this tracer was created — the timestamp
    /// domain of every event it records.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Offer an event to the ring. Never blocks, never panics: contended
    /// or overwritten events increment the drop counter.
    pub fn record(&self, ev: TraceEvent) {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        match self.slots[i & self.mask].try_lock() {
            Ok(mut slot) => {
                if slot.replace(ev).is_some() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Contended (a wrapping writer holds it) or poisoned: drop.
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, name: &'static str, cat: &'static str, tid: u64, id: u64) {
        self.record(TraceEvent {
            name,
            cat,
            ph: Phase::Instant,
            ts_us: self.now_us(),
            dur_us: 0,
            tid,
            id,
            arg_name: "",
            arg: 0,
        });
    }

    /// Record a completed span that started at `ts_us` (tracer domain) and
    /// lasted `dur_us`, with one named numeric argument.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &self,
        name: &'static str,
        cat: &'static str,
        tid: u64,
        id: u64,
        ts_us: u64,
        dur_us: u64,
        arg_name: &'static str,
        arg: i64,
    ) {
        self.record(TraceEvent {
            name,
            cat,
            ph: Phase::Complete,
            ts_us,
            dur_us,
            tid,
            id,
            arg_name,
            arg,
        });
    }

    /// Start timing a span; call [`SpanTimer::finish`] to record it.
    pub fn span(&self, name: &'static str, cat: &'static str, tid: u64, id: u64) -> SpanTimer<'_> {
        SpanTimer {
            tracer: self,
            name,
            cat,
            tid,
            id,
            start_us: self.now_us(),
        }
    }

    /// Events lost so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total events ever offered.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed) as u64
    }

    /// Copy out the surviving events (sorted by timestamp) together with
    /// the drop/record tallies. Contended slots are skipped, never waited
    /// on.
    pub fn snapshot(&self) -> TraceSnapshot {
        let mut events: Vec<TraceEvent> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            if let Ok(guard) = slot.try_lock() {
                if let Some(ev) = *guard {
                    events.push(ev);
                }
            }
        }
        events.sort_by_key(|e| e.ts_us);
        TraceSnapshot {
            events,
            dropped: self.dropped(),
            recorded: self.recorded(),
        }
    }
}

/// In-flight span handle from [`Tracer::span`]; records a
/// [`Phase::Complete`] event when finished. Dropping without finishing
/// records nothing (spans are explicit, not RAII, so an abandoned timer
/// cannot double-record).
#[must_use = "call finish() to record the span"]
pub struct SpanTimer<'t> {
    tracer: &'t Tracer,
    name: &'static str,
    cat: &'static str,
    tid: u64,
    id: u64,
    start_us: u64,
}

impl SpanTimer<'_> {
    /// Close the span and record it with one named numeric argument
    /// (pass `("", 0)` when unused).
    pub fn finish(self, arg_name: &'static str, arg: i64) {
        let end = self.tracer.now_us();
        self.tracer.complete(
            self.name,
            self.cat,
            self.tid,
            self.id,
            self.start_us,
            end.saturating_sub(self.start_us),
            arg_name,
            arg,
        );
    }

    /// Microseconds since the span started.
    pub fn elapsed_us(&self) -> u64 {
        self.tracer.now_us().saturating_sub(self.start_us)
    }
}

/// Process-wide tracer shared by all instrumented subsystems.
pub fn global() -> &'static Tracer {
    static GLOBAL: OnceLock<Tracer> = OnceLock::new();
    GLOBAL.get_or_init(Tracer::default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(name: &'static str, ts: u64) -> TraceEvent {
        TraceEvent {
            name,
            cat: "test",
            ph: Phase::Instant,
            ts_us: ts,
            dur_us: 0,
            tid: 0,
            id: 0,
            arg_name: "",
            arg: 0,
        }
    }

    #[test]
    fn records_and_snapshots_in_timestamp_order() {
        let t = Tracer::with_capacity(16);
        t.record(ev("b", 20));
        t.record(ev("a", 10));
        t.record(ev("c", 30));
        let s = t.snapshot();
        assert_eq!(s.recorded, 3);
        assert_eq!(s.dropped, 0);
        let names: Vec<_> = s.events.iter().map(|e| e.name).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn wraparound_counts_drops_and_keeps_capacity() {
        let t = Tracer::with_capacity(8);
        for i in 0..20 {
            t.record(ev("x", i));
        }
        let s = t.snapshot();
        assert_eq!(s.recorded, 20);
        assert_eq!(s.events.len(), 8);
        assert_eq!(s.dropped, 12);
    }

    #[test]
    fn span_timer_records_complete() {
        let t = Tracer::with_capacity(16);
        let sp = t.span("unit_run", "pool", 3, 42);
        sp.finish("batches", 7);
        let s = t.snapshot();
        assert_eq!(s.events.len(), 1);
        let e = &s.events[0];
        assert_eq!(e.ph, Phase::Complete);
        assert_eq!(e.tid, 3);
        assert_eq!(e.id, 42);
        assert_eq!(e.arg_name, "batches");
        assert_eq!(e.arg, 7);
    }

    /// The CI tracer-ring stress test: hammer a small ring from many
    /// threads. The hot path must neither block indefinitely nor panic;
    /// every offered event is either retained or counted as dropped.
    #[test]
    fn stress_many_writers_never_block_or_panic() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 25_000;
        let t = Arc::new(Tracer::with_capacity(64));
        let handles: Vec<_> = (0..THREADS)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        t.record(TraceEvent {
                            name: "stress",
                            cat: "test",
                            ph: Phase::Instant,
                            ts_us: i,
                            dur_us: 0,
                            tid,
                            id: i,
                            arg_name: "",
                            arg: 0,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = t.snapshot();
        assert_eq!(s.recorded, THREADS * PER_THREAD);
        assert!(s.events.len() <= 64);
        // Drop accounting: at quiescence, retained + dropped == recorded.
        assert_eq!(s.events.len() as u64 + s.dropped, s.recorded);
    }

    #[test]
    fn global_tracer_is_a_singleton() {
        let a = global() as *const Tracer;
        let b = global() as *const Tracer;
        assert_eq!(a, b);
    }
}
