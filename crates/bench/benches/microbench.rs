//! Criterion microbenchmarks backing the paper's cost claims:
//!
//! * `energy`   — direct evaluation is O(n + m) (the "O(n²)" dense cost the
//!   incremental scheme avoids, §III-A);
//! * `flip`     — one incremental flip is O(deg) (Eqs. 4–5);
//! * `search`   — per-flip cost of each main algorithm;
//! * `batch`    — a full batch search;
//! * `pool`     — pool insertion and biased selection;
//! * `genetic`  — target-generation operations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dabs_core::{GeneticOp, PoolEntry, SolutionPool};
use dabs_model::{BestTracker, IncrementalState, QuboModel, Solution};
use dabs_problems::gset;
use dabs_rng::{Rng64, Xorshift64Star};
use dabs_search::{BatchSearch, MainAlgorithm, SearchParams, TabuList};

fn model_for(n: usize) -> QuboModel {
    gset::k2000_like(n, 42).to_qubo()
}

fn sparse_model(n: usize) -> QuboModel {
    gset::g22_like(n, n * 5, 43).to_qubo()
}

fn bench_energy(c: &mut Criterion) {
    let mut group = c.benchmark_group("energy");
    for n in [128usize, 512, 2000] {
        let q = model_for(n);
        let mut rng = Xorshift64Star::new(1);
        let x = Solution::random(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("direct_complete", n), &n, |b, _| {
            b.iter(|| black_box(q.energy(&x)))
        });
    }
    group.finish();
}

fn bench_flip(c: &mut Criterion) {
    let mut group = c.benchmark_group("flip");
    for n in [512usize, 2000] {
        // dense: deg = n−1 → flip is O(n)
        let q = model_for(n);
        let mut st = IncrementalState::new(&q);
        let mut rng = Xorshift64Star::new(2);
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, _| {
            b.iter(|| {
                let i = rng.next_index(n);
                black_box(st.flip(i))
            })
        });
        // sparse: deg ≈ 10 → flip is O(1)-ish
        let qs = sparse_model(n);
        let mut sts = IncrementalState::new(&qs);
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, _| {
            b.iter(|| {
                let i = rng.next_index(n);
                black_box(sts.flip(i))
            })
        });
    }
    group.finish();
}

fn bench_search_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    let n = 512;
    let q = model_for(n);
    for algo in MainAlgorithm::ALL {
        group.bench_function(BenchmarkId::new("per_leg", algo.name()), |b| {
            let mut st = IncrementalState::new(&q);
            let mut best = BestTracker::unbounded(n);
            let mut tabu = TabuList::new(n, 8);
            let mut rng = Xorshift64Star::new(3);
            b.iter(|| {
                black_box(algo.run(&mut st, &mut best, &mut tabu, &mut rng, 64));
            })
        });
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group.sample_size(20);
    let n = 512;
    let q = model_for(n);
    group.bench_function("maxcut_params", |b| {
        let mut st = IncrementalState::new(&q);
        let mut batch = BatchSearch::new(n, SearchParams::maxcut());
        let mut rng = Xorshift64Star::new(4);
        b.iter(|| {
            let target = Solution::random(n, &mut rng);
            black_box(batch.run(&mut st, &target, MainAlgorithm::PositiveMin, &mut rng))
        })
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool");
    let n = 512;
    let mut rng = Xorshift64Star::new(5);
    let mut pool = SolutionPool::new(100, true);
    for i in 0..100 {
        pool.insert(PoolEntry {
            solution: Solution::random(n, &mut rng),
            energy: -(i as i64),
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Mutation,
        });
    }
    group.bench_function("insert_reject", |b| {
        // energy worse than worst → cheapest path
        let e = PoolEntry {
            solution: Solution::random(n, &mut rng),
            energy: 100,
            algorithm: MainAlgorithm::MaxMin,
            operation: GeneticOp::Mutation,
        };
        b.iter(|| black_box(pool.clone().insert(e.clone())))
    });
    group.bench_function("select_biased", |b| {
        b.iter(|| black_box(pool.select_biased(&mut rng).energy))
    });
    group.finish();
}

fn bench_genetic(c: &mut Criterion) {
    let mut group = c.benchmark_group("genetic");
    let n = 2000;
    let mut rng = Xorshift64Star::new(6);
    let a = Solution::random(n, &mut rng);
    let b_sol = Solution::random(n, &mut rng);
    group.bench_function("crossover_2000", |b| {
        b.iter(|| black_box(a.crossover(&b_sol, &mut rng)))
    });
    group.bench_function("hamming_2000", |b| b.iter(|| black_box(a.hamming(&b_sol))));
    group.finish();
}

criterion_group!(
    benches,
    bench_energy,
    bench_flip,
    bench_search_algorithms,
    bench_batch,
    bench_pool,
    bench_genetic
);
criterion_main!(benches);
