//! Minimal `--key value` / `--flag` argument parsing for the bench bins.

use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from `std::env::args` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (used by tests).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Self {
        let mut out = Args::default();
        let mut iter = items.into_iter().peekable();
        while let Some(item) = iter.next() {
            if let Some(key) = item.strip_prefix("--") {
                match iter.peek() {
                    Some(v) if !v.starts_with("--") => {
                        out.values.insert(key.to_string(), iter.next().unwrap());
                    }
                    _ => out.flags.push(key.to_string()),
                }
            } else {
                eprintln!("warning: ignoring positional argument {item:?}");
            }
        }
        out
    }

    /// Boolean flag (`--full`).
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Typed value with default.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.values.get(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| panic!("--{name}: cannot parse {v:?}")),
            None => default,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_values_and_flags() {
        let a = parse("--runs 50 --full --seed 7");
        assert_eq!(a.get("runs", 0usize), 50);
        assert_eq!(a.get("seed", 1u64), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse("");
        assert_eq!(a.get("runs", 10usize), 10);
        assert_eq!(a.get("scale", 1.5f64), 1.5);
    }

    #[test]
    #[should_panic(expected = "cannot parse")]
    fn bad_value_panics() {
        parse("--runs abc").get("runs", 0usize);
    }
}
