//! Benchmark harness shared by the table/figure binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). The helpers here provide: flag parsing
//! (`--runs`, `--scale`, `--seed`, `--full`), ASCII histograms matching the
//! paper's figure binning, aligned table printing, and the repeated-run TTS
//! protocol of §VI.

pub mod args;
pub mod harness;
pub mod histogram;
pub mod instances;
pub mod table;

pub use args::Args;
pub use harness::{repeat_solver, RepeatStats};
pub use histogram::Histogram;
pub use table::Table;
