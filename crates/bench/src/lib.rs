//! Benchmark harness shared by the table/figure binaries and the unified
//! suite runner.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index) as a thin wrapper over the shared
//! scenario code in [`scenarios`]. The same scenarios power the declarative
//! [`suite`] registry, whose runner emits the machine-readable perf
//! trajectory (`BENCH_*.json`, schema in [`report`]) and whose [`baseline`]
//! compare mode gates CI on regressions. The older helpers remain: flag
//! parsing ([`Args`]), ASCII histograms matching the paper's figure binning,
//! aligned table printing, and the repeated-run TTS protocol of §VI
//! ([`harness`]).

pub mod args;
pub mod baseline;
pub mod harness;
pub mod histogram;
pub mod instances;
pub mod report;
pub mod scenarios;
pub mod suite;
pub mod suite_cli;
pub mod table;

pub use args::Args;
pub use harness::{repeat_solver, RepeatStats};
pub use histogram::Histogram;
pub use report::SuiteReport;
pub use scenarios::RunPlan;
pub use suite::{run_suite, SuiteConfig, SuiteEntry, SuiteMode};
pub use table::Table;
