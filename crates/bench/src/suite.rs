//! The declarative benchmark-suite registry and runner.
//!
//! One [`SuiteEntry`] per scenario the repo cares about: time-to-target for
//! each problem family of the paper's §V evaluation, kernel flip throughput
//! across the density sweep, the four §VI ablations, and server throughput.
//! The table/figure bins under `src/bin/` and the machine-readable perf
//! trajectory (`BENCH_*.json`, see [`crate::report`]) run the same scenario
//! code from [`crate::scenarios`], so reproducing a paper table and gating a
//! regression can never drift apart.

use crate::report::{cpu_time_ms, EntryReport, HostInfo, SuiteReport, SCHEMA_VERSION};
use crate::scenarios;
use dabs_core::MetricSet;
use std::time::Instant;

/// Benchmark families — the axes the suite must cover. The three problem
/// families mirror the paper's Tables II–IV; `Kernel` and `Server` cover
/// the repo's two perf-critical subsystems; `Ablation` the §VI studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    MaxCut,
    Qap,
    Qasp,
    Kernel,
    Server,
    Ablation,
}

impl Family {
    /// Every family, in report order.
    pub const ALL: [Family; 6] = [
        Family::MaxCut,
        Family::Qap,
        Family::Qasp,
        Family::Kernel,
        Family::Server,
        Family::Ablation,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Family::MaxCut => "maxcut",
            Family::Qap => "qap",
            Family::Qasp => "qasp",
            Family::Kernel => "kernel",
            Family::Server => "server",
            Family::Ablation => "ablation",
        }
    }

    /// Inverse of [`Family::name`].
    pub fn by_name(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// How hard the suite runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteMode {
    /// Tiny instances and budgets: the mode the integration tests use so a
    /// debug-profile run stays in seconds. Same code path as `Smoke`.
    Test,
    /// CI scale: every family in well under two minutes on a release build.
    Smoke,
    /// Paper scale where the instances support it; minutes to hours.
    Full,
}

impl SuiteMode {
    pub fn name(self) -> &'static str {
        match self {
            SuiteMode::Test => "test",
            SuiteMode::Smoke => "smoke",
            SuiteMode::Full => "full",
        }
    }

    pub fn by_name(name: &str) -> Option<SuiteMode> {
        [SuiteMode::Test, SuiteMode::Smoke, SuiteMode::Full]
            .into_iter()
            .find(|m| m.name() == name)
    }
}

/// Suite-wide knobs shared by every entry.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    pub mode: SuiteMode,
    /// Base seed; every scenario derives its own deterministic streams.
    pub seed: u64,
    /// Case-insensitive substring filter on entry names (`None` = all).
    pub filter: Option<String>,
    /// Print per-entry progress to stderr while running.
    pub verbose: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            mode: SuiteMode::Smoke,
            seed: 1,
            filter: None,
            verbose: false,
        }
    }
}

/// One registered benchmark scenario.
pub struct SuiteEntry {
    /// Unique key, also the entry name in `BENCH_*.json`.
    pub name: &'static str,
    pub family: Family,
    /// One-line description (shown by `suite --list` and in the docs).
    pub about: &'static str,
    /// Measurement context recorded verbatim into the entry's report:
    /// which kernel backend the entry exercises and whether the Δ-segment
    /// aggregate layer is in play — so trajectory points stay comparable
    /// across machines and code revisions.
    pub context: &'static [(&'static str, &'static str)],
    /// Produce the entry's metrics. Must derive all randomness from
    /// `cfg.seed` so deterministic metrics reproduce across runs.
    pub run: fn(&SuiteConfig) -> MetricSet,
}

/// The default context of solver-driven entries: the models pick their
/// backend via the auto policy and every `IncrementalState` runs with the
/// segment-aggregate selection layer.
const CTX_SOLVER: &[(&str, &str)] = &[("kernel", "auto"), ("segments", "on")];

/// The full scenario registry, in execution order.
pub fn registry() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "ttt_maxcut",
            family: Family::MaxCut,
            about: "time-to-target on the Table II MaxCut trio (deterministic sequential runs)",
            context: CTX_SOLVER,
            run: scenarios::ttt::maxcut,
        },
        SuiteEntry {
            name: "ttt_qap",
            family: Family::Qap,
            about: "time-to-target on the Table III QAP trio",
            context: CTX_SOLVER,
            run: scenarios::ttt::qap,
        },
        SuiteEntry {
            name: "ttt_qasp",
            family: Family::Qasp,
            about: "time-to-target on the Table IV QASP resolutions 1/16/256",
            context: CTX_SOLVER,
            run: scenarios::ttt::qasp,
        },
        SuiteEntry {
            name: "kernel_sweep",
            family: Family::Kernel,
            about: "CSR vs dense flip throughput across the density sweep + speedup contract",
            context: &[("kernel", "csr+dense"), ("segments", "on")],
            run: scenarios::kernel::entry,
        },
        SuiteEntry {
            name: "scan_sweep",
            family: Family::Kernel,
            about: "strategy-level flips/s: segment-aggregate selection vs the full-scan \
                    reference on a sparse n=1024 instance + speedup contract",
            context: &[("kernel", "csr"), ("segments", "seg-vs-scan")],
            run: scenarios::scan::entry,
        },
        SuiteEntry {
            name: "batch_sweep",
            family: Family::Kernel,
            about: "bit-sliced bulk-search lanes vs independent scalar sweeps at a matched \
                    flip budget on the weighted n=1024 instance + \u{2265}4\u{d7} speedup and \
                    lane-parity contract",
            context: &[("kernel", "csr"), ("lanes", "bit-sliced")],
            run: scenarios::batch::entry,
        },
        SuiteEntry {
            name: "obs_overhead",
            family: Family::Kernel,
            about: "observability tax on the hot loop: batch-composite flips/s with the \
                    per-batch ObsAccumulator tally vs plain + \u{2264}3% overhead contract",
            context: &[("kernel", "csr"), ("segments", "on")],
            run: scenarios::obs_overhead::entry,
        },
        SuiteEntry {
            name: "server_throughput",
            family: Family::Server,
            about: "jobs/s and p50/p99 latency against an in-process dabs-server over TCP",
            context: CTX_SOLVER,
            run: scenarios::server_load::entry,
        },
        SuiteEntry {
            name: "server_load",
            family: Family::Server,
            about: "small-job p99 isolation under a saturating decomposed job + elastic-pool \
                    scaling contract (steals/splits from the pool gauges)",
            context: CTX_SOLVER,
            run: scenarios::server_load::load_entry,
        },
        SuiteEntry {
            name: "conn_scale",
            family: Family::Server,
            about: "event-loop connection scaling: idle pool held + active ping p99, with \
                    per-connection RSS and responsiveness contracts (10k idle / 1k active at \
                    Full; gates suspended at Test scale)",
            context: CTX_SOLVER,
            run: scenarios::conn_scale::entry,
        },
        SuiteEntry {
            name: "chaos_soak",
            family: Family::Server,
            about: "self-healing under a seeded fault storm: unit panics → quarantine, worker \
                    kills → supervisor respawn, WAL fsync faults → degraded-then-heal; gates \
                    no-lost-jobs, workers-restored, healed, and exact gauge accounting \
                    (suspended at Test scale / <4 cores)",
            context: CTX_SOLVER,
            run: scenarios::chaos_soak::entry,
        },
        SuiteEntry {
            name: "ablation_adaptive",
            family: Family::Ablation,
            about: "adaptive (95% replay) vs uniform strategy selection",
            context: CTX_SOLVER,
            run: scenarios::ablation::adaptive_entry,
        },
        SuiteEntry {
            name: "ablation_islands",
            family: Family::Ablation,
            about: "4 islands × 2 blocks vs 1 island × 8 blocks",
            context: CTX_SOLVER,
            run: scenarios::ablation::islands_entry,
        },
        SuiteEntry {
            name: "ablation_tabu",
            family: Family::Ablation,
            about: "tabu tenure 8 (paper setting) vs tenure 0",
            context: CTX_SOLVER,
            run: scenarios::ablation::tabu_entry,
        },
        SuiteEntry {
            name: "ablation_portfolio",
            family: Family::Ablation,
            about: "five-algorithm portfolio vs each algorithm alone",
            context: CTX_SOLVER,
            run: scenarios::ablation::portfolio_entry,
        },
    ]
}

/// True when the entry survives the config's name filter.
fn selected(entry: &SuiteEntry, cfg: &SuiteConfig) -> bool {
    match &cfg.filter {
        Some(f) => entry.name.to_lowercase().contains(&f.to_lowercase()),
        None => true,
    }
}

/// Run every selected entry and assemble the versioned report.
pub fn run_suite(cfg: &SuiteConfig) -> SuiteReport {
    let entries: Vec<SuiteEntry> = registry()
        .into_iter()
        .filter(|e| selected(e, cfg))
        .collect();
    let total = entries.len();
    let suite_start = Instant::now();
    let cpu_start = cpu_time_ms();
    let mut reports = Vec::with_capacity(total);
    for (i, entry) in entries.into_iter().enumerate() {
        if cfg.verbose {
            eprintln!("[{}/{}] {} …", i + 1, total, entry.name);
        }
        let started_ms = suite_start.elapsed().as_millis() as u64;
        let t0 = Instant::now();
        let metrics = (entry.run)(cfg);
        let wall_ms = t0.elapsed().as_millis() as u64;
        if cfg.verbose {
            eprintln!(
                "[{}/{}] {} done in {:.1}s ({} metrics)",
                i + 1,
                total,
                entry.name,
                wall_ms as f64 / 1e3,
                metrics.len()
            );
        }
        reports.push(EntryReport {
            name: entry.name.to_string(),
            family: entry.family,
            started_ms,
            wall_ms,
            context: entry
                .context
                .iter()
                .map(|&(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            metrics,
        });
    }
    SuiteReport {
        schema_version: SCHEMA_VERSION,
        mode: cfg.mode,
        seed: cfg.seed,
        host: HostInfo::detect(),
        wall_ms: suite_start.elapsed().as_millis() as u64,
        cpu_ms: match (cpu_start, cpu_time_ms()) {
            (Some(a), Some(b)) => Some(b.saturating_sub(a)),
            _ => None,
        },
        entries: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::by_name(f.name()), Some(f));
        }
        assert_eq!(Family::by_name("nope"), None);
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [SuiteMode::Test, SuiteMode::Smoke, SuiteMode::Full] {
            assert_eq!(SuiteMode::by_name(m.name()), Some(m));
        }
    }

    #[test]
    fn registry_names_are_unique_and_cover_all_families() {
        let reg = registry();
        let mut names: Vec<&str> = reg.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate entry names");
        for f in Family::ALL {
            assert!(
                reg.iter().any(|e| e.family == f),
                "no registry entry for family {:?}",
                f
            );
        }
    }

    #[test]
    fn filter_selects_by_substring() {
        let cfg = SuiteConfig {
            filter: Some("KERNEL".into()),
            ..SuiteConfig::default()
        };
        let hits: Vec<&'static str> = registry()
            .into_iter()
            .filter(|e| selected(e, &cfg))
            .map(|e| e.name)
            .collect();
        assert_eq!(hits, vec!["kernel_sweep"]);
    }
}
