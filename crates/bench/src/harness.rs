//! The paper's repeated-run measurement protocol (§VI).
//!
//! DABS rows report average TTS over many executions; ABS rows report TTS
//! *and* success probability within a time limit ("the TTS does not count
//! the execution time of a trial if it fails"). [`repeat_solver`] runs a
//! solver closure across seeds and aggregates exactly those statistics.

use dabs_core::{DabsConfig, DabsSolver, Termination};
use dabs_model::QuboModel;
use std::sync::Arc;
use std::time::Duration;

/// Establish the "potentially optimal" reference value the paper's TTS
/// measurements are defined against (§I-B): run DABS with a much longer
/// budget than the measured runs and take its best energy.
pub fn establish_reference(model: &Arc<QuboModel>, config: &DabsConfig, budget: Duration) -> i64 {
    let solver = DabsSolver::new(config.clone()).expect("valid config");
    solver.run(model, Termination::time(budget)).energy
}

/// One DABS repetition against a known target: returns the paper-style
/// outcome (reached?, TTS).
pub fn dabs_run_outcome(
    model: &Arc<QuboModel>,
    config: &DabsConfig,
    seed: u64,
    target: i64,
    limit: Duration,
) -> RunOutcome {
    let mut cfg = config.clone();
    cfg.seed = seed;
    let solver = DabsSolver::new(cfg).expect("valid config");
    let r = solver.run(model, Termination::target(target).with_time(limit));
    RunOutcome {
        energy: r.energy,
        reached: r.reached_target,
        tts: r.time_to_best,
    }
}

/// One repetition's outcome.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// Best energy reached.
    pub energy: i64,
    /// Whether the target ("potentially optimal") energy was reached.
    pub reached: bool,
    /// Time at which the final best was found.
    pub tts: Duration,
}

/// Aggregated repetition statistics.
#[derive(Debug, Clone)]
pub struct RepeatStats {
    /// Per-run outcomes, in seed order.
    pub outcomes: Vec<RunOutcome>,
}

impl RepeatStats {
    /// Number of runs.
    pub fn runs(&self) -> usize {
        self.outcomes.len()
    }

    /// Number of runs that reached the target.
    pub fn successes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.reached).count()
    }

    /// Success probability (the paper's "(Probability)" rows).
    pub fn success_rate(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.successes() as f64 / self.outcomes.len() as f64
    }

    /// Mean TTS over *successful* runs only (the paper's TTS convention).
    pub fn mean_tts(&self) -> Option<Duration> {
        let succ: Vec<&RunOutcome> = self.outcomes.iter().filter(|o| o.reached).collect();
        if succ.is_empty() {
            return None;
        }
        let total: Duration = succ.iter().map(|o| o.tts).sum();
        Some(total / succ.len() as u32)
    }

    /// Best energy over all runs.
    pub fn best_energy(&self) -> i64 {
        self.outcomes
            .iter()
            .map(|o| o.energy)
            .min()
            .unwrap_or(i64::MAX)
    }

    /// TTS samples of successful runs, in seconds (histogram input).
    pub fn tts_seconds(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter(|o| o.reached)
            .map(|o| o.tts.as_secs_f64())
            .collect()
    }
}

/// Run `f(seed)` for seeds `base_seed, base_seed+1, …` across `runs`
/// repetitions.
pub fn repeat_solver<F: FnMut(u64) -> RunOutcome>(
    runs: usize,
    base_seed: u64,
    mut f: F,
) -> RepeatStats {
    let outcomes = (0..runs as u64).map(|k| f(base_seed + k)).collect();
    RepeatStats { outcomes }
}

/// Format a `Duration` like the paper's TTS columns ("0.694s").
pub fn fmt_tts(d: Option<Duration>) -> String {
    match d {
        Some(d) => format!("{:.3}s", d.as_secs_f64()),
        None => "—".to_string(),
    }
}

/// Format a gap percentage like the paper's "(Gap)" rows.
pub fn fmt_gap(found: i64, reference: i64) -> String {
    if found == reference {
        return "0%".to_string();
    }
    let gap = (found - reference).abs() as f64 / reference.abs().max(1) as f64;
    format!("{:.3}%", 100.0 * gap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(e: i64, reached: bool, ms: u64) -> RunOutcome {
        RunOutcome {
            energy: e,
            reached,
            tts: Duration::from_millis(ms),
        }
    }

    #[test]
    fn stats_aggregate_correctly() {
        let s = RepeatStats {
            outcomes: vec![
                outcome(-10, true, 100),
                outcome(-9, false, 500),
                outcome(-10, true, 300),
            ],
        };
        assert_eq!(s.runs(), 3);
        assert_eq!(s.successes(), 2);
        assert!((s.success_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.mean_tts(), Some(Duration::from_millis(200)));
        assert_eq!(s.best_energy(), -10);
        assert_eq!(s.tts_seconds().len(), 2);
    }

    #[test]
    fn failed_runs_do_not_pollute_tts() {
        // the paper: failing trials are excluded from TTS
        let s = RepeatStats {
            outcomes: vec![outcome(-5, false, 10_000), outcome(-10, true, 100)],
        };
        assert_eq!(s.mean_tts(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn all_failures_yield_no_tts() {
        let s = RepeatStats {
            outcomes: vec![outcome(-5, false, 100)],
        };
        assert_eq!(s.mean_tts(), None);
        assert_eq!(fmt_tts(s.mean_tts()), "—");
    }

    #[test]
    fn repeat_solver_advances_seeds() {
        let mut seeds = Vec::new();
        repeat_solver(4, 100, |s| {
            seeds.push(s);
            outcome(0, true, 1)
        });
        assert_eq!(seeds, vec![100, 101, 102, 103]);
    }

    #[test]
    fn gap_formatting() {
        assert_eq!(fmt_gap(-33_337, -33_337), "0%");
        let g = fmt_gap(-33_241, -33_337);
        assert!(g.starts_with("0.28"), "{g}");
    }
}
