//! The machine-readable suite report — the repo's perf trajectory format.
//!
//! Every suite run serializes to one `BENCH_*.json` document: schema
//! version, host info, seed, mode, and per-entry [`MetricSet`]s with wall
//! (and on Linux, CPU) time. The committed `BENCH_<pr>.json` files at the
//! repo root form the trajectory; `suite compare` (see [`crate::baseline`])
//! diffs a fresh run against the latest committed point and fails CI on
//! gated regressions. Schema reference: `docs/BENCHMARKS.md`.

use crate::suite::{Family, SuiteMode};
use dabs_core::MetricSet;
use serde::json::Json;

/// Bumped on any incompatible change to the JSON layout. Comparisons across
/// different schema versions are refused.
pub const SCHEMA_VERSION: i64 = 1;

/// Where a report was produced. Informational: comparisons warn on host
/// mismatch but do not fail, since the committed baseline and a CI runner
/// are rarely the same machine (which is also why wall-clock metrics carry
/// generous tolerances or no gate at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostInfo {
    pub os: String,
    pub arch: String,
    pub cpus: usize,
}

impl HostInfo {
    pub fn detect() -> Self {
        HostInfo {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpus: detect_cpus(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("os", Json::str(self.os.clone())),
            ("arch", Json::str(self.arch.clone())),
            ("cpus", Json::from(self.cpus)),
        ])
    }

    fn from_json(j: &Json) -> Result<HostInfo, String> {
        Ok(HostInfo {
            os: j.get_str("os").ok_or("host missing \"os\"")?.to_string(),
            arch: j
                .get_str("arch")
                .ok_or("host missing \"arch\"")?
                .to_string(),
            cpus: j.get_u64("cpus").ok_or("host missing \"cpus\"")? as usize,
        })
    }
}

/// One suite entry's results.
#[derive(Debug, Clone, PartialEq)]
pub struct EntryReport {
    pub name: String,
    pub family: Family,
    /// Milliseconds since suite start when this entry began — entries run
    /// in registry order, so these are monotone (schema-validated).
    pub started_ms: u64,
    pub wall_ms: u64,
    /// Measurement context (kernel backend, segment-layer on/off, …):
    /// string key/value pairs that make trajectory points comparable across
    /// machines and code revisions. Optional in the schema — reports
    /// written before it existed parse with an empty context.
    pub context: Vec<(String, String)>,
    pub metrics: MetricSet,
}

impl EntryReport {
    fn to_json(&self) -> Json {
        let context = Json::Obj(
            self.context
                .iter()
                .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                .collect(),
        );
        Json::obj([
            ("name", Json::str(self.name.clone())),
            ("family", Json::str(self.family.name())),
            ("started_ms", Json::from(self.started_ms)),
            ("wall_ms", Json::from(self.wall_ms)),
            ("context", context),
            ("metrics", self.metrics.to_json()),
        ])
    }

    fn from_json(j: &Json) -> Result<EntryReport, String> {
        let name = j
            .get_str("name")
            .ok_or("entry missing \"name\"")?
            .to_string();
        let family = j
            .get_str("family")
            .and_then(Family::by_name)
            .ok_or_else(|| format!("entry {name:?}: bad family"))?;
        let context = match j.get("context") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| {
                            format!("entry {name:?}: context value for {k:?} not a string")
                        })
                })
                .collect::<Result<Vec<_>, _>>()?,
            Some(_) => return Err(format!("entry {name:?}: context is not an object")),
            None => Vec::new(),
        };
        Ok(EntryReport {
            started_ms: j
                .get_u64("started_ms")
                .ok_or_else(|| format!("entry {name:?}: missing started_ms"))?,
            wall_ms: j
                .get_u64("wall_ms")
                .ok_or_else(|| format!("entry {name:?}: missing wall_ms"))?,
            metrics: MetricSet::from_json(
                j.get("metrics")
                    .ok_or_else(|| format!("entry {name:?}: missing metrics"))?,
            )
            .map_err(|e| format!("entry {name:?}: {e}"))?,
            name,
            family,
            context,
        })
    }
}

/// A complete suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    pub schema_version: i64,
    pub mode: SuiteMode,
    pub seed: u64,
    pub host: HostInfo,
    pub wall_ms: u64,
    /// Process CPU time consumed by the run (Linux only, else absent).
    pub cpu_ms: Option<u64>,
    pub entries: Vec<EntryReport>,
}

impl SuiteReport {
    /// Serialize. Multi-line, one entry per line, so `BENCH_*.json` diffs
    /// stay readable in review while the document remains strict JSON.
    pub fn to_json_string(&self) -> String {
        let header = Json::obj([
            ("schema_version", Json::from(self.schema_version)),
            ("suite", Json::str("dabs-bench")),
            ("mode", Json::str(self.mode.name())),
            ("seed", Json::from(self.seed)),
            ("host", self.host.to_json()),
            ("wall_ms", Json::from(self.wall_ms)),
            ("cpu_ms", Json::from(self.cpu_ms)),
        ]);
        let Json::Obj(pairs) = header else {
            unreachable!()
        };
        let mut out = String::from("{\n");
        for (k, v) in &pairs {
            out.push_str(&format!("\"{k}\":{v},\n"));
        }
        out.push_str("\"entries\":[\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(&e.to_json().to_string());
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("]}\n");
        out
    }

    /// Parse a report document (strict: unknown schema versions rejected).
    pub fn from_json_str(text: &str) -> Result<SuiteReport, String> {
        let j = Json::parse(text).map_err(|e| e.to_string())?;
        let schema_version = j
            .get_i64("schema_version")
            .ok_or("missing \"schema_version\"")?;
        if schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build reads {SCHEMA_VERSION})"
            ));
        }
        let mode = j
            .get_str("mode")
            .and_then(SuiteMode::by_name)
            .ok_or("missing or bad \"mode\"")?;
        let entries = j
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or("missing \"entries\" array")?
            .iter()
            .map(EntryReport::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SuiteReport {
            schema_version,
            mode,
            seed: j.get_u64("seed").ok_or("missing \"seed\"")?,
            host: HostInfo::from_json(j.get("host").ok_or("missing \"host\"")?)?,
            wall_ms: j.get_u64("wall_ms").ok_or("missing \"wall_ms\"")?,
            cpu_ms: j.get_u64("cpu_ms"),
            entries,
        })
    }

    /// Schema validation: structural rules every `BENCH_*.json` must hold.
    ///
    /// * at least one entry, unique entry names
    /// * `started_ms` monotone non-decreasing across entries
    /// * every entry has at least one metric
    /// * every metric has a non-empty name and unit and a finite value
    pub fn validate(&self) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("report has no entries".into());
        }
        let mut last_start = 0u64;
        for (i, e) in self.entries.iter().enumerate() {
            if self.entries[..i].iter().any(|p| p.name == e.name) {
                return Err(format!("duplicate entry name {:?}", e.name));
            }
            if e.started_ms < last_start {
                return Err(format!(
                    "entry {:?} starts at {}ms, before the previous entry ({}ms): timestamps must be monotone",
                    e.name, e.started_ms, last_start
                ));
            }
            last_start = e.started_ms;
            if e.metrics.is_empty() {
                return Err(format!("entry {:?} has no metrics", e.name));
            }
            for m in e.metrics.iter() {
                if m.name.is_empty() {
                    return Err(format!(
                        "entry {:?} has a metric with an empty name",
                        e.name
                    ));
                }
                if m.unit.is_empty() {
                    return Err(format!("metric {}.{} has no unit", e.name, m.name));
                }
                if !m.value.is_finite() {
                    return Err(format!("metric {}.{} is not finite", e.name, m.name));
                }
                if m.tolerance < 0.0 || !m.tolerance.is_finite() {
                    return Err(format!("metric {}.{} has a bad tolerance", e.name, m.name));
                }
            }
        }
        Ok(())
    }

    /// Validation plus coverage: every listed family must have at least one
    /// non-empty entry (the acceptance bar for an unfiltered run).
    pub fn validate_coverage(&self, required: &[Family]) -> Result<(), String> {
        self.validate()?;
        for f in required {
            if !self.entries.iter().any(|e| e.family == *f) {
                return Err(format!("no entry for required family {:?}", f.name()));
            }
        }
        Ok(())
    }

    /// Look up an entry by name.
    pub fn entry(&self, name: &str) -> Option<&EntryReport> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Write to a file (see [`SuiteReport::to_json_string`]).
    pub fn write_file(&self, path: &std::path::Path) -> Result<(), String> {
        std::fs::write(path, self.to_json_string())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }

    /// Read and parse a report file.
    pub fn read_file(path: &std::path::Path) -> Result<SuiteReport, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        SuiteReport::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Robust CPU count: the max of `available_parallelism` (which reflects
/// cgroup/affinity limits and can report 1 in containers even on large
/// machines) and the `processor` entries in `/proc/cpuinfo`. Taking the max
/// records the hardware the box actually has — the number that makes
/// wall-clock trajectory points comparable across machines — rather than
/// whatever quota the run happened to execute under.
pub fn detect_cpus() -> usize {
    let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    avail.max(cpuinfo).max(1)
}

/// Process CPU time (user + system) in milliseconds, from `/proc/self/stat`.
/// Assumes the conventional 100 Hz clock-tick unit (`USER_HZ`); returns
/// `None` off Linux or if the file is unreadable.
pub fn cpu_time_ms() -> Option<u64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14/15 (utime/stime) counted after the parenthesised comm,
    // which may itself contain spaces.
    let rest = stat.rsplit_once(')')?.1;
    let fields: Vec<&str> = rest.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) * 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_core::{Direction, Metric, MetricSet};

    fn sample() -> SuiteReport {
        let mut m = MetricSet::new();
        m.push(
            Metric::new(
                "k2000.best_energy",
                -421.0,
                "energy",
                Direction::LowerIsBetter,
            )
            .deterministic()
            .gated(0.2),
        );
        m.push(Metric::new(
            "k2000.mean_tts_s",
            0.031,
            "s",
            Direction::LowerIsBetter,
        ));
        let mut srv = MetricSet::new();
        srv.push(Metric::new("jobs_per_s", 120.0, "jobs/s", Direction::HigherIsBetter).gated(0.6));
        SuiteReport {
            schema_version: SCHEMA_VERSION,
            mode: SuiteMode::Smoke,
            seed: 1,
            host: HostInfo::detect(),
            wall_ms: 1234,
            cpu_ms: Some(2400),
            entries: vec![
                EntryReport {
                    name: "ttt_maxcut".into(),
                    family: Family::MaxCut,
                    started_ms: 0,
                    wall_ms: 900,
                    context: vec![
                        ("kernel".into(), "auto".into()),
                        ("segments".into(), "on".into()),
                    ],
                    metrics: m,
                },
                EntryReport {
                    name: "server_throughput".into(),
                    family: Family::Server,
                    started_ms: 900,
                    wall_ms: 300,
                    context: Vec::new(),
                    metrics: srv,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = sample();
        let text = r.to_json_string();
        let back = SuiteReport::from_json_str(&text).expect("parse");
        assert_eq!(back, r);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text = sample()
            .to_json_string()
            .replace("\"schema_version\":1", "\"schema_version\":999");
        let err = SuiteReport::from_json_str(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn validate_accepts_sample_and_rejects_structural_breaks() {
        let r = sample();
        r.validate().expect("sample is valid");
        r.validate_coverage(&[Family::MaxCut, Family::Server])
            .expect("covered");
        assert!(r.validate_coverage(&[Family::Qap]).is_err());

        let mut empty = r.clone();
        empty.entries.clear();
        assert!(empty.validate().is_err());

        let mut no_metrics = r.clone();
        no_metrics.entries[1].metrics = MetricSet::new();
        assert!(no_metrics.validate().unwrap_err().contains("no metrics"));

        let mut backwards = r.clone();
        backwards.entries[1].started_ms = 0;
        backwards.entries[0].started_ms = 10;
        assert!(backwards.validate().unwrap_err().contains("monotone"));

        let mut dup = r.clone();
        dup.entries[1].name = dup.entries[0].name.clone();
        assert!(dup.validate().unwrap_err().contains("duplicate"));

        let mut unitless = r;
        let mut bad = MetricSet::new();
        bad.push(Metric::new("x", 1.0, "", Direction::LowerIsBetter));
        unitless.entries[0].metrics = bad;
        assert!(unitless.validate().unwrap_err().contains("unit"));
    }

    #[test]
    fn context_survives_round_trip_and_is_optional() {
        let r = sample();
        let back = SuiteReport::from_json_str(&r.to_json_string()).expect("parse");
        assert_eq!(
            back.entries[0].context,
            vec![
                ("kernel".to_string(), "auto".to_string()),
                ("segments".to_string(), "on".to_string()),
            ]
        );
        // Reports written before the context field existed (e.g. the
        // committed BENCH_4.json) must parse with an empty context.
        let legacy = r
            .to_json_string()
            .replace("\"context\":{\"kernel\":\"auto\",\"segments\":\"on\"},", "");
        let back = SuiteReport::from_json_str(&legacy).expect("legacy parse");
        assert!(back.entries[0].context.is_empty());
    }

    #[test]
    fn detect_cpus_is_at_least_one_and_at_least_available_parallelism() {
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(detect_cpus() >= avail.max(1));
    }

    #[test]
    fn cpu_time_is_available_on_linux() {
        if cfg!(target_os = "linux") {
            let a = cpu_time_ms().expect("/proc/self/stat readable");
            // burn a little CPU and check monotonicity
            let mut x = 0u64;
            for i in 0..2_000_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
            assert!(cpu_time_ms().expect("still readable") >= a);
        }
    }
}
