//! Baseline comparison — the regression gate over the perf trajectory.
//!
//! `suite compare` diffs a fresh [`SuiteReport`] against a committed
//! baseline (`BENCH_<pr>.json`). Only metrics the *baseline* marks `gate`
//! are enforced, each with its own relative tolerance: a candidate value
//! that moves in the metric's worse direction by more than
//! `tolerance × |baseline value|` is a regression, and a gated baseline
//! metric that disappeared from the candidate fails outright (a deleted
//! benchmark must be an explicit baseline update, never an accident).

use crate::report::SuiteReport;

/// One gated metric's comparison.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    pub entry: String,
    pub metric: String,
    pub unit: String,
    pub baseline: f64,
    pub candidate: f64,
    /// Positive = candidate is worse, in the metric's worse direction.
    pub worse_by: f64,
    /// Allowed worse-direction drift (`tolerance × |baseline|`, scaled).
    pub allowed: f64,
}

impl MetricDiff {
    fn describe(&self, verdict: &str) -> String {
        format!(
            "{verdict}: {}/{} — baseline {:.4} {u}, candidate {:.4} {u} (worse by {:.4}, allowed {:.4})",
            self.entry,
            self.metric,
            self.baseline,
            self.candidate,
            self.worse_by,
            self.allowed,
            u = self.unit,
        )
    }
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Gated metrics that moved past their tolerance in the worse direction.
    pub regressions: Vec<MetricDiff>,
    /// Gated metrics that moved past their tolerance in the *better*
    /// direction (informational — candidates for a baseline refresh).
    pub improvements: Vec<MetricDiff>,
    /// `entry/metric` paths gated in the baseline but absent from the
    /// candidate. Always a failure.
    pub missing: Vec<String>,
    /// Gated metrics checked.
    pub checked: usize,
}

impl CompareReport {
    /// True when CI should stay green.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for m in &self.missing {
            out.push_str(&format!(
                "MISSING: {m} — gated in baseline, absent from candidate\n"
            ));
        }
        for d in &self.regressions {
            out.push_str(&d.describe("REGRESSION"));
            out.push('\n');
        }
        for d in &self.improvements {
            out.push_str(&d.describe("improvement"));
            out.push('\n');
        }
        out.push_str(&format!(
            "compared {} gated metrics: {} regression(s), {} improvement(s), {} missing → {}\n",
            self.checked,
            self.regressions.len(),
            self.improvements.len(),
            self.missing.len(),
            if self.passed() { "PASS" } else { "FAIL" },
        ));
        out
    }
}

/// Compare a candidate run against a baseline.
///
/// `tolerance_scale` multiplies every per-metric tolerance (CI uses 1.0; a
/// noisy dev box can pass 2.0 without editing the baseline). Errors (as
/// opposed to regressions) mean the two reports are not comparable at all:
/// different schema, mode, or seed.
pub fn compare(
    baseline: &SuiteReport,
    candidate: &SuiteReport,
    tolerance_scale: f64,
) -> Result<CompareReport, String> {
    if baseline.schema_version != candidate.schema_version {
        return Err(format!(
            "schema mismatch: baseline v{}, candidate v{}",
            baseline.schema_version, candidate.schema_version
        ));
    }
    if baseline.mode != candidate.mode {
        return Err(format!(
            "mode mismatch: baseline ran {:?}, candidate ran {:?} — gates only make sense at equal scale",
            baseline.mode.name(),
            candidate.mode.name()
        ));
    }
    if baseline.seed != candidate.seed {
        return Err(format!(
            "seed mismatch: baseline {}, candidate {} — deterministic metrics are seed-specific",
            baseline.seed, candidate.seed
        ));
    }
    if baseline.host != candidate.host {
        eprintln!(
            "note: comparing across hosts ({}/{} {}cpu vs {}/{} {}cpu) — wall-clock metrics carry wide tolerances for this reason",
            baseline.host.os,
            baseline.host.arch,
            baseline.host.cpus,
            candidate.host.os,
            candidate.host.arch,
            candidate.host.cpus
        );
    }

    let mut report = CompareReport::default();
    for base_entry in &baseline.entries {
        let cand_entry = candidate.entry(&base_entry.name);
        for base_metric in base_entry.metrics.iter().filter(|m| m.gate) {
            let path = format!("{}/{}", base_entry.name, base_metric.name);
            let Some(cand_metric) = cand_entry.and_then(|e| e.metrics.get(&base_metric.name))
            else {
                report.missing.push(path);
                continue;
            };
            // A metric whose unit or direction changed under the same name
            // is a different measurement: gating its raw value against the
            // old baseline would be garbage arithmetic, so refuse outright
            // (same spirit as the mode/seed checks above).
            if cand_metric.unit != base_metric.unit {
                return Err(format!(
                    "{path}: unit changed ({:?} → {:?}) — refresh the baseline instead of comparing across units",
                    base_metric.unit, cand_metric.unit
                ));
            }
            if cand_metric.direction != base_metric.direction {
                return Err(format!(
                    "{path}: direction changed ({} → {}) — refresh the baseline",
                    base_metric.direction.name(),
                    cand_metric.direction.name()
                ));
            }
            report.checked += 1;
            let worse_by = base_metric.worse_by(base_metric.value, cand_metric.value);
            let allowed = base_metric.tolerance * base_metric.value.abs() * tolerance_scale;
            let diff = MetricDiff {
                entry: base_entry.name.clone(),
                metric: base_metric.name.clone(),
                unit: base_metric.unit.clone(),
                baseline: base_metric.value,
                candidate: cand_metric.value,
                worse_by,
                allowed,
            };
            if worse_by > allowed {
                report.regressions.push(diff);
            } else if worse_by < -allowed && worse_by < 0.0 {
                report.improvements.push(diff);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{EntryReport, HostInfo, SCHEMA_VERSION};
    use crate::suite::{Family, SuiteMode};
    use dabs_core::{Direction, Metric, MetricSet};

    fn report_with(metrics: Vec<Metric>) -> SuiteReport {
        let mut set = MetricSet::new();
        for m in metrics {
            set.push(m);
        }
        SuiteReport {
            schema_version: SCHEMA_VERSION,
            mode: SuiteMode::Smoke,
            seed: 1,
            host: HostInfo::detect(),
            wall_ms: 100,
            cpu_ms: None,
            entries: vec![EntryReport {
                name: "e".into(),
                family: Family::Kernel,
                started_ms: 0,
                wall_ms: 100,
                context: Vec::new(),
                metrics: set,
            }],
        }
    }

    fn speedup(v: f64) -> Metric {
        Metric::new("speedup", v, "ratio", Direction::HigherIsBetter).gated(0.4)
    }

    fn energy(v: f64) -> Metric {
        Metric::new("energy", v, "energy", Direction::LowerIsBetter)
            .deterministic()
            .gated(0.2)
    }

    #[test]
    fn identical_reports_pass() {
        let b = report_with(vec![speedup(3.6), energy(-1000.0)]);
        let r = compare(&b, &b.clone(), 1.0).unwrap();
        assert!(r.passed());
        assert_eq!(r.checked, 2);
        assert!(r.improvements.is_empty());
    }

    #[test]
    fn inflated_baseline_trips_the_gate() {
        // A doctored baseline claiming a 100× speedup must make any honest
        // candidate look like a regression.
        let doctored = report_with(vec![speedup(360.0)]);
        let honest = report_with(vec![speedup(3.6)]);
        let r = compare(&doctored, &honest, 1.0).unwrap();
        assert!(!r.passed());
        assert_eq!(r.regressions.len(), 1);
        assert!(r.render().contains("REGRESSION"), "{}", r.render());
    }

    #[test]
    fn tolerance_band_is_direction_aware_and_relative() {
        let base = report_with(vec![speedup(3.0), energy(-1000.0)]);
        // within tolerance both ways
        let ok = report_with(vec![speedup(2.0), energy(-850.0)]);
        assert!(compare(&base, &ok, 1.0).unwrap().passed());
        // energy regressed >20% of |baseline|
        let worse = report_with(vec![speedup(3.0), energy(-700.0)]);
        let r = compare(&base, &worse, 1.0).unwrap();
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].metric, "energy");
        // tolerance_scale loosens the band
        assert!(compare(&base, &worse, 2.0).unwrap().passed());
        // improvements are reported but never fail
        let better = report_with(vec![speedup(6.0), energy(-1300.0)]);
        let r = compare(&base, &better, 1.0).unwrap();
        assert!(r.passed());
        assert_eq!(r.improvements.len(), 2);
    }

    #[test]
    fn missing_gated_metric_fails() {
        let base = report_with(vec![speedup(3.0), energy(-1000.0)]);
        let cand = report_with(vec![speedup(3.0)]);
        let r = compare(&base, &cand, 1.0).unwrap();
        assert!(!r.passed());
        assert_eq!(r.missing, vec!["e/energy".to_string()]);
        // a whole missing entry reports every gated metric of it
        let mut no_entry = base.clone();
        no_entry.entries[0].name = "renamed".into();
        let r = compare(&base, &no_entry, 1.0).unwrap();
        assert_eq!(r.missing.len(), 2);
    }

    #[test]
    fn ungated_metrics_are_ignored() {
        let free = Metric::new("tts", 1.0, "s", Direction::LowerIsBetter);
        let base = report_with(vec![free.clone()]);
        let mut cand = report_with(vec![Metric::new(
            "tts",
            99.0,
            "s",
            Direction::LowerIsBetter,
        )]);
        assert!(compare(&base, &cand, 1.0).unwrap().passed());
        cand.entries[0].metrics = MetricSet::new();
        cand.entries[0]
            .metrics
            .push(Metric::new("other", 1.0, "s", Direction::LowerIsBetter));
        assert!(
            compare(&base, &cand, 1.0).unwrap().passed(),
            "ungated may vanish"
        );
    }

    #[test]
    fn changed_unit_or_direction_refuses_to_compare() {
        let base = report_with(vec![speedup(3.0)]);
        let mut other_unit = base.clone();
        other_unit.entries[0].metrics = MetricSet::new();
        other_unit.entries[0]
            .metrics
            .push(Metric::new("speedup", 3.0, "percent", Direction::HigherIsBetter).gated(0.4));
        assert!(compare(&base, &other_unit, 1.0)
            .unwrap_err()
            .contains("unit"));

        let mut other_dir = base.clone();
        other_dir.entries[0].metrics = MetricSet::new();
        other_dir.entries[0]
            .metrics
            .push(Metric::new("speedup", 3.0, "ratio", Direction::LowerIsBetter).gated(0.4));
        assert!(compare(&base, &other_dir, 1.0)
            .unwrap_err()
            .contains("direction"));
    }

    #[test]
    fn incomparable_reports_error() {
        let base = report_with(vec![speedup(3.0)]);
        let mut other_mode = base.clone();
        other_mode.mode = SuiteMode::Full;
        assert!(compare(&base, &other_mode, 1.0)
            .unwrap_err()
            .contains("mode"));
        let mut other_seed = base.clone();
        other_seed.seed = 2;
        assert!(compare(&base, &other_seed, 1.0)
            .unwrap_err()
            .contains("seed"));
        let mut other_schema = base.clone();
        other_schema.schema_version = 99;
        assert!(compare(&base, &other_schema, 1.0)
            .unwrap_err()
            .contains("schema"));
    }
}
