//! ASCII histograms matching the paper's figure binning
//! ("bins with labels b1, b2, … mean each bi corresponds to [bi, bi+1)").

/// A fixed-width-bin histogram over f64 samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    origin: f64,
    counts: Vec<u32>,
    samples: usize,
}

impl Histogram {
    /// Bins `[origin + k·w, origin + (k+1)·w)`.
    pub fn new(origin: f64, bin_width: f64) -> Self {
        assert!(bin_width > 0.0);
        Self {
            bin_width,
            origin,
            counts: Vec::new(),
            samples: 0,
        }
    }

    /// Add one sample (values below the origin clamp into bin 0).
    pub fn add(&mut self, value: f64) {
        let idx = (((value - self.origin) / self.bin_width).floor()).max(0.0) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.samples += 1;
    }

    /// Number of samples added.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Count in bin `k`.
    pub fn count(&self, k: usize) -> u32 {
        self.counts.get(k).copied().unwrap_or(0)
    }

    /// Number of (allocated) bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Label of bin `k` (its lower edge).
    pub fn label(&self, k: usize) -> f64 {
        self.origin + k as f64 * self.bin_width
    }

    /// Render as an ASCII bar chart.
    pub fn render(&self, title: &str) -> String {
        let mut out = format!("{title}  (n = {})\n", self.samples);
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        for (k, &c) in self.counts.iter().enumerate() {
            let bar_len = (c as usize * 50) / max as usize;
            out.push_str(&format!(
                "{:>8.2} | {:<50} {}\n",
                self.label(k),
                "#".repeat(bar_len),
                c
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_follow_paper_convention() {
        // bin k covers [k·w, (k+1)·w)
        let mut h = Histogram::new(0.0, 0.1);
        h.add(0.0);
        h.add(0.05);
        h.add(0.1); // exactly on the boundary → bin 1
        h.add(0.19);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.samples(), 4);
    }

    #[test]
    fn grows_to_fit() {
        let mut h = Histogram::new(0.0, 1.0);
        h.add(9.5);
        assert_eq!(h.bins(), 10);
        assert_eq!(h.count(9), 1);
        assert_eq!(h.count(3), 0);
    }

    #[test]
    fn labels_are_lower_edges() {
        let h = Histogram::new(2.0, 0.5);
        assert_eq!(h.label(0), 2.0);
        assert_eq!(h.label(3), 3.5);
    }

    #[test]
    fn negative_values_clamp_to_first_bin() {
        let mut h = Histogram::new(0.0, 1.0);
        h.add(-3.0);
        assert_eq!(h.count(0), 1);
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::new(0.0, 1.0);
        h.add(0.5);
        h.add(0.5);
        h.add(1.5);
        let s = h.render("test");
        assert!(s.contains("test"));
        assert!(s.contains("(n = 3)"));
    }
}
