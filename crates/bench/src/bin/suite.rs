//! The unified benchmark-suite runner — the machine-readable counterpart of
//! the table/figure bins and the producer of the repo's perf trajectory.
//!
//! ```text
//! cargo run --release -p dabs-bench --bin suite -- --smoke --out BENCH_ci.json
//! cargo run --release -p dabs-bench --bin suite -- compare --baseline BENCH_5.json
//! cargo run --release -p dabs-bench --bin suite -- --list
//! ```
//!
//! See `docs/BENCHMARKS.md` for the JSON schema and the CI gate.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(dabs_bench::suite_cli::run_from_args(&argv));
}
