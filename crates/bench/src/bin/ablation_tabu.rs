//! Ablation: tabu tenure 8 (the paper's fixed setting) vs tenure 0.
//!
//! Thin wrapper over [`dabs_bench::scenarios::ablation`]; the suite's
//! `ablation_tabu` entry runs the same arms deterministically.
//!
//! Flags: `--runs N`, `--seed S`, `--budget-ms B`, `--devices D`,
//! `--blocks K`, `--full`.

use dabs_bench::scenarios::ablation::{run_table, tabu_arms, ArmColumns};
use dabs_bench::{Args, RunPlan};

fn main() {
    let plan = RunPlan::from_args(&Args::from_env());
    println!("== Ablation: tabu tenure 8 vs 0 ==");
    println!(
        "runs = {}, per-family canonical budgets (see scenarios::family_budget_ms)\n",
        plan.runs
    );
    println!(
        "{}",
        run_table(&tabu_arms(), &plan, ArmColumns::Full).render()
    );
}
