//! Ablation: tabu tenure 8 (the paper's fixed setting) vs tenure 0.
//!
//! Flags: `--runs N`, `--seed S`, `--budget-ms B`.

use dabs_bench::harness::{dabs_run_outcome, establish_reference, fmt_tts};
use dabs_bench::instances::full_problem_suite;
use dabs_bench::{repeat_solver, Args, Table};
use dabs_core::DabsConfig;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let runs = args.get("runs", 5usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", 2_000));

    println!("== Ablation: tabu tenure 8 vs 0 ==");
    println!("runs = {runs}, per-run budget = {budget:?}\n");

    let mut table = Table::new(vec![
        "Problem",
        "PotOpt E",
        "tabu8 best",
        "tabu8 TTS",
        "tabu8 prob",
        "tabu0 best",
        "tabu0 TTS",
        "tabu0 prob",
    ]);

    for (label, model, params) in full_problem_suite(false, seed) {
        let mut with_tabu = DabsConfig::dabs(4, 2);
        with_tabu.params = params;
        with_tabu.params.tabu_tenure = 8;
        let mut no_tabu = with_tabu.clone();
        no_tabu.params.tabu_tenure = 0;

        let reference = establish_reference(&model, &with_tabu, budget * 3);

        let t8 = repeat_solver(runs, seed * 100, |s| {
            dabs_run_outcome(&model, &with_tabu, s, reference, budget)
        });
        let t0 = repeat_solver(runs, seed * 200, |s| {
            dabs_run_outcome(&model, &no_tabu, s, reference, budget)
        });

        table.row(vec![
            label,
            reference.to_string(),
            t8.best_energy().to_string(),
            fmt_tts(t8.mean_tts()),
            format!("{:.0}%", 100.0 * t8.success_rate()),
            t0.best_energy().to_string(),
            fmt_tts(t0.mean_tts()),
            format!("{:.0}%", 100.0 * t0.success_rate()),
        ]);
    }
    println!("{}", table.render());
}
