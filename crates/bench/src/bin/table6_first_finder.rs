//! Table VI: frequency of the algorithm/operation that *first found* the
//! potentially optimal solution.
//!
//! For each benchmark instance, repeats DABS runs and tallies which
//! (algorithm, operation) pair produced the final best solution of each
//! run — the paper's evidence that the *finisher* distribution differs from
//! the *executed* distribution of Table V.
//!
//! Flags: `--full`, `--runs N`, `--seed S`, `--budget-ms B`, `--devices D`,
//! `--blocks B`.

use dabs_bench::instances::full_problem_suite;
use dabs_bench::{Args, Table};
use dabs_core::{DabsConfig, DabsSolver, GeneticOp, Termination};
use dabs_search::MainAlgorithm;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let full = args.flag("full");
    let runs = args.get("runs", 5usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", if full { 30_000 } else { 2_000 }));
    let devices = args.get("devices", 4usize);
    let blocks = args.get("blocks", 2usize);

    println!("== Table VI: first-finder frequency ==");
    println!("runs = {runs}, per-run budget = {budget:?}\n");

    let mut headers = vec!["Problem".to_string()];
    headers.extend(MainAlgorithm::ALL.iter().map(|a| a.name().to_string()));
    headers.extend(GeneticOp::DABS.iter().map(|o| o.name().to_string()));
    let mut table = Table::new(headers);

    for (label, model, params) in full_problem_suite(full, seed) {
        let mut algo_counts = [0u32; 5];
        let mut op_counts = [0u32; 9];
        let mut counted = 0u32;
        for k in 0..runs as u64 {
            let mut cfg = DabsConfig::dabs(devices, blocks);
            cfg.params = params;
            cfg.seed = seed * 20_000 + k;
            let solver = DabsSolver::new(cfg).unwrap();
            let r = solver.run(&model, Termination::time(budget));
            if let Some((algo, op)) = r.first_finder {
                algo_counts[algo.index()] += 1;
                op_counts[op.index()] += 1;
                counted += 1;
            }
        }
        let denom = counted.max(1) as f64;
        let algo_pcts: Vec<f64> = MainAlgorithm::ALL
            .iter()
            .map(|a| 100.0 * algo_counts[a.index()] as f64 / denom)
            .collect();
        let op_pcts: Vec<f64> = GeneticOp::DABS
            .iter()
            .map(|o| 100.0 * op_counts[o.index()] as f64 / denom)
            .collect();
        let algo_max = algo_pcts.iter().cloned().fold(0.0f64, f64::max);
        let op_max = op_pcts.iter().cloned().fold(0.0f64, f64::max);

        let mut row = vec![label];
        row.extend(algo_pcts.iter().map(|&p| mark(p, algo_max)));
        row.extend(op_pcts.iter().map(|&p| mark(p, op_max)));
        table.row(row);
    }

    println!("{}", table.render());
    println!("('*' marks the row maximum — the paper's boldface)");
    println!("\npaper highlights: PositiveMin first-finds K2000 (93.1%) though it is");
    println!("executed only 25.1% of the time; Best first-finds MaxCut optima though");
    println!("rarely executed — the Table V vs VI divergence is the adaptivity story.");
}

fn mark(p: f64, max: f64) -> String {
    if (p - max).abs() < 1e-9 && max > 0.0 {
        format!("{p:.1}%*")
    } else {
        format!("{p:.1}%")
    }
}
