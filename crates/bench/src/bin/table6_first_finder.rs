//! Table VI: frequency of the algorithm/operation that *first found* the
//! potentially optimal solution.
//!
//! For each benchmark instance, repeats DABS runs and tallies which
//! (algorithm, operation) pair produced the final best solution of each
//! run — the paper's evidence that the *finisher* distribution differs from
//! the *executed* distribution of Table V. The measurement loop is the
//! shared [`dabs_bench::scenarios::frequency`].
//!
//! Flags: `--full`, `--runs N`, `--seed S`, `--budget-ms B`, `--devices D`,
//! `--blocks B`.

use dabs_bench::scenarios::{frequency, problem_suite};
use dabs_bench::{Args, RunPlan, Table};
use dabs_core::GeneticOp;
use dabs_search::MainAlgorithm;

fn main() {
    let plan = RunPlan::from_args(&Args::from_env());

    println!("== Table VI: first-finder frequency ==");
    println!(
        "runs = {}, per-family canonical budgets (see scenarios::family_budget_ms)\n",
        plan.runs
    );

    let mut table = Table::new(frequency::table_headers());

    for inst in problem_suite(plan.full, plan.seed) {
        let (algo_counts, op_counts, counted) = frequency::first_finder(&inst, &plan);
        let denom = counted.max(1) as f64;
        let algo_pcts: Vec<f64> = MainAlgorithm::ALL
            .iter()
            .map(|a| 100.0 * algo_counts[a.index()] as f64 / denom)
            .collect();
        let op_pcts: Vec<f64> = GeneticOp::DABS
            .iter()
            .map(|o| 100.0 * op_counts[o.index()] as f64 / denom)
            .collect();

        let mut row = vec![inst.label.clone()];
        row.extend(frequency::percent_row(&algo_pcts));
        row.extend(frequency::percent_row(&op_pcts));
        table.row(row);
    }

    println!("{}", table.render());
    println!("('*' marks the row maximum — the paper's boldface)");
    println!("\npaper highlights: PositiveMin first-finds K2000 (93.1%) though it is");
    println!("executed only 25.1% of the time; Best first-finds MaxCut optima though");
    println!("rarely executed — the Table V vs VI divergence is the adaptivity story.");
}
