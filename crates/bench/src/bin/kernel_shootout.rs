//! Kernel shootout: flips/s for the CSR and dense energy backends across an
//! instance-density sweep.
//!
//! The one-flip delta update is the hottest loop in the repo — every search
//! strategy, every baseline, and every server job funnels through it. This
//! bin pits the two [`dabs_model::QuboKernel`] backends against each other
//! on identical random instances and reports raw flip throughput plus what
//! the `auto` policy would have picked, so a regression in either backend
//! (or a mistuned density threshold) is visible in every CI log.
//!
//! ```text
//! cargo run --release -p dabs-bench --bin kernel_shootout
//! cargo run --release -p dabs-bench --bin kernel_shootout -- \
//!     --n 2048 --flips 500000 --seed 7
//! cargo run --release -p dabs-bench --bin kernel_shootout -- --smoke
//! ```
//!
//! Methodology: one model per density; a pre-generated random flip sequence
//! (so the RNG is off the measured path) is applied to a resident
//! [`IncrementalState`] per backend, timed after an untimed warm-up pass.
//! Identical flip sequences mean both backends do exactly the same logical
//! work; only the weight-layout changes.

use dabs_bench::{Args, Table};
use dabs_model::{
    CsrKernel, DenseKernel, IncrementalState, KernelChoice, QuboBuilder, QuboKernel, QuboModel,
    DENSE_DENSITY_THRESHOLD,
};
use dabs_rng::{Rng64, Xorshift64Star};
use std::time::Instant;

fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
    let mut rng = Xorshift64Star::new(seed);
    let mut b = QuboBuilder::new(n);
    // Force dense storage so both backends are measurable on one model;
    // the auto verdict is reported separately from `density()`.
    b.kernel(KernelChoice::Dense);
    for i in 0..n {
        b.add_linear(i, rng.next_range_i64(-9, 9));
        for j in (i + 1)..n {
            if rng.next_bool(density) {
                b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
            }
        }
    }
    b.build().expect("valid model")
}

/// Apply `order` to a fresh state twice (warm-up + timed); flips/s of the
/// timed pass.
fn measure<K: QuboKernel>(model: &QuboModel, kernel: K, order: &[u32]) -> f64 {
    let mut state = IncrementalState::with_kernel(model, kernel);
    for &i in order {
        state.flip(i as usize);
    }
    let start = Instant::now();
    for &i in order {
        state.flip(i as usize);
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(state.energy());
    order.len() as f64 / secs
}

fn human(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2} Mflip/s", rate / 1e6)
    } else {
        format!("{:.0} kflip/s", rate / 1e3)
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let n: usize = args.get("n", 1024);
    let flips: usize = args.get("flips", if smoke { 60_000 } else { 400_000 });
    let seed: u64 = args.get("seed", 1);
    let densities: Vec<f64> = if smoke {
        vec![0.05, 0.5, 0.95]
    } else {
        vec![0.05, 0.1, 0.25, 0.5, 0.75, 0.95]
    };

    println!(
        "kernel shootout — n = {n}, {flips} timed flips per backend, seed {seed} \
         (auto threshold: density ≥ {DENSE_DENSITY_THRESHOLD})"
    );

    // The acceptance contract CI enforces in smoke mode: dense must beat
    // CSR by at least this factor wherever the density is ≥ 0.5 (measured
    // headroom is ~3.5×, so a trip means a real kernel regression, not
    // runner noise).
    const SMOKE_MIN_SPEEDUP: f64 = 2.0;
    let mut violations: Vec<String> = Vec::new();

    let mut table = Table::new(vec!["density", "nnz", "auto", "csr", "dense", "speedup"]);
    for (idx, &density) in densities.iter().enumerate() {
        let model = random_model(n, density, seed.wrapping_add(idx as u64));
        let mut rng = Xorshift64Star::new(seed ^ 0xF11F_5EED);
        let order: Vec<u32> = (0..flips).map(|_| rng.next_index(n) as u32).collect();

        let csr_rate = measure(&model, CsrKernel::new(&model), &order);
        let dense_rate = measure(&model, DenseKernel::new(&model), &order);

        let auto = {
            let mut probe = model.clone();
            probe.select_kernel(KernelChoice::Auto);
            probe.kernel_kind().name()
        };
        let speedup = dense_rate / csr_rate;
        if density >= 0.5 && speedup < SMOKE_MIN_SPEEDUP {
            violations.push(format!(
                "density {:.2}: dense is only {speedup:.2}× csr (contract: ≥ {SMOKE_MIN_SPEEDUP}×)",
                model.density()
            ));
        }
        table.row(vec![
            format!("{:.2}", model.density()),
            format!("{}", model.edge_count()),
            auto.to_string(),
            human(csr_rate),
            human(dense_rate),
            format!("{speedup:.2}×"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "speedup = dense / csr; `auto` is the backend the density policy selects at model build"
    );
    // Violations are always reported; only smoke mode (the CI gate) turns
    // them into a failing exit, since full sweeps run on arbitrary hardware.
    for v in &violations {
        eprintln!("SPEEDUP CONTRACT VIOLATED — {v}");
    }
    if smoke && !violations.is_empty() {
        std::process::exit(1);
    }
}
