//! Kernel shootout: flips/s for the CSR and dense energy backends across an
//! instance-density sweep.
//!
//! The one-flip delta update is the hottest loop in the repo — every search
//! strategy, every baseline, and every server job funnels through it. This
//! bin is a thin wrapper over [`dabs_bench::scenarios::kernel`], the same
//! sweep the suite's `kernel_sweep` entry records into `BENCH_*.json`; it
//! prints raw flip throughput per backend plus what the `auto` policy would
//! have picked, so a regression in either backend (or a mistuned density
//! threshold) is visible in every CI log.
//!
//! ```text
//! cargo run --release -p dabs-bench --bin kernel_shootout
//! cargo run --release -p dabs-bench --bin kernel_shootout -- \
//!     --n 2048 --flips 500000 --seed 7
//! cargo run --release -p dabs-bench --bin kernel_shootout -- --smoke
//! ```
//!
//! Methodology: one model per density; a pre-generated random flip sequence
//! (so the RNG is off the measured path) is applied to a resident
//! `IncrementalState` per backend, timed after an untimed warm-up pass.
//! Identical flip sequences mean both backends do exactly the same logical
//! work; only the weight-layout changes.

use dabs_bench::scenarios::kernel::{
    sweep, violations, SMOKE_MIN_SPEEDUP, SPEEDUP_CONTRACT_MIN_DENSITY,
};
use dabs_bench::{Args, Table};
use dabs_model::DENSE_DENSITY_THRESHOLD;

fn human(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2} Mflip/s", rate / 1e6)
    } else {
        format!("{:.0} kflip/s", rate / 1e3)
    }
}

fn main() {
    let args = Args::from_env();
    let smoke = args.flag("smoke");
    let n: usize = args.get("n", 1024);
    let flips: usize = args.get("flips", if smoke { 60_000 } else { 400_000 });
    let seed: u64 = args.get("seed", 1);
    let densities: Vec<f64> = if smoke {
        vec![0.05, 0.5, 0.95]
    } else {
        vec![0.05, 0.1, 0.25, 0.5, 0.75, 0.95]
    };

    println!(
        "kernel shootout — n = {n}, {flips} timed flips per backend, seed {seed} \
         (auto threshold: density ≥ {DENSE_DENSITY_THRESHOLD}; \
          smoke contract: dense ≥ {SMOKE_MIN_SPEEDUP}× csr at density ≥ {SPEEDUP_CONTRACT_MIN_DENSITY})"
    );

    let points = sweep(n, flips, seed, &densities);

    let mut table = Table::new(vec!["density", "nnz", "auto", "csr", "dense", "speedup"]);
    for p in &points {
        table.row(vec![
            format!("{:.2}", p.density),
            format!("{}", p.nnz),
            p.auto.to_string(),
            human(p.csr_rate),
            human(p.dense_rate),
            format!("{:.2}×", p.speedup()),
        ]);
    }
    print!("{}", table.render());
    println!(
        "speedup = dense / csr; `auto` is the backend the density policy selects at model build"
    );
    // Violations are always reported; only smoke mode (the CI gate) turns
    // them into a failing exit, since full sweeps run on arbitrary hardware.
    let bad = violations(&points);
    for v in &bad {
        eprintln!("SPEEDUP CONTRACT VIOLATED — {v}");
    }
    if smoke && !bad.is_empty() {
        std::process::exit(1);
    }
}
