//! Fig. 5: histogram of DABS Time-To-Solution on the K2000-class MaxCut.
//!
//! The paper runs DABS 1 000 times and bins TTS at 0.1 s; all runs finish
//! under 1.7 s. Default CI scale uses fewer runs and auto-scaled bins.
//! Setup and measurement protocol come from the shared
//! [`dabs_bench::scenarios`] plan (canonical MaxCut family budget).
//!
//! Flags: `--full`, `--runs N` (default 25; paper: 1000), `--seed S`,
//! `--budget-ms B`, `--bin-ms W`, `--devices D`, `--blocks B`, `--n N`.

use dabs_bench::harness::{dabs_run_outcome, establish_reference};
use dabs_bench::instances::maxcut_set;
use dabs_bench::suite::Family;
use dabs_bench::{repeat_solver, Args, Histogram, RunPlan};
use dabs_problems::gset;
use dabs_search::SearchParams;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let plan = RunPlan::from_args_with_runs(&args, 25);
    let budget = plan.budget(Family::MaxCut);
    let bin = args.get("bin-ms", if plan.full { 100u64 } else { 50 }) as f64 / 1000.0;
    let n_override = args.get("n", 0usize);

    let bench = if n_override > 0 {
        dabs_bench::instances::MaxCutBench {
            label: "K2000(custom n)",
            problem: gset::k2000_like(n_override, plan.seed),
        }
    } else {
        maxcut_set(plan.full, plan.seed).remove(0) // the K2000-class instance
    };
    println!(
        "== Fig. 5: TTS histogram, {} (n = {}) ==",
        bench.label,
        bench.problem.n()
    );
    println!("runs = {}, bin width = {bin}s\n", plan.runs);

    let model = Arc::new(bench.problem.to_qubo());
    let cfg = plan.dabs(SearchParams::maxcut());
    let reference = establish_reference(&model, &cfg, budget * 3);
    println!(
        "potentially optimal energy: {reference} (cut {})",
        -reference
    );

    let stats = repeat_solver(plan.runs, plan.arm_seed(0), |s| {
        dabs_run_outcome(&model, &cfg, s, reference, budget)
    });

    let mut hist = Histogram::new(0.0, bin);
    for t in stats.tts_seconds() {
        hist.add(t);
    }
    println!(
        "{}",
        hist.render(&format!(
            "TTS to reach {reference} ({} / {} runs succeeded)",
            stats.successes(),
            stats.runs()
        ))
    );
    println!("paper shape: all 1000 runs < 1.7s, mode at 0.4–0.7s, right-skewed tail.");
}
