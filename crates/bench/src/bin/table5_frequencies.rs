//! Table V: frequency of main search algorithms and genetic operations
//! *executed* by DABS, per problem.
//!
//! For each of the nine benchmark instances, runs DABS `--runs` times and
//! aggregates the dispatch counters; prints the paper's percentage matrix.
//! The boldface-equivalent (most-frequent entry) is marked with `*`. The
//! measurement loop is the shared [`dabs_bench::scenarios::frequency`].
//!
//! Flags: `--full`, `--runs N` (default 3), `--seed S`, `--budget-ms B`,
//! `--devices D`, `--blocks B`.

use dabs_bench::scenarios::{frequency, problem_suite};
use dabs_bench::{Args, RunPlan, Table};
use dabs_core::GeneticOp;
use dabs_search::MainAlgorithm;

fn main() {
    let plan = RunPlan::from_args_with_runs(&Args::from_env(), 3);

    println!("== Table V: executed-frequency of algorithms and operations ==");
    println!(
        "runs = {}, per-family canonical budgets (see scenarios::family_budget_ms)\n",
        plan.runs
    );

    let mut table = Table::new(frequency::table_headers());

    for inst in problem_suite(plan.full, plan.seed) {
        let report = frequency::executed(&inst, &plan);
        let algo_pcts: Vec<f64> = MainAlgorithm::ALL
            .iter()
            .map(|&a| report.algo_percent(a))
            .collect();
        let op_pcts: Vec<f64> = GeneticOp::DABS
            .iter()
            .map(|&o| report.op_percent(o))
            .collect();

        let mut row = vec![inst.label.clone()];
        row.extend(frequency::percent_row(&algo_pcts));
        row.extend(frequency::percent_row(&op_pcts));
        table.row(row);
    }

    println!("{}", table.render());
    println!("('*' marks the row maximum — the paper's boldface)");
    println!("\npaper highlights: PositiveMin dominates most rows (e.g. tai20a 60.4%),");
    println!("CyclicMin leads QASP256 (35.7%); Zero dominates tai20a (73.0%),");
    println!("Crossover dominates nug30 (62.8%).");
}
