//! Table V: frequency of main search algorithms and genetic operations
//! *executed* by DABS, per problem.
//!
//! For each of the nine benchmark instances, runs DABS `--runs` times and
//! aggregates the dispatch counters; prints the paper's percentage matrix.
//! The boldface-equivalent (most-frequent entry) is marked with `*`.
//!
//! Flags: `--full`, `--runs N`, `--seed S`, `--budget-ms B`, `--devices D`,
//! `--blocks B`.

use dabs_bench::instances::full_problem_suite;
use dabs_bench::{Args, Table};
use dabs_core::{DabsConfig, DabsSolver, FrequencyReport, GeneticOp, Termination};
use dabs_search::MainAlgorithm;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let full = args.flag("full");
    let runs = args.get("runs", 3usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", if full { 30_000 } else { 2_000 }));
    let devices = args.get("devices", 4usize);
    let blocks = args.get("blocks", 2usize);

    println!("== Table V: executed-frequency of algorithms and operations ==");
    println!("runs = {runs}, per-run budget = {budget:?}\n");

    let algo_headers: Vec<String> = MainAlgorithm::ALL
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let op_headers: Vec<String> = GeneticOp::DABS
        .iter()
        .map(|o| o.name().to_string())
        .collect();
    let mut headers = vec!["Problem".to_string()];
    headers.extend(algo_headers);
    headers.extend(op_headers);
    let mut table = Table::new(headers);

    for (label, model, params) in full_problem_suite(full, seed) {
        let mut agg: Option<FrequencyReport> = None;
        for k in 0..runs as u64 {
            let mut cfg = DabsConfig::dabs(devices, blocks);
            cfg.params = params;
            cfg.seed = seed * 10_000 + k;
            let solver = DabsSolver::new(cfg).unwrap();
            let r = solver.run(&model, Termination::time(budget));
            match &mut agg {
                Some(a) => a.merge(&r.frequencies),
                None => agg = Some(r.frequencies),
            }
        }
        let report = agg.expect("at least one run");

        let algo_pcts: Vec<f64> = MainAlgorithm::ALL
            .iter()
            .map(|&a| report.algo_percent(a))
            .collect();
        let op_pcts: Vec<f64> = GeneticOp::DABS
            .iter()
            .map(|&o| report.op_percent(o))
            .collect();
        let algo_max = algo_pcts.iter().cloned().fold(0.0f64, f64::max);
        let op_max = op_pcts.iter().cloned().fold(0.0f64, f64::max);

        let mut row = vec![label];
        row.extend(algo_pcts.iter().map(|&p| mark(p, algo_max)));
        row.extend(op_pcts.iter().map(|&p| mark(p, op_max)));
        table.row(row);
    }

    println!("{}", table.render());
    println!("('*' marks the row maximum — the paper's boldface)");
    println!("\npaper highlights: PositiveMin dominates most rows (e.g. tai20a 60.4%),");
    println!("CyclicMin leads QASP256 (35.7%); Zero dominates tai20a (73.0%),");
    println!("Crossover dominates nug30 (62.8%).");
}

fn mark(p: f64, max: f64) -> String {
    if (p - max).abs() < 1e-9 && max > 0.0 {
        format!("{p:.1}%*")
    } else {
        format!("{p:.1}%")
    }
}
