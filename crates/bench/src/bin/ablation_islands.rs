//! Ablation: island ring (multiple pools + Xrossover) vs a single pool.
//!
//! Compares 4 devices × 2 blocks (four islands) against 1 device × 8 blocks
//! (one island, same total block workers) — the paper's §IV-B diversity
//! argument in isolation.
//!
//! Flags: `--runs N`, `--seed S`, `--budget-ms B`.

use dabs_bench::harness::{dabs_run_outcome, establish_reference, fmt_tts};
use dabs_bench::instances::full_problem_suite;
use dabs_bench::{repeat_solver, Args, Table};
use dabs_core::DabsConfig;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let runs = args.get("runs", 5usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", 2_000));

    println!("== Ablation: 4 islands × 2 blocks vs 1 island × 8 blocks ==");
    println!("runs = {runs}, per-run budget = {budget:?}\n");

    let mut table = Table::new(vec![
        "Problem",
        "PotOpt E",
        "islands best",
        "islands TTS",
        "islands prob",
        "single best",
        "single TTS",
        "single prob",
    ]);

    for (label, model, params) in full_problem_suite(false, seed) {
        let mut islands = DabsConfig::dabs(4, 2);
        islands.params = params;
        let mut single = DabsConfig::dabs(1, 8);
        single.params = params;

        let reference = establish_reference(&model, &islands, budget * 3);

        let multi = repeat_solver(runs, seed * 100, |s| {
            dabs_run_outcome(&model, &islands, s, reference, budget)
        });
        let one = repeat_solver(runs, seed * 200, |s| {
            dabs_run_outcome(&model, &single, s, reference, budget)
        });

        table.row(vec![
            label,
            reference.to_string(),
            multi.best_energy().to_string(),
            fmt_tts(multi.mean_tts()),
            format!("{:.0}%", 100.0 * multi.success_rate()),
            one.best_energy().to_string(),
            fmt_tts(one.mean_tts()),
            format!("{:.0}%", 100.0 * one.success_rate()),
        ]);
    }
    println!("{}", table.render());
}
