//! Ablation: island ring (multiple pools + Xrossover) vs a single pool.
//!
//! Compares 4 devices × 2 blocks (four islands) against 1 device × 8 blocks
//! (one island, same total block workers) — the paper's §IV-B diversity
//! argument in isolation. Thin wrapper over
//! [`dabs_bench::scenarios::ablation`]; the suite's `ablation_islands`
//! entry runs the same arms deterministically.
//!
//! Flags: `--runs N`, `--seed S`, `--budget-ms B`, `--full`.

use dabs_bench::scenarios::ablation::{islands_arms, run_table, ArmColumns};
use dabs_bench::{Args, RunPlan};

fn main() {
    let plan = RunPlan::from_args(&Args::from_env());
    println!("== Ablation: 4 islands × 2 blocks vs 1 island × 8 blocks ==");
    println!(
        "runs = {}, per-family canonical budgets (see scenarios::family_budget_ms)\n",
        plan.runs
    );
    println!(
        "{}",
        run_table(&islands_arms(), &plan, ArmColumns::Full).render()
    );
}
