//! Fig. 6: histogram of hybrid-solver results on the K2000-class MaxCut at
//! three time limits.
//!
//! The paper runs the D-Wave Hybrid solver 100× at T = 50/100/200 s and
//! shows the best-energy distribution sharpening toward the optimum as the
//! budget grows. Our stand-in portfolio is run at `--t-ms`, `2×`, `4×`.
//! Instance and seed handling come from the shared
//! [`dabs_bench::scenarios`] plan.
//!
//! Flags: `--full`, `--runs N` (default 20; paper: 100), `--seed S`,
//! `--t-ms T` (base deadline), `--bin W`, `--n N`.

use dabs_baselines::hybrid::{HybridConfig, HybridSolver};
use dabs_bench::harness::establish_reference;
use dabs_bench::instances::maxcut_set;
use dabs_bench::{Args, Histogram, RunPlan};
use dabs_search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let plan = RunPlan::from_args_with_runs(&args, 20);
    let t_base = Duration::from_millis(args.get("t-ms", if plan.full { 5_000 } else { 250 }));

    let n_override = args.get("n", 0usize);
    let bench = if n_override > 0 {
        dabs_bench::instances::MaxCutBench {
            label: "K2000(custom n)",
            problem: dabs_problems::gset::k2000_like(n_override, plan.seed),
        }
    } else {
        maxcut_set(plan.full, plan.seed).remove(0)
    };
    println!(
        "== Fig. 6: hybrid-solver energy histogram, {} (n = {}) ==",
        bench.label,
        bench.problem.n()
    );
    println!(
        "runs = {} per deadline, deadlines = T/2T/4T with T = {t_base:?}\n",
        plan.runs
    );

    let model = Arc::new(bench.problem.to_qubo());
    let cfg = plan.dabs(SearchParams::maxcut());
    let reference = establish_reference(&model, &cfg, t_base * 8);
    println!("potentially optimal energy: {reference}\n");

    let bin_width: f64 = args.get("bin", 1.0f64);
    for factor in [1u32, 2, 4] {
        let deadline = t_base * factor;
        let mut hist = Histogram::new(0.0, bin_width);
        let mut hits = 0;
        for k in 0..plan.runs as u64 {
            let r = HybridSolver::new(HybridConfig {
                time_limit: deadline,
                seed: plan.seed * 3000 + factor as u64 * 100 + k,
                ..HybridConfig::default()
            })
            .solve(&model);
            // bin by distance from the optimum (0 = found it)
            hist.add((r.energy - reference) as f64);
            if r.energy == reference {
                hits += 1;
            }
        }
        println!(
            "{}",
            hist.render(&format!(
                "T = {deadline:?}: energy − optimum ({hits}/{} runs found the optimum)",
                plan.runs
            ))
        );
    }
    println!("paper shape: optimum found 4/100 at T=50s, 16/100 at T=100s, 59/100 at T=200s —");
    println!("the distribution mass migrates into the optimal bin as T doubles.");
}
