//! Table II: MaxCut on K2000 / G22 / G39-class instances.
//!
//! Rows: potentially-optimal energy, DABS TTS, ABS TTS + success
//! probability, branch-and-bound ("Gurobi") gap, hybrid-solver result, and
//! simulated bifurcation (CIM/dSB-class) gap. The DABS/ABS protocol is the
//! shared [`dabs_bench::scenarios::measure_dabs_abs`]; the baseline solvers
//! are this table's own extras.
//!
//! Flags: `--full` (paper-sized n = 2000), `--runs N` (default 5),
//! `--seed S`, `--budget-ms B` (per measured run; default = the canonical
//! MaxCut family budget), `--devices D`, `--blocks B`.

use dabs_baselines::bnb::{BnbConfig, BranchAndBound};
use dabs_baselines::hybrid::{HybridConfig, HybridSolver};
use dabs_baselines::sb::{SbConfig, SimulatedBifurcation};
use dabs_bench::harness::{fmt_gap, fmt_tts};
use dabs_bench::instances::maxcut_set;
use dabs_bench::scenarios::{measure_dabs_abs, warn_unconverged};
use dabs_bench::suite::Family;
use dabs_bench::{Args, RunPlan, Table};
use dabs_search::SearchParams;
use std::sync::Arc;

fn main() {
    let plan = RunPlan::from_args(&Args::from_env());
    let budget = plan.budget(Family::MaxCut);

    println!(
        "== Table II: MaxCut ({}) ==",
        if plan.full { "paper scale" } else { "CI scale" }
    );
    println!(
        "runs = {}, per-run budget = {budget:?}, devices = {}×{} blocks\n",
        plan.runs, plan.devices, plan.blocks
    );

    let mut table = Table::new(vec![
        "MaxCut",
        "PotOpt E",
        "Cut",
        "DABS E",
        "DABS TTS",
        "ABS E",
        "ABS TTS",
        "ABS Prob",
        "BnB(Gurobi) gap",
        "Hybrid gap",
        "dSB gap",
    ]);

    for bench in maxcut_set(plan.full, plan.seed) {
        let model = Arc::new(bench.problem.to_qubo());

        // paper parameters for MaxCut: s = 0.1, b = 10
        let pair = measure_dabs_abs(&model, SearchParams::maxcut(), &plan, Family::MaxCut);
        let reference = pair.reference;

        let bnb = BranchAndBound::new(BnbConfig {
            time_limit: budget,
            heuristic_restarts: 32,
            seed: plan.seed,
        })
        .solve(&model);

        let hybrid = HybridSolver::new(HybridConfig {
            time_limit: budget,
            seed: plan.seed,
            ..HybridConfig::default()
        })
        .solve(&model);

        let (ising, c) = model.to_ising();
        let sb = SimulatedBifurcation::new(SbConfig {
            steps: if plan.full { 20_000 } else { 5_000 },
            seed: plan.seed,
            ..SbConfig::default()
        })
        .solve(&ising);
        // H = 4E − C  ⇒  E = (H + C)/4
        let sb_energy = (sb.energy + c) / 4;

        warn_unconverged(bench.label, reference, pair.observed_best());
        table.row(vec![
            bench.label.to_string(),
            reference.to_string(),
            (-reference).to_string(),
            pair.dabs.best_energy().to_string(),
            fmt_tts(pair.dabs.mean_tts()),
            pair.abs.best_energy().to_string(),
            fmt_tts(pair.abs.mean_tts()),
            format!("{:.1}%", 100.0 * pair.abs.success_rate()),
            fmt_gap(bnb.energy, reference),
            fmt_gap(hybrid.energy, reference),
            fmt_gap(sb_energy, reference),
        ]);
    }

    println!("{}", table.render());
    println!("paper (for shape comparison, published instances):");
    println!("  K2000: PotOpt −33337, DABS TTS 0.694s, ABS 9.19s @99.2%, Gurobi gap 0.287%, Hybrid TTS 100–200s, CIM gap 0.438%");
    println!("  G22:   PotOpt −13359, DABS TTS 1.58s,  ABS 19.7s @69.5%, Gurobi gap 1.66%,  Hybrid TTS 10–20s,  CIM gap 0.344%");
    println!("  G39:   PotOpt −2408,  DABS TTS 7.56s,  ABS 15.1s @78.6%, Gurobi gap 5.48%,  Hybrid TTS 50–100s, CIM gap 1.95%");
}
