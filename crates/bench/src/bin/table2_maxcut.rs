//! Table II: MaxCut on K2000 / G22 / G39-class instances.
//!
//! Rows: potentially-optimal energy, DABS TTS, ABS TTS + success
//! probability, branch-and-bound ("Gurobi") gap, hybrid-solver result, and
//! simulated bifurcation (CIM/dSB-class) gap.
//!
//! Flags: `--full` (paper-sized n = 2000), `--runs N` (default 5),
//! `--seed S`, `--budget-ms B` (per measured run), `--devices D`,
//! `--blocks B`.

use dabs_baselines::bnb::{BnbConfig, BranchAndBound};
use dabs_baselines::hybrid::{HybridConfig, HybridSolver};
use dabs_baselines::sb::{SbConfig, SimulatedBifurcation};
use dabs_bench::harness::{dabs_run_outcome, establish_reference, fmt_gap, fmt_tts};
use dabs_bench::instances::maxcut_set;
use dabs_bench::{repeat_solver, Args, Table};
use dabs_core::DabsConfig;
use dabs_search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let full = args.flag("full");
    let runs = args.get("runs", 5usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", if full { 60_000 } else { 3_000 }));
    let devices = args.get("devices", 4usize);
    let blocks = args.get("blocks", 2usize);

    println!(
        "== Table II: MaxCut ({}) ==",
        if full { "paper scale" } else { "CI scale" }
    );
    println!("runs = {runs}, per-run budget = {budget:?}, devices = {devices}×{blocks} blocks\n");

    let mut table = Table::new(vec![
        "MaxCut",
        "PotOpt E",
        "Cut",
        "DABS E",
        "DABS TTS",
        "ABS E",
        "ABS TTS",
        "ABS Prob",
        "BnB(Gurobi) gap",
        "Hybrid gap",
        "dSB gap",
    ]);

    for bench in maxcut_set(full, seed) {
        let model = Arc::new(bench.problem.to_qubo());

        // paper parameters for MaxCut: s = 0.1, b = 10
        let mut dabs_cfg = DabsConfig::dabs(devices, blocks);
        dabs_cfg.params = SearchParams::maxcut();
        let mut abs_cfg = DabsConfig::abs_baseline(devices, blocks);
        abs_cfg.params = SearchParams::maxcut();

        // potentially-optimal reference: long DABS run (3× measured budget)
        let reference = establish_reference(&model, &dabs_cfg, budget * 3);

        let dabs = repeat_solver(runs, seed * 1000, |s| {
            dabs_run_outcome(&model, &dabs_cfg, s, reference, budget)
        });
        let abs = repeat_solver(runs, seed * 2000, |s| {
            dabs_run_outcome(&model, &abs_cfg, s, reference, budget)
        });

        let bnb = BranchAndBound::new(BnbConfig {
            time_limit: budget,
            heuristic_restarts: 32,
            seed,
        })
        .solve(&model);

        let hybrid = HybridSolver::new(HybridConfig {
            time_limit: budget,
            seed,
            ..HybridConfig::default()
        })
        .solve(&model);

        let (ising, c) = model.to_ising();
        let sb = SimulatedBifurcation::new(SbConfig {
            steps: if full { 20_000 } else { 5_000 },
            seed,
            ..SbConfig::default()
        })
        .solve(&ising);
        // H = 4E − C  ⇒  E = (H + C)/4
        let sb_energy = (sb.energy + c) / 4;

        let observed_best = reference.min(dabs.best_energy()).min(abs.best_energy());
        if observed_best < reference {
            println!(
                "note: {} reference {reference} was not converged — a measured run reached {observed_best}; \
                 rerun with a larger --budget-ms for tighter TTS statistics",
                bench.label
            );
        }
        table.row(vec![
            bench.label.to_string(),
            reference.to_string(),
            (-reference).to_string(),
            dabs.best_energy().to_string(),
            fmt_tts(dabs.mean_tts()),
            abs.best_energy().to_string(),
            fmt_tts(abs.mean_tts()),
            format!("{:.1}%", 100.0 * abs.success_rate()),
            fmt_gap(bnb.energy, reference),
            fmt_gap(hybrid.energy, reference),
            fmt_gap(sb_energy, reference),
        ]);
    }

    println!("{}", table.render());
    println!("paper (for shape comparison, published instances):");
    println!("  K2000: PotOpt −33337, DABS TTS 0.694s, ABS 9.19s @99.2%, Gurobi gap 0.287%, Hybrid TTS 100–200s, CIM gap 0.438%");
    println!("  G22:   PotOpt −13359, DABS TTS 1.58s,  ABS 19.7s @69.5%, Gurobi gap 1.66%,  Hybrid TTS 10–20s,  CIM gap 0.344%");
    println!("  G39:   PotOpt −2408,  DABS TTS 7.56s,  ABS 15.1s @78.6%, Gurobi gap 5.48%,  Hybrid TTS 50–100s, CIM gap 1.95%");
}
