//! Table III: QAP (tai20a / tho30 / nug30-class instances).
//!
//! Reports the QAP cost and QUBO energy of the best solution, the paper's
//! `E = C − n·p` identity, DABS/ABS TTS + probability, and branch-and-bound
//! / hybrid gaps. The DABS/ABS protocol is the shared
//! [`dabs_bench::scenarios::measure_dabs_abs`]; the feasibility decode and
//! baseline solvers are this table's own extras.
//!
//! Flags: `--full`, `--runs N`, `--seed S`, `--budget-ms B` (default = the
//! canonical QAP family budget), `--devices D`, `--blocks B`.

use dabs_baselines::bnb::{BnbConfig, BranchAndBound};
use dabs_baselines::hybrid::{HybridConfig, HybridSolver};
use dabs_bench::harness::{fmt_gap, fmt_tts};
use dabs_bench::instances::qap_set;
use dabs_bench::scenarios::{measure_dabs_abs, warn_unconverged};
use dabs_bench::suite::Family;
use dabs_bench::{Args, RunPlan, Table};
use dabs_core::{DabsSolver, Termination};
use dabs_search::SearchParams;
use std::sync::Arc;

fn main() {
    let plan = RunPlan::from_args(&Args::from_env());
    let budget = plan.budget(Family::Qap);

    println!(
        "== Table III: QAP ({}) ==",
        if plan.full { "paper scale" } else { "CI scale" }
    );
    println!("runs = {}, per-run budget = {budget:?}\n", plan.runs);

    let mut table = Table::new(vec![
        "QAP",
        "n",
        "penalty",
        "QAP cost",
        "QUBO opt",
        "DABS E",
        "DABS TTS",
        "ABS E",
        "ABS TTS",
        "ABS Prob",
        "BnB gap",
        "Hybrid gap",
        "feasible",
    ]);

    for bench in qap_set(plan.full, plan.seed) {
        let n = bench.instance.n() as i64;
        let model = Arc::new(bench.instance.to_qubo(bench.penalty));

        // paper parameters for QAP: s = 0.1, b = 1
        let pair = measure_dabs_abs(&model, SearchParams::qap_qasp(), &plan, Family::Qap);
        let reference = pair.reference;

        // decode the reference solution to verify feasibility & the
        // E = C − n·p identity
        let solver = DabsSolver::new(pair.dabs_cfg.clone()).unwrap();
        let ref_run = solver.run(&model, Termination::target(reference).with_time(budget * 3));
        let decoded = bench.instance.decode(&ref_run.best);
        let (cost_str, feasible) = match &decoded {
            Some(g) => {
                let cost = bench.instance.cost(g);
                assert_eq!(
                    ref_run.energy,
                    cost - n * bench.penalty,
                    "paper identity E = C − n·p violated"
                );
                (cost.to_string(), "yes")
            }
            None => ("—".to_string(), "NO"),
        };

        let bnb = BranchAndBound::new(BnbConfig {
            time_limit: budget,
            heuristic_restarts: 32,
            seed: plan.seed,
        })
        .solve(&model);
        let hybrid = HybridSolver::new(HybridConfig {
            time_limit: budget,
            seed: plan.seed,
            ..HybridConfig::default()
        })
        .solve(&model);

        warn_unconverged(bench.label, reference, pair.observed_best());
        table.row(vec![
            bench.label.to_string(),
            n.to_string(),
            bench.penalty.to_string(),
            cost_str,
            reference.to_string(),
            pair.dabs.best_energy().to_string(),
            fmt_tts(pair.dabs.mean_tts()),
            pair.abs.best_energy().to_string(),
            fmt_tts(pair.abs.mean_tts()),
            format!("{:.1}%", 100.0 * pair.abs.success_rate()),
            fmt_gap(bnb.energy, reference),
            fmt_gap(hybrid.energy, reference),
            feasible.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("paper (published QAPLIB instances):");
    println!("  tai20a: opt 703482 (QUBO −3296518, p=200000), DABS TTS 81.6s, ABS 93.5s @13.4%, Gurobi gap 0.151%, Hybrid gap 1.86%");
    println!("  tho30:  opt 149936 (QUBO −750064, p=30000),  DABS TTS 9.60s, ABS 38.6s @67.5%, Gurobi gap 0.137%, Hybrid gap 1.59%");
    println!("  nug30:  opt 6124  (QUBO −23876, p=1000),    DABS TTS 44.2s, ABS 51.7s @14.8%, Gurobi gap 0.235%, Hybrid gap 2.20%");
}
