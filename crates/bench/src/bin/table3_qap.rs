//! Table III: QAP (tai20a / tho30 / nug30-class instances).
//!
//! Reports the QAP cost and QUBO energy of the best solution, the paper's
//! `E = C − n·p` identity, DABS/ABS TTS + probability, and branch-and-bound
//! / hybrid gaps.
//!
//! Flags: `--full`, `--runs N`, `--seed S`, `--budget-ms B`, `--devices D`,
//! `--blocks B`.

use dabs_baselines::bnb::{BnbConfig, BranchAndBound};
use dabs_baselines::hybrid::{HybridConfig, HybridSolver};
use dabs_bench::harness::{dabs_run_outcome, establish_reference, fmt_gap, fmt_tts};
use dabs_bench::instances::qap_set;
use dabs_bench::{repeat_solver, Args, Table};
use dabs_core::{DabsConfig, DabsSolver, Termination};
use dabs_search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let full = args.flag("full");
    let runs = args.get("runs", 5usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", if full { 120_000 } else { 4_000 }));
    let devices = args.get("devices", 4usize);
    let blocks = args.get("blocks", 2usize);

    println!(
        "== Table III: QAP ({}) ==",
        if full { "paper scale" } else { "CI scale" }
    );
    println!("runs = {runs}, per-run budget = {budget:?}\n");

    let mut table = Table::new(vec![
        "QAP",
        "n",
        "penalty",
        "QAP cost",
        "QUBO opt",
        "DABS E",
        "DABS TTS",
        "ABS E",
        "ABS TTS",
        "ABS Prob",
        "BnB gap",
        "Hybrid gap",
        "feasible",
    ]);

    for bench in qap_set(full, seed) {
        let n = bench.instance.n() as i64;
        let model = Arc::new(bench.instance.to_qubo(bench.penalty));

        // paper parameters for QAP: s = 0.1, b = 1
        let mut dabs_cfg = DabsConfig::dabs(devices, blocks);
        dabs_cfg.params = SearchParams::qap_qasp();
        let mut abs_cfg = DabsConfig::abs_baseline(devices, blocks);
        abs_cfg.params = SearchParams::qap_qasp();

        let reference = establish_reference(&model, &dabs_cfg, budget * 3);

        // decode the reference solution to verify feasibility & the
        // E = C − n·p identity
        let solver = DabsSolver::new(dabs_cfg.clone()).unwrap();
        let ref_run = solver.run(&model, Termination::target(reference).with_time(budget * 3));
        let decoded = bench.instance.decode(&ref_run.best);
        let (cost_str, feasible) = match &decoded {
            Some(g) => {
                let cost = bench.instance.cost(g);
                assert_eq!(
                    ref_run.energy,
                    cost - n * bench.penalty,
                    "paper identity E = C − n·p violated"
                );
                (cost.to_string(), "yes")
            }
            None => ("—".to_string(), "NO"),
        };

        let dabs = repeat_solver(runs, seed * 1000, |s| {
            dabs_run_outcome(&model, &dabs_cfg, s, reference, budget)
        });
        let abs = repeat_solver(runs, seed * 2000, |s| {
            dabs_run_outcome(&model, &abs_cfg, s, reference, budget)
        });

        let bnb = BranchAndBound::new(BnbConfig {
            time_limit: budget,
            heuristic_restarts: 32,
            seed,
        })
        .solve(&model);
        let hybrid = HybridSolver::new(HybridConfig {
            time_limit: budget,
            seed,
            ..HybridConfig::default()
        })
        .solve(&model);

        let observed_best = reference.min(dabs.best_energy()).min(abs.best_energy());
        if observed_best < reference {
            println!(
                "note: {} reference {reference} was not converged — a measured run reached {observed_best}; \
                 rerun with a larger --budget-ms for tighter TTS statistics",
                bench.label
            );
        }
        table.row(vec![
            bench.label.to_string(),
            n.to_string(),
            bench.penalty.to_string(),
            cost_str,
            reference.to_string(),
            dabs.best_energy().to_string(),
            fmt_tts(dabs.mean_tts()),
            abs.best_energy().to_string(),
            fmt_tts(abs.mean_tts()),
            format!("{:.1}%", 100.0 * abs.success_rate()),
            fmt_gap(bnb.energy, reference),
            fmt_gap(hybrid.energy, reference),
            feasible.to_string(),
        ]);
    }

    println!("{}", table.render());
    println!("paper (published QAPLIB instances):");
    println!("  tai20a: opt 703482 (QUBO −3296518, p=200000), DABS TTS 81.6s, ABS 93.5s @13.4%, Gurobi gap 0.151%, Hybrid gap 1.86%");
    println!("  tho30:  opt 149936 (QUBO −750064, p=30000),  DABS TTS 9.60s, ABS 38.6s @67.5%, Gurobi gap 0.137%, Hybrid gap 1.59%");
    println!("  nug30:  opt 6124  (QUBO −23876, p=1000),    DABS TTS 44.2s, ABS 51.7s @14.8%, Gurobi gap 0.235%, Hybrid gap 2.20%");
}
