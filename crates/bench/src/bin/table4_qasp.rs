//! Table IV: QASP at resolutions 1 / 16 / 256.
//!
//! Rows: potentially-optimal energy, DABS/ABS TTS + probability,
//! branch-and-bound ("Gurobi") gap, and the analog annealer simulator
//! ("D-Wave Advantage") gap — which stays above zero at every resolution
//! while DABS reaches the potentially-optimal value (the paper's headline).
//! The DABS/ABS protocol is the shared
//! [`dabs_bench::scenarios::measure_dabs_abs`].
//!
//! Flags: `--full`, `--runs N`, `--seed S`, `--budget-ms B` (default = the
//! canonical QASP family budget), `--devices D`, `--blocks B`, `--reads R`
//! (annealer reads).

use dabs_baselines::annealer::{AnalogAnnealer, AnnealerConfig};
use dabs_baselines::bnb::{BnbConfig, BranchAndBound};
use dabs_bench::harness::{fmt_gap, fmt_tts};
use dabs_bench::instances::qasp_set;
use dabs_bench::scenarios::{measure_dabs_abs, warn_unconverged};
use dabs_bench::suite::Family;
use dabs_bench::{Args, RunPlan, Table};
use dabs_search::SearchParams;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let plan = RunPlan::from_args(&args);
    let budget = plan.budget(Family::Qasp);
    let reads = args.get("reads", if plan.full { 1000u32 } else { 200 });

    println!(
        "== Table IV: QASP ({}) ==",
        if plan.full { "paper scale" } else { "CI scale" }
    );
    println!(
        "runs = {}, per-run budget = {budget:?}, annealer reads = {reads}\n",
        plan.runs
    );

    let mut table = Table::new(vec![
        "QASP",
        "resolution",
        "PotOpt E",
        "DABS E",
        "DABS TTS",
        "ABS E",
        "ABS TTS",
        "ABS Prob",
        "BnB gap",
        "Annealer gap",
    ]);

    for bench in qasp_set(plan.full, plan.seed) {
        let model = Arc::new(bench.instance.qubo().clone());

        // paper parameters for QASP: s = 0.1, b = 1
        let pair = measure_dabs_abs(&model, SearchParams::qap_qasp(), &plan, Family::Qasp);
        let reference = pair.reference;

        let bnb = BranchAndBound::new(BnbConfig {
            time_limit: budget,
            heuristic_restarts: 32,
            seed: plan.seed,
        })
        .solve(&model);

        // annealer samples the Ising; convert its Hamiltonian back to QUBO
        // energy through the instance offset: E = H − offset
        let annealer = AnalogAnnealer::new(AnnealerConfig {
            num_reads: reads,
            sweeps_per_read: 10,
            noise_sigma: 0.02,
            seed: plan.seed,
            ..AnnealerConfig::default()
        })
        .sample(bench.instance.ising());
        let annealer_energy = annealer.energy - bench.instance.offset();

        warn_unconverged(&bench.label, reference, pair.observed_best());
        table.row(vec![
            bench.label.clone(),
            bench.instance.resolution.to_string(),
            reference.to_string(),
            pair.dabs.best_energy().to_string(),
            fmt_tts(pair.dabs.mean_tts()),
            pair.abs.best_energy().to_string(),
            fmt_tts(pair.abs.mean_tts()),
            format!("{:.1}%", 100.0 * pair.abs.success_rate()),
            fmt_gap(bnb.energy, reference),
            fmt_gap(annealer_energy, reference),
        ]);
    }

    println!("{}", table.render());
    println!("paper (real D-Wave Advantage 4.1 working graph):");
    println!("  QASP1:   PotOpt −20902,    DABS TTS 4.34s, ABS 6.92s @93.2%, Gurobi gap 1.08%,    D-Wave gap 0.105%");
    println!("  QASP16:  PotOpt −238594,   DABS TTS 5.67s, ABS 12.16s @18.6%, Gurobi gap 0.00503%, D-Wave gap 0.0687%");
    println!("  QASP256: PotOpt −3656992,  DABS TTS 5.33s, ABS 4.57s @28.3%,  Gurobi gap 0.0219%,  D-Wave gap 0.0726%");
}
