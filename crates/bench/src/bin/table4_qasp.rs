//! Table IV: QASP at resolutions 1 / 16 / 256.
//!
//! Rows: potentially-optimal energy, DABS/ABS TTS + probability,
//! branch-and-bound ("Gurobi") gap, and the analog annealer simulator
//! ("D-Wave Advantage") gap — which stays above zero at every resolution
//! while DABS reaches the potentially-optimal value (the paper's headline).
//!
//! Flags: `--full`, `--runs N`, `--seed S`, `--budget-ms B`, `--devices D`,
//! `--blocks B`, `--reads R` (annealer reads).

use dabs_baselines::annealer::{AnalogAnnealer, AnnealerConfig};
use dabs_baselines::bnb::{BnbConfig, BranchAndBound};
use dabs_bench::harness::{dabs_run_outcome, establish_reference, fmt_gap, fmt_tts};
use dabs_bench::instances::qasp_set;
use dabs_bench::{repeat_solver, Args, Table};
use dabs_core::DabsConfig;
use dabs_search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let full = args.flag("full");
    let runs = args.get("runs", 5usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", if full { 60_000 } else { 5_000 }));
    let devices = args.get("devices", 4usize);
    let blocks = args.get("blocks", 2usize);
    let reads = args.get("reads", if full { 1000u32 } else { 200 });

    println!(
        "== Table IV: QASP ({}) ==",
        if full { "paper scale" } else { "CI scale" }
    );
    println!("runs = {runs}, per-run budget = {budget:?}, annealer reads = {reads}\n");

    let mut table = Table::new(vec![
        "QASP",
        "resolution",
        "PotOpt E",
        "DABS E",
        "DABS TTS",
        "ABS E",
        "ABS TTS",
        "ABS Prob",
        "BnB gap",
        "Annealer gap",
    ]);

    for bench in qasp_set(full, seed) {
        let model = Arc::new(bench.instance.qubo().clone());

        // paper parameters for QASP: s = 0.1, b = 1
        let mut dabs_cfg = DabsConfig::dabs(devices, blocks);
        dabs_cfg.params = SearchParams::qap_qasp();
        let mut abs_cfg = DabsConfig::abs_baseline(devices, blocks);
        abs_cfg.params = SearchParams::qap_qasp();

        let reference = establish_reference(&model, &dabs_cfg, budget * 3);

        let dabs = repeat_solver(runs, seed * 1000, |s| {
            dabs_run_outcome(&model, &dabs_cfg, s, reference, budget)
        });
        let abs = repeat_solver(runs, seed * 2000, |s| {
            dabs_run_outcome(&model, &abs_cfg, s, reference, budget)
        });

        let bnb = BranchAndBound::new(BnbConfig {
            time_limit: budget,
            heuristic_restarts: 32,
            seed,
        })
        .solve(&model);

        // annealer samples the Ising; convert its Hamiltonian back to QUBO
        // energy through the instance offset: E = H − offset
        let annealer = AnalogAnnealer::new(AnnealerConfig {
            num_reads: reads,
            sweeps_per_read: 10,
            noise_sigma: 0.02,
            seed,
            ..AnnealerConfig::default()
        })
        .sample(bench.instance.ising());
        let annealer_energy = annealer.energy - bench.instance.offset();

        let observed_best = reference.min(dabs.best_energy()).min(abs.best_energy());
        if observed_best < reference {
            println!(
                "note: {} reference {reference} was not converged — a measured run reached {observed_best}; \
                 rerun with a larger --budget-ms for tighter TTS statistics",
                bench.label
            );
        }
        table.row(vec![
            bench.label.clone(),
            bench.instance.resolution.to_string(),
            reference.to_string(),
            dabs.best_energy().to_string(),
            fmt_tts(dabs.mean_tts()),
            abs.best_energy().to_string(),
            fmt_tts(abs.mean_tts()),
            format!("{:.1}%", 100.0 * abs.success_rate()),
            fmt_gap(bnb.energy, reference),
            fmt_gap(annealer_energy, reference),
        ]);
    }

    println!("{}", table.render());
    println!("paper (real D-Wave Advantage 4.1 working graph):");
    println!("  QASP1:   PotOpt −20902,    DABS TTS 4.34s, ABS 6.92s @93.2%, Gurobi gap 1.08%,    D-Wave gap 0.105%");
    println!("  QASP16:  PotOpt −238594,   DABS TTS 5.67s, ABS 12.16s @18.6%, Gurobi gap 0.00503%, D-Wave gap 0.0687%");
    println!("  QASP256: PotOpt −3656992,  DABS TTS 5.33s, ABS 4.57s @28.3%,  Gurobi gap 0.0219%,  D-Wave gap 0.0726%");
}
