//! Fig. 7: histograms of DABS running time to reach the potentially optimal
//! solutions of QASP1 / QASP16 / QASP256.
//!
//! Flags: `--full`, `--runs N` (default 15; paper: 1000), `--seed S`,
//! `--budget-ms B`, `--bin-ms W`.

use dabs_bench::harness::{dabs_run_outcome, establish_reference};
use dabs_bench::instances::qasp_set;
use dabs_bench::{repeat_solver, Args, Histogram};
use dabs_core::DabsConfig;
use dabs_search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let full = args.flag("full");
    let runs = args.get("runs", 15usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", if full { 60_000 } else { 5_000 }));
    let bin = args.get("bin-ms", if full { 1000u64 } else { 200 }) as f64 / 1000.0;

    println!("== Fig. 7: QASP TTS histograms ==");
    println!("runs = {runs} per resolution, bin width = {bin}s\n");

    for bench in qasp_set(full, seed) {
        let model = Arc::new(bench.instance.qubo().clone());
        let mut cfg = DabsConfig::dabs(4, 2);
        cfg.params = SearchParams::qap_qasp();
        let reference = establish_reference(&model, &cfg, budget * 3);

        let stats = repeat_solver(runs, seed * 4000, |s| {
            dabs_run_outcome(&model, &cfg, s, reference, budget)
        });
        let mut hist = Histogram::new(0.0, bin);
        for t in stats.tts_seconds() {
            hist.add(t);
        }
        println!(
            "{}",
            hist.render(&format!(
                "{} (PotOpt {reference}, {}/{} runs succeeded)",
                bench.label,
                stats.successes(),
                stats.runs()
            ))
        );
    }
    println!("paper shape: all three resolutions peak below 10s with high probability;");
    println!("TTS distributions are similar across resolutions (4.34–5.67s means).");
}
