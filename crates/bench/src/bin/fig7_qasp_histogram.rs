//! Fig. 7: histograms of DABS running time to reach the potentially optimal
//! solutions of QASP1 / QASP16 / QASP256.
//!
//! Setup and measurement protocol come from the shared
//! [`dabs_bench::scenarios`] plan (canonical QASP family budget).
//!
//! Flags: `--full`, `--runs N` (default 15; paper: 1000), `--seed S`,
//! `--budget-ms B`, `--bin-ms W`.

use dabs_bench::harness::{dabs_run_outcome, establish_reference};
use dabs_bench::instances::qasp_set;
use dabs_bench::suite::Family;
use dabs_bench::{repeat_solver, Args, Histogram, RunPlan};
use dabs_search::SearchParams;
use std::sync::Arc;

fn main() {
    let args = Args::from_env();
    let plan = RunPlan::from_args_with_runs(&args, 15);
    let budget = plan.budget(Family::Qasp);
    let bin = args.get("bin-ms", if plan.full { 1000u64 } else { 200 }) as f64 / 1000.0;

    println!("== Fig. 7: QASP TTS histograms ==");
    println!("runs = {} per resolution, bin width = {bin}s\n", plan.runs);

    for bench in qasp_set(plan.full, plan.seed) {
        let model = Arc::new(bench.instance.qubo().clone());
        let cfg = plan.dabs(SearchParams::qap_qasp());
        let reference = establish_reference(&model, &cfg, budget * 3);

        let stats = repeat_solver(plan.runs, plan.arm_seed(0), |s| {
            dabs_run_outcome(&model, &cfg, s, reference, budget)
        });
        let mut hist = Histogram::new(0.0, bin);
        for t in stats.tts_seconds() {
            hist.add(t);
        }
        println!(
            "{}",
            hist.render(&format!(
                "{} (PotOpt {reference}, {}/{} runs succeeded)",
                bench.label,
                stats.successes(),
                stats.runs()
            ))
        );
    }
    println!("paper shape: all three resolutions peak below 10s with high probability;");
    println!("TTS distributions are similar across resolutions (4.34–5.67s means).");
}
