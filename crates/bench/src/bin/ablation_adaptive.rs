//! Ablation: adaptive (95 % replay / 5 % explore) selection vs uniform
//! selection of algorithms and operations.
//!
//! Setting `explore_prob = 1.0` disables the replay path entirely — every
//! packet draws its algorithm/operation uniformly — isolating the value of
//! the paper's pool-driven adaptivity. Thin wrapper over
//! [`dabs_bench::scenarios::ablation`]; the suite's `ablation_adaptive`
//! entry runs the same arms deterministically.
//!
//! Flags: `--runs N`, `--seed S`, `--budget-ms B`, `--devices D`,
//! `--blocks K`, `--full`.

use dabs_bench::scenarios::ablation::{adaptive_arms, run_table, ArmColumns};
use dabs_bench::{Args, RunPlan};

fn main() {
    let plan = RunPlan::from_args(&Args::from_env());
    println!("== Ablation: adaptive vs uniform strategy selection ==");
    println!(
        "runs = {}, per-family canonical budgets (see scenarios::family_budget_ms)\n",
        plan.runs
    );
    println!(
        "{}",
        run_table(&adaptive_arms(), &plan, ArmColumns::Full).render()
    );
}
