//! Ablation: adaptive (95 % replay / 5 % explore) selection vs uniform
//! selection of algorithms and operations.
//!
//! Setting `explore_prob = 1.0` disables the replay path entirely — every
//! packet draws its algorithm/operation uniformly — isolating the value of
//! the paper's pool-driven adaptivity.
//!
//! Flags: `--runs N`, `--seed S`, `--budget-ms B`.

use dabs_bench::harness::{dabs_run_outcome, establish_reference, fmt_tts};
use dabs_bench::instances::full_problem_suite;
use dabs_bench::{repeat_solver, Args, Table};
use dabs_core::DabsConfig;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let runs = args.get("runs", 5usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", 2_000));

    println!("== Ablation: adaptive vs uniform strategy selection ==");
    println!("runs = {runs}, per-run budget = {budget:?}\n");

    let mut table = Table::new(vec![
        "Problem",
        "PotOpt E",
        "adaptive best",
        "adaptive TTS",
        "adaptive prob",
        "uniform best",
        "uniform TTS",
        "uniform prob",
    ]);

    for (label, model, params) in full_problem_suite(false, seed) {
        let mut adaptive = DabsConfig::dabs(4, 2);
        adaptive.params = params;
        let mut uniform = adaptive.clone();
        uniform.explore_prob = 1.0; // always uniform: adaptivity off

        let reference = establish_reference(&model, &adaptive, budget * 3);

        let a = repeat_solver(runs, seed * 100, |s| {
            dabs_run_outcome(&model, &adaptive, s, reference, budget)
        });
        let u = repeat_solver(runs, seed * 200, |s| {
            dabs_run_outcome(&model, &uniform, s, reference, budget)
        });

        table.row(vec![
            label,
            reference.to_string(),
            a.best_energy().to_string(),
            fmt_tts(a.mean_tts()),
            format!("{:.0}%", 100.0 * a.success_rate()),
            u.best_energy().to_string(),
            fmt_tts(u.mean_tts()),
            format!("{:.0}%", 100.0 * u.success_rate()),
        ]);
    }
    println!("{}", table.render());
}
