//! Ablation: full five-algorithm portfolio vs each algorithm alone.
//!
//! The No-Free-Lunch motivation of §I-B in one table: no single algorithm
//! wins everywhere, while the adaptive portfolio tracks the per-problem
//! winner.
//!
//! Flags: `--runs N`, `--seed S`, `--budget-ms B`.

use dabs_bench::harness::{dabs_run_outcome, establish_reference};
use dabs_bench::instances::full_problem_suite;
use dabs_bench::{repeat_solver, Args, Table};
use dabs_core::DabsConfig;
use dabs_search::MainAlgorithm;
use std::time::Duration;

fn main() {
    let args = Args::from_env();
    let runs = args.get("runs", 3usize);
    let seed = args.get("seed", 1u64);
    let budget = Duration::from_millis(args.get("budget-ms", 2_000));

    println!("== Ablation: algorithm portfolio vs single algorithms ==");
    println!("cells: success probability reaching the portfolio's reference energy");
    println!("runs = {runs}, per-run budget = {budget:?}\n");

    let mut headers = vec![
        "Problem".to_string(),
        "PotOpt E".to_string(),
        "portfolio".to_string(),
    ];
    headers.extend(
        MainAlgorithm::ALL
            .iter()
            .map(|a| format!("only-{}", a.name())),
    );
    let mut table = Table::new(headers);

    for (label, model, params) in full_problem_suite(false, seed) {
        let mut portfolio = DabsConfig::dabs(4, 2);
        portfolio.params = params;

        let reference = establish_reference(&model, &portfolio, budget * 3);

        let port = repeat_solver(runs, seed * 100, |s| {
            dabs_run_outcome(&model, &portfolio, s, reference, budget)
        });

        let mut row = vec![
            label,
            reference.to_string(),
            format!("{:.0}%", 100.0 * port.success_rate()),
        ];
        for algo in MainAlgorithm::ALL {
            let mut solo = portfolio.clone();
            solo.algorithms = vec![algo];
            let stats = repeat_solver(runs, seed * 200 + algo.index() as u64, |s| {
                dabs_run_outcome(&model, &solo, s, reference, budget)
            });
            row.push(format!("{:.0}%", 100.0 * stats.success_rate()));
        }
        table.row(row);
    }
    println!("{}", table.render());
}
