//! Ablation: full five-algorithm portfolio vs each algorithm alone.
//!
//! The No-Free-Lunch motivation of §I-B in one table: no single algorithm
//! wins everywhere, while the adaptive portfolio tracks the per-problem
//! winner. Thin wrapper over [`dabs_bench::scenarios::ablation`]; the
//! suite's `ablation_portfolio` entry runs the same arms deterministically.
//!
//! Flags: `--runs N` (default 3), `--seed S`, `--budget-ms B`,
//! `--devices D`, `--blocks K`, `--full`.

use dabs_bench::scenarios::ablation::{portfolio_arms, run_table, ArmColumns};
use dabs_bench::{Args, RunPlan};

fn main() {
    let plan = RunPlan::from_args_with_runs(&Args::from_env(), 3);
    println!("== Ablation: algorithm portfolio vs single algorithms ==");
    println!("cells: success probability reaching the first arm's reference energy");
    println!(
        "runs = {}, per-family canonical budgets (see scenarios::family_budget_ms)\n",
        plan.runs
    );
    println!(
        "{}",
        run_table(&portfolio_arms(), &plan, ArmColumns::ProbOnly).render()
    );
}
