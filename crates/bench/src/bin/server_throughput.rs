//! Server throughput benchmark: jobs/s and latency percentiles against a
//! live in-process `dabs-server`.
//!
//! Spins up the job runtime on an ephemeral port, then drives it over real
//! TCP with concurrent clients submitting small deterministic solve jobs.
//! Reported latency is submit→result per job (queue wait + solve + wire);
//! throughput is completed jobs per wall-clock second across all clients.
//!
//! ```text
//! cargo run --release -p dabs-bench --bin server_throughput
//! cargo run --release -p dabs-bench --bin server_throughput -- \
//!     --clients 16 --jobs 256 --workers 4 --n 32 --batches 200
//! ```

use dabs_server::{
    drive_fleet, Client, ExecMode, JobSpec, LatencySummary, ProblemSpec, Server, ServerConfig,
};
use std::time::Instant;

struct Args {
    clients: usize,
    jobs: usize,
    workers: usize,
    n: usize,
    batches: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        clients: 8,
        jobs: 96,
        workers: 4,
        n: 32,
        batches: 200,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("--{name} requires a value"))
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("--{name}: not a number"))
        };
        match a.as_str() {
            "--clients" => args.clients = value("clients") as usize,
            "--jobs" => args.jobs = value("jobs") as usize,
            "--workers" => args.workers = value("workers") as usize,
            "--n" => args.n = value("n") as usize,
            "--batches" => args.batches = value("batches"),
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let server = Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_capacity: (args.jobs * 2).max(64),
        },
    )
    .expect("bind in-process server");
    let addr = server.local_addr();
    println!(
        "server_throughput: {} clients × {} jobs on {addr} — {} workers, n = {}, {} batches/job",
        args.clients, args.jobs, args.workers, args.n, args.batches
    );

    // Warmup: one job end-to-end so thread spawning and first-touch costs
    // don't land in the measured window.
    {
        let mut c = Client::connect(addr).expect("warmup connect");
        let id = c
            .submit(&JobSpec {
                problem: ProblemSpec::random(args.n, 999),
                seed: 999,
                mode: ExecMode::Sequential,
                max_batches: Some(args.batches),
                ..JobSpec::default()
            })
            .expect("warmup submit");
        c.wait_result(id).expect("warmup result");
    }

    let t0 = Instant::now();
    let (n, batches) = (args.n, args.batches);
    let all = drive_fleet(&addr.to_string(), args.clients, args.jobs, move |c, j| {
        let seed = 1 + (c * 10_007 + j) as u64;
        JobSpec {
            problem: ProblemSpec::random(n, seed),
            seed,
            mode: ExecMode::Sequential,
            max_batches: Some(batches),
            ..JobSpec::default()
        }
    })
    .expect("fleet run");
    let wall = t0.elapsed();
    server.shutdown();

    let summary = LatencySummary::from_samples(all, wall).expect("jobs completed");
    println!("{}", summary.report());
    println!(
        "jobs/s: {:.1}   p50: {:.2} ms   p99: {:.2} ms",
        summary.jobs_per_sec(),
        summary.p50.as_secs_f64() * 1e3,
        summary.p99.as_secs_f64() * 1e3
    );
}
