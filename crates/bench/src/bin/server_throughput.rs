//! Server throughput benchmark: jobs/s and latency percentiles against a
//! live in-process `dabs-server`.
//!
//! Thin wrapper over [`dabs_bench::scenarios::server_load`] — the same
//! measurement the suite's `server_throughput` entry records into
//! `BENCH_*.json`. Reported latency is submit→result per job (queue wait +
//! solve + wire); throughput is completed jobs per wall-clock second across
//! all clients.
//!
//! ```text
//! cargo run --release -p dabs-bench --bin server_throughput
//! cargo run --release -p dabs-bench --bin server_throughput -- \
//!     --clients 16 --jobs 256 --workers 4 --n 32 --batches 200
//! ```

use dabs_bench::scenarios::server_load::{run, LoadSpec};
use dabs_bench::Args;

fn main() {
    let args = Args::from_env();
    let spec = LoadSpec {
        clients: args.get("clients", 8usize),
        jobs: args.get("jobs", 96usize),
        workers: args.get("workers", 4usize),
        n: args.get("n", 32usize),
        batches: args.get("batches", 200u64),
        seed: args.get("seed", 1u64),
    };
    println!(
        "server_throughput: {} clients × {} jobs — {} workers, n = {}, {} batches/job",
        spec.clients, spec.jobs, spec.workers, spec.n, spec.batches
    );

    match run(&spec) {
        Ok(summary) => {
            println!("{}", summary.report());
            println!(
                "jobs/s: {:.1}   p50: {:.2} ms   p99: {:.2} ms",
                summary.jobs_per_sec(),
                summary.p50.as_secs_f64() * 1e3,
                summary.p99.as_secs_f64() * 1e3
            );
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
