//! Command-line driver for the suite runner — shared by the `suite` bin
//! (`cargo run -p dabs-bench --bin suite`) and the `dabs bench` subcommand,
//! so the two front doors cannot drift.
//!
//! ```text
//! suite [--smoke | --full | --mode test|smoke|full] [--seed S]
//!       [--filter SUBSTR] [--out FILE] [--list]
//! suite compare --baseline FILE [--candidate FILE] [--tolerance-scale X]
//! ```
//!
//! Exit codes: 0 success, 1 gate failure (regressions / missing gated
//! metrics / schema-invalid run), 2 usage or I/O error.

use crate::baseline::compare;
use crate::report::SuiteReport;
use crate::suite::{registry, run_suite, Family, SuiteConfig, SuiteMode};
use crate::{Args, Table};
use std::path::Path;

/// Default candidate path: what the CI smoke step writes and the compare
/// step reads (`suite --smoke --out BENCH_ci.json && suite compare
/// --baseline BENCH_<pr>.json`).
pub const DEFAULT_CANDIDATE: &str = "BENCH_ci.json";

/// Entry point. `argv` excludes the binary name.
pub fn run_from_args(argv: &[String]) -> i32 {
    if argv.first().map(String::as_str) == Some("compare") {
        return compare_command(&Args::parse(argv[1..].to_vec()));
    }
    let positional: Vec<&String> = argv.iter().take_while(|a| !a.starts_with("--")).collect();
    if !positional.is_empty() {
        eprintln!(
            "error: unknown subcommand {:?} (expected `compare` or flags)",
            positional[0]
        );
        return 2;
    }
    run_command(&Args::parse(argv.to_vec()))
}

fn parse_mode(args: &Args) -> Result<SuiteMode, String> {
    let explicit: String = args.get("mode", String::new());
    match (args.flag("smoke"), args.flag("full"), explicit.as_str()) {
        (_, _, name) if !name.is_empty() => {
            SuiteMode::by_name(name).ok_or_else(|| format!("unknown --mode {name:?}"))
        }
        (true, true, _) => Err("--smoke and --full are mutually exclusive".into()),
        (_, true, _) => Ok(SuiteMode::Full),
        _ => Ok(SuiteMode::Smoke),
    }
}

fn run_command(args: &Args) -> i32 {
    let mode = match parse_mode(args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let cfg = SuiteConfig {
        mode,
        seed: args.get("seed", 1u64),
        filter: {
            let f: String = args.get("filter", String::new());
            (!f.is_empty()).then_some(f)
        },
        verbose: true,
    };
    if args.flag("list") {
        let mut table = Table::new(vec!["entry", "family", "about"]);
        for e in registry() {
            table.row(vec![
                e.name.to_string(),
                e.family.name().to_string(),
                e.about.to_string(),
            ]);
        }
        print!("{}", table.render());
        return 0;
    }
    let out_path: String = args.get("out", DEFAULT_CANDIDATE.to_string());

    println!(
        "dabs bench suite — mode {}, seed {}{}",
        cfg.mode.name(),
        cfg.seed,
        cfg.filter
            .as_deref()
            .map(|f| format!(", filter {f:?}"))
            .unwrap_or_default()
    );
    let report = run_suite(&cfg);

    // An unfiltered run must cover every family; a filtered run only needs
    // to be structurally valid.
    let validation = if cfg.filter.is_none() {
        report.validate_coverage(&Family::ALL)
    } else {
        report.validate()
    };

    let mut table = Table::new(vec!["entry", "family", "wall", "metrics", "headline"]);
    for e in &report.entries {
        table.row(vec![
            e.name.clone(),
            e.family.name().to_string(),
            format!("{:.1}s", e.wall_ms as f64 / 1e3),
            e.metrics.len().to_string(),
            headline(e),
        ]);
    }
    print!("{}", table.render());
    println!(
        "suite wall {:.1}s{}",
        report.wall_ms as f64 / 1e3,
        report
            .cpu_ms
            .map(|c| format!(", cpu {:.1}s", c as f64 / 1e3))
            .unwrap_or_default()
    );

    if let Err(e) = report.write_file(Path::new(&out_path)) {
        eprintln!("error: {e}");
        return 2;
    }
    println!("wrote {out_path}");

    if let Err(e) = validation {
        eprintln!("error: report failed schema validation: {e}");
        return 1;
    }
    0
}

/// A short human-readable highlight per entry for the summary table.
fn headline(e: &crate::report::EntryReport) -> String {
    for (name, fmt) in [
        ("success_rate", "success"),
        ("jobs_per_s", "jobs/s"),
        ("contract_ok", "contract"),
    ] {
        if let Some(m) = e.metrics.get(name) {
            return match fmt {
                "success" => format!("success {:.0}%", 100.0 * m.value),
                "jobs/s" => format!("{:.1} jobs/s", m.value),
                _ => format!("contract {}", if m.value > 0.0 { "ok" } else { "VIOLATED" }),
            };
        }
    }
    String::new()
}

fn compare_command(args: &Args) -> i32 {
    let baseline_path: String = args.get("baseline", String::new());
    if baseline_path.is_empty() {
        eprintln!("error: compare requires --baseline FILE");
        return 2;
    }
    let candidate_path: String = args.get("candidate", DEFAULT_CANDIDATE.to_string());
    let scale: f64 = args.get("tolerance-scale", 1.0f64);

    let baseline = match SuiteReport::read_file(Path::new(&baseline_path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let candidate = match SuiteReport::read_file(Path::new(&candidate_path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    for (name, r) in [(&baseline_path, &baseline), (&candidate_path, &candidate)] {
        if let Err(e) = r.validate() {
            eprintln!("error: {name} fails schema validation: {e}");
            return 2;
        }
    }
    match compare(&baseline, &candidate, scale) {
        Ok(outcome) => {
            print!(
                "comparing {candidate_path} (candidate) against {baseline_path} (baseline), tolerance scale {scale}\n{}",
                outcome.render()
            );
            if outcome.passed() {
                0
            } else {
                1
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(parse_mode(&args("")).unwrap(), SuiteMode::Smoke);
        assert_eq!(parse_mode(&args("--smoke")).unwrap(), SuiteMode::Smoke);
        assert_eq!(parse_mode(&args("--full")).unwrap(), SuiteMode::Full);
        assert_eq!(parse_mode(&args("--mode test")).unwrap(), SuiteMode::Test);
        assert!(parse_mode(&args("--mode nope")).is_err());
        assert!(parse_mode(&args("--smoke --full")).is_err());
    }

    #[test]
    fn compare_without_baseline_is_a_usage_error() {
        assert_eq!(compare_command(&args("")), 2);
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        assert_eq!(run_from_args(&["frobnicate".to_string()]), 2);
    }
}
