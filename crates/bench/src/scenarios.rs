//! Shared benchmark scenarios — one implementation per measurement, used by
//! both the suite runner ([`crate::suite`]) and the human-readable bins
//! under `src/bin/`.
//!
//! Before this module existed each bin hand-rolled its own flag parsing and
//! run protocol, and the defaults drifted (ablation runs used different
//! budgets and seed streams than the table runs of the same family).
//! [`RunPlan`] is now the single source of defaults, [`family_budget_ms`]
//! the single per-family budget table, and [`arm_seed`] the single seed
//! stream layout.

use crate::harness::{dabs_run_outcome, establish_reference, fmt_tts, RepeatStats};
use crate::instances;
use crate::repeat_solver;
use crate::suite::{Family, SuiteConfig, SuiteMode};
use crate::{Args, Table};
use dabs_core::{DabsConfig, DabsSolver, Direction, Metric, MetricSet, Termination};
use dabs_model::QuboModel;
use dabs_search::SearchParams;
use std::sync::Arc;
use std::time::Duration;

/// Canonical per-run wall-clock budget for a problem family, in ms. Every
/// bin that measures a family uses this table (`--budget-ms` overrides).
pub fn family_budget_ms(family: Family, full: bool) -> u64 {
    match (family, full) {
        (Family::Qap, false) => 4_000,
        (Family::Qap, true) => 120_000,
        (Family::Qasp, false) => 5_000,
        (Family::Qasp, true) => 60_000,
        (_, false) => 3_000,
        (_, true) => 60_000,
    }
}

/// Seed for measurement arm `arm` (0-based) of a repeated-run protocol.
/// Arms must not share seeds or their outcomes correlate; this is the one
/// stream layout every bin and suite entry uses. A base seed of 0 is
/// treated as 1 — multiplying it through would collapse every arm onto
/// stream 0, exactly the correlation this function exists to prevent.
pub fn arm_seed(base_seed: u64, arm: usize) -> u64 {
    base_seed
        .max(1)
        .wrapping_mul(1_000)
        .wrapping_mul(arm as u64 + 1)
}

/// The common measurement knobs of every table/figure/ablation bin, parsed
/// from one canonical flag set: `--full`, `--runs`, `--seed`, `--budget-ms`,
/// `--devices`, `--blocks`.
#[derive(Debug, Clone)]
pub struct RunPlan {
    pub full: bool,
    pub runs: usize,
    pub seed: u64,
    /// Explicit `--budget-ms`, overriding the per-family default.
    pub budget_override: Option<Duration>,
    pub devices: usize,
    pub blocks: usize,
}

impl RunPlan {
    /// Parse with the canonical defaults (`runs = 5`).
    pub fn from_args(args: &Args) -> RunPlan {
        Self::from_args_with_runs(args, 5)
    }

    /// Parse with a bin-specific default repetition count (histogram bins
    /// want more repetitions than tables).
    pub fn from_args_with_runs(args: &Args, default_runs: usize) -> RunPlan {
        RunPlan {
            full: args.flag("full"),
            runs: args.get("runs", default_runs),
            seed: args.get("seed", 1u64),
            budget_override: match args.get("budget-ms", 0u64) {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            devices: args.get("devices", 4usize),
            blocks: args.get("blocks", 2usize),
        }
    }

    /// The per-run budget for a family: `--budget-ms` if given, else the
    /// canonical [`family_budget_ms`].
    pub fn budget(&self, family: Family) -> Duration {
        self.budget_override
            .unwrap_or_else(|| Duration::from_millis(family_budget_ms(family, self.full)))
    }

    /// Full-DABS config at this plan's device/block shape.
    pub fn dabs(&self, params: SearchParams) -> DabsConfig {
        let mut cfg = DabsConfig::dabs(self.devices, self.blocks);
        cfg.params = params;
        cfg
    }

    /// ABS-baseline config at this plan's device/block shape.
    pub fn abs(&self, params: SearchParams) -> DabsConfig {
        let mut cfg = DabsConfig::abs_baseline(self.devices, self.blocks);
        cfg.params = params;
        cfg
    }

    /// Seed for measurement arm `arm` under this plan.
    pub fn arm_seed(&self, arm: usize) -> u64 {
        arm_seed(self.seed, arm)
    }
}

/// A benchmark instance with its family and paper search parameters.
pub struct BenchInstance {
    pub label: String,
    pub family: Family,
    pub model: Arc<QuboModel>,
    pub params: SearchParams,
}

/// All nine Table V/VI instances (three per problem family) as ready-to-run
/// [`BenchInstance`]s.
pub fn problem_suite(full: bool, seed: u64) -> Vec<BenchInstance> {
    let mut out = Vec::new();
    for b in instances::maxcut_set(full, seed) {
        out.push(BenchInstance {
            label: b.label.to_string(),
            family: Family::MaxCut,
            model: Arc::new(b.problem.to_qubo()),
            params: SearchParams::maxcut(),
        });
    }
    for b in instances::qap_set(full, seed) {
        out.push(BenchInstance {
            label: b.label.to_string(),
            family: Family::Qap,
            model: Arc::new(b.instance.to_qubo(b.penalty)),
            params: SearchParams::qap_qasp(),
        });
    }
    for b in instances::qasp_set(full, seed) {
        out.push(BenchInstance {
            label: b.label.clone(),
            family: Family::Qasp,
            model: Arc::new(b.instance.qubo().clone()),
            params: SearchParams::qap_qasp(),
        });
    }
    out
}

/// Measure `runs` repetitions of every named config against a shared
/// reference energy, each arm on its own canonical seed stream.
pub fn measure_arms(
    model: &Arc<QuboModel>,
    configs: &[(String, DabsConfig)],
    runs: usize,
    base_seed: u64,
    budget: Duration,
    reference: i64,
) -> Vec<(String, RepeatStats)> {
    configs
        .iter()
        .enumerate()
        .map(|(i, (name, cfg))| {
            let stats = repeat_solver(runs, arm_seed(base_seed, i), |s| {
                dabs_run_outcome(model, cfg, s, reference, budget)
            });
            (name.clone(), stats)
        })
        .collect()
}

/// The Table II–IV measurement protocol: a long DABS run establishes the
/// potentially-optimal reference, then DABS and the ABS baseline repeat
/// against it on the canonical arm seed streams.
pub struct PairMeasurement {
    pub reference: i64,
    pub dabs_cfg: DabsConfig,
    pub dabs: RepeatStats,
    pub abs: RepeatStats,
}

impl PairMeasurement {
    /// Best energy seen by any measured run (for convergence warnings).
    pub fn observed_best(&self) -> i64 {
        self.reference
            .min(self.dabs.best_energy())
            .min(self.abs.best_energy())
    }
}

/// Run the shared DABS-vs-ABS protocol for one instance.
pub fn measure_dabs_abs(
    model: &Arc<QuboModel>,
    params: SearchParams,
    plan: &RunPlan,
    family: Family,
) -> PairMeasurement {
    let budget = plan.budget(family);
    let dabs_cfg = plan.dabs(params);
    let abs_cfg = plan.abs(params);
    let reference = establish_reference(model, &dabs_cfg, budget * 3);
    let mut measured = measure_arms(
        model,
        &[
            ("DABS".to_string(), dabs_cfg.clone()),
            ("ABS".to_string(), abs_cfg),
        ],
        plan.runs,
        plan.seed,
        budget,
        reference,
    );
    let abs = measured.pop().expect("two arms").1;
    let dabs = measured.pop().expect("two arms").1;
    PairMeasurement {
        reference,
        dabs_cfg,
        dabs,
        abs,
    }
}

/// The shared "reference did not converge" note the table bins print when a
/// measured run beats the reference energy.
pub fn warn_unconverged(label: &str, reference: i64, observed_best: i64) {
    if observed_best < reference {
        println!(
            "note: {label} reference {reference} was not converged — a measured run reached \
             {observed_best}; rerun with a larger --budget-ms for tighter TTS statistics"
        );
    }
}

// ---------------------------------------------------------------------------
// Suite scale: per-mode instance sizes and budgets
// ---------------------------------------------------------------------------

/// Per-[`SuiteMode`] scale knobs for the deterministic suite entries.
pub struct Scale {
    /// Seeds per instance in the time-to-target entries.
    pub runs: usize,
    /// Batch budget of the long reference run.
    pub ref_batches: u64,
    /// Batch budget of each measured run.
    pub run_batches: u64,
    /// Seeds per (instance, arm) in the ablation entries.
    pub abl_runs: usize,
    /// Batch budget per ablation run.
    pub abl_batches: u64,
}

impl Scale {
    pub fn of(mode: SuiteMode) -> Scale {
        match mode {
            SuiteMode::Test => Scale {
                runs: 2,
                ref_batches: 260,
                run_batches: 120,
                abl_runs: 1,
                abl_batches: 80,
            },
            SuiteMode::Smoke => Scale {
                runs: 3,
                ref_batches: 1_200,
                run_batches: 420,
                abl_runs: 2,
                abl_batches: 260,
            },
            SuiteMode::Full => Scale {
                runs: 5,
                ref_batches: 8_000,
                run_batches: 2_500,
                abl_runs: 3,
                abl_batches: 1_200,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Time-to-target per problem family (suite entries)
// ---------------------------------------------------------------------------

/// Deterministic time-to-target scenarios: sequential solver, batch-count
/// budgets, fixed seed streams — so energies, success rates, and flip counts
/// reproduce bit-for-bit and can be gated tightly, while wall-clock TTS is
/// recorded as an ungated trajectory metric.
pub mod ttt {
    use super::*;
    use dabs_problems::{gset, QaspInstance, Topology};

    fn maxcut_instances(mode: SuiteMode, seed: u64) -> Vec<(String, QuboModel, SearchParams)> {
        let set: Vec<(&str, dabs_problems::MaxCutProblem)> = match mode {
            SuiteMode::Test => vec![
                ("k2000", gset::k2000_like(40, seed)),
                ("g22", gset::g22_like(48, 140, seed)),
                ("g39", gset::g39_like(48, 90, seed)),
            ],
            _ => instances::maxcut_set(mode == SuiteMode::Full, seed)
                .into_iter()
                .zip(["k2000", "g22", "g39"])
                .map(|(b, key)| (key, b.problem))
                .collect(),
        };
        set.into_iter()
            .map(|(key, p)| (key.to_string(), p.to_qubo(), SearchParams::maxcut()))
            .collect()
    }

    fn qap_instances(mode: SuiteMode, seed: u64) -> Vec<(String, QuboModel, SearchParams)> {
        // The CI-scale trio is already tiny (n ≤ 9); Test reuses it.
        instances::qap_set(mode == SuiteMode::Full, seed)
            .into_iter()
            .zip(["tai", "tho", "nug"])
            .map(|(b, key)| {
                (
                    key.to_string(),
                    b.instance.to_qubo(b.penalty),
                    SearchParams::qap_qasp(),
                )
            })
            .collect()
    }

    fn qasp_instances(mode: SuiteMode, seed: u64) -> Vec<(String, QuboModel, SearchParams)> {
        let (topology, resolutions): (Topology, &[i64]) = match mode {
            SuiteMode::Test => (
                Topology::pegasus_like(2, 2, 6.0, seed).with_faults(24, 60, seed),
                &[1, 16],
            ),
            SuiteMode::Smoke => (
                Topology::pegasus_like(6, 6, 10.0, seed).with_faults(280, 1_700, seed),
                &[1, 16, 256],
            ),
            SuiteMode::Full => (Topology::advantage_working_graph(seed), &[1, 16, 256]),
        };
        resolutions
            .iter()
            .map(|&r| {
                let inst = QaspInstance::generate(&topology, r, seed.wrapping_add(r as u64));
                (
                    format!("qasp{r}"),
                    inst.qubo().clone(),
                    SearchParams::qap_qasp(),
                )
            })
            .collect()
    }

    /// Deterministic long-run reference energy (sequential, batch budget).
    pub fn det_reference(model: &QuboModel, params: SearchParams, seed: u64, batches: u64) -> i64 {
        let mut cfg = DabsConfig::dabs(4, 2);
        cfg.params = params;
        cfg.seed = seed;
        let solver = DabsSolver::new(cfg).expect("valid config");
        solver
            .run_sequential(model, Termination::batches(batches))
            .energy
    }

    fn family_metrics(
        cfg: &SuiteConfig,
        instances: Vec<(String, QuboModel, SearchParams)>,
    ) -> MetricSet {
        let scale = Scale::of(cfg.mode);
        let mut out = MetricSet::new();
        let mut successes = 0usize;
        let mut total_runs = 0usize;
        out.push(
            Metric::new(
                "instances",
                instances.len() as f64,
                "count",
                Direction::HigherIsBetter,
            )
            .deterministic()
            .gated(0.0),
        );
        for (key, model, params) in instances {
            let reference = det_reference(&model, params, cfg.seed, scale.ref_batches);
            let mut best = i64::MAX;
            let mut reached = 0usize;
            let mut flips = 0u64;
            let mut tts = Vec::new();
            for k in 0..scale.runs as u64 {
                let mut run_cfg = DabsConfig::dabs(4, 2);
                run_cfg.params = params;
                run_cfg.seed = arm_seed(cfg.seed, 0).wrapping_add(k);
                let solver = DabsSolver::new(run_cfg).expect("valid config");
                let r = solver.run_sequential(
                    &model,
                    Termination::batches(scale.run_batches).with_target(reference),
                );
                best = best.min(r.energy);
                flips += r.flips;
                if r.reached_target {
                    reached += 1;
                    tts.push(r.time_to_best.as_secs_f64());
                }
            }
            successes += reached;
            total_runs += scale.runs;
            out.push(
                Metric::new(
                    format!("{key}.ref_energy"),
                    reference as f64,
                    "energy",
                    Direction::LowerIsBetter,
                )
                .deterministic()
                .gated(0.2),
            );
            out.push(
                Metric::new(
                    format!("{key}.best_energy"),
                    best as f64,
                    "energy",
                    Direction::LowerIsBetter,
                )
                .deterministic()
                .gated(0.2),
            );
            out.push(
                Metric::new(
                    format!("{key}.success_rate"),
                    reached as f64 / scale.runs as f64,
                    "ratio",
                    Direction::HigherIsBetter,
                )
                .deterministic()
                .gated(0.34),
            );
            out.push(
                Metric::new(
                    format!("{key}.total_flips"),
                    flips as f64,
                    "flips",
                    Direction::HigherIsBetter,
                )
                .deterministic(),
            );
            if !tts.is_empty() {
                out.push(Metric::new(
                    format!("{key}.mean_tts_s"),
                    tts.iter().sum::<f64>() / tts.len() as f64,
                    "s",
                    Direction::LowerIsBetter,
                ));
            }
        }
        out.push(
            Metric::new(
                "success_rate",
                successes as f64 / total_runs.max(1) as f64,
                "ratio",
                Direction::HigherIsBetter,
            )
            .deterministic()
            .gated(0.25),
        );
        out
    }

    pub fn maxcut(cfg: &SuiteConfig) -> MetricSet {
        family_metrics(cfg, maxcut_instances(cfg.mode, cfg.seed))
    }

    pub fn qap(cfg: &SuiteConfig) -> MetricSet {
        family_metrics(cfg, qap_instances(cfg.mode, cfg.seed))
    }

    pub fn qasp(cfg: &SuiteConfig) -> MetricSet {
        family_metrics(cfg, qasp_instances(cfg.mode, cfg.seed))
    }
}

// ---------------------------------------------------------------------------
// Kernel density sweep
// ---------------------------------------------------------------------------

/// CSR vs dense flip-throughput sweep — the measurement behind both the
/// `kernel_shootout` bin and the suite's `kernel_sweep` entry.
pub mod kernel {
    use super::*;
    use dabs_model::{
        CsrKernel, DenseKernel, IncrementalState, KernelChoice, QuboBuilder, QuboKernel,
    };
    use dabs_rng::{Rng64, Xorshift64Star};
    use std::time::Instant;

    /// The CI speedup contract: dense must beat CSR by at least this
    /// factor wherever density ≥ [`SPEEDUP_CONTRACT_MIN_DENSITY`].
    /// Calibration history: the original line was density ≥ 0.5 with ~3.5×
    /// headroom, against a CSR flip that paid a read-modify-write per
    /// entry. The segment-layer rewrite of the CSR flip (explicit
    /// load/compute/store) doubled CSR throughput and moved the dense/CSR
    /// crossover from ~0.12 to ~0.3 density, so the 2× line now holds
    /// from 0.75 up (measured ~3.2× at 0.95); at 0.5 the ratio is ~1.9×
    /// and is recorded as ungated trajectory instead.
    pub const SMOKE_MIN_SPEEDUP: f64 = 2.0;

    /// Lowest requested density the speedup contract applies to.
    pub const SPEEDUP_CONTRACT_MIN_DENSITY: f64 = 0.75;

    /// Absolute Mflip/s floor every backend must clear at every density —
    /// a last-resort tripwire for catastrophic kernel regressions (an
    /// accidental O(n²) flip, a debug-build suite run). Set ~3× below the
    /// slowest point ever recorded (CSR at density 0.95: 0.15 Mflip/s in
    /// BENCH_4) so loaded CI boxes never trip it spuriously.
    pub const KERNEL_MIN_MFLIPS: f64 = 0.05;

    /// One measured density point.
    pub struct SweepPoint {
        /// The density the sweep asked for — the stable identity of the
        /// point (metric keys, contract threshold).
        pub requested: f64,
        /// The density the random instance actually achieved (display).
        pub density: f64,
        pub nnz: usize,
        /// Backend the auto policy would pick at model build.
        pub auto: &'static str,
        pub csr_rate: f64,
        pub dense_rate: f64,
    }

    impl SweepPoint {
        pub fn speedup(&self) -> f64 {
            self.dense_rate / self.csr_rate
        }
    }

    /// Random QUBO with dense storage forced so both backends are
    /// measurable on one model.
    pub fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        b.kernel(KernelChoice::Dense);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().expect("valid model")
    }

    /// Apply `order` to a fresh state twice (warm-up + timed); flips/s of
    /// the timed pass.
    pub fn measure<K: QuboKernel>(model: &QuboModel, kernel: K, order: &[u32]) -> f64 {
        let mut state = IncrementalState::with_kernel(model, kernel);
        for &i in order {
            state.flip(i as usize);
        }
        let start = Instant::now();
        for &i in order {
            state.flip(i as usize);
        }
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(state.energy());
        order.len() as f64 / secs
    }

    /// Run the sweep: one model per density, a pre-generated flip sequence
    /// (RNG off the measured path), identical logical work per backend.
    pub fn sweep(n: usize, flips: usize, seed: u64, densities: &[f64]) -> Vec<SweepPoint> {
        densities
            .iter()
            .enumerate()
            .map(|(idx, &density)| {
                let model = random_model(n, density, seed.wrapping_add(idx as u64));
                let mut rng = Xorshift64Star::new(seed ^ 0xF11F_5EED);
                let order: Vec<u32> = (0..flips).map(|_| rng.next_index(n) as u32).collect();
                let csr_rate = measure(&model, CsrKernel::new(&model), &order);
                let dense_rate = measure(&model, DenseKernel::new(&model), &order);
                let auto = {
                    let mut probe = model.clone();
                    probe.select_kernel(KernelChoice::Auto);
                    probe.kernel_kind().name()
                };
                SweepPoint {
                    requested: density,
                    density: model.density(),
                    nnz: model.edge_count(),
                    auto,
                    csr_rate,
                    dense_rate,
                }
            })
            .collect()
    }

    /// Speedup-contract violations across a sweep (empty = contract holds).
    /// The threshold tests the *requested* density, so a nominal contract
    /// point stays under contract even when random sampling lands the
    /// achieved density a hair below it.
    pub fn violations(points: &[SweepPoint]) -> Vec<String> {
        points
            .iter()
            .filter(|p| {
                p.requested >= SPEEDUP_CONTRACT_MIN_DENSITY && p.speedup() < SMOKE_MIN_SPEEDUP
            })
            .map(|p| {
                format!(
                    "density {:.2}: dense is only {:.2}× csr (contract: ≥ {SMOKE_MIN_SPEEDUP}×)",
                    p.density,
                    p.speedup()
                )
            })
            .collect()
    }

    /// Sweep shape per suite mode: `(n, timed flips, densities)`.
    pub fn shape(mode: SuiteMode) -> (usize, usize, Vec<f64>) {
        match mode {
            SuiteMode::Test => (192, 8_000, vec![0.05, 0.5, 0.95]),
            SuiteMode::Smoke => (1_024, 60_000, vec![0.05, 0.5, 0.95]),
            SuiteMode::Full => (1_024, 400_000, vec![0.05, 0.1, 0.25, 0.5, 0.75, 0.95]),
        }
    }

    /// The suite entry: throughput per backend per density (trajectory),
    /// dense/CSR speedup gated where the contract applies, and the contract
    /// verdict itself as a gated boolean.
    ///
    /// Timing-derived gates only apply outside `Test` mode: at test scale
    /// (tiny n, debug builds, loaded CI boxes running tests in parallel)
    /// the dense/CSR ratio is noise, and gating it would make same-seed
    /// test runs spuriously incomparable.
    pub fn entry(cfg: &SuiteConfig) -> MetricSet {
        let gate_timing = cfg.mode != SuiteMode::Test;
        let (n, flips, densities) = shape(cfg.mode);
        let points = sweep(n, flips, cfg.seed, &densities);
        let bad = violations(&points);
        let mut out = MetricSet::new();
        for p in &points {
            let key = format!("d{:02}", (p.requested * 100.0).round() as u32);
            out.push(Metric::new(
                format!("{key}.csr_mflips"),
                p.csr_rate / 1e6,
                "Mflip/s",
                Direction::HigherIsBetter,
            ));
            out.push(Metric::new(
                format!("{key}.dense_mflips"),
                p.dense_rate / 1e6,
                "Mflip/s",
                Direction::HigherIsBetter,
            ));
            let mut speedup = Metric::new(
                format!("{key}.speedup"),
                p.speedup(),
                "ratio",
                Direction::HigherIsBetter,
            );
            if p.requested >= SPEEDUP_CONTRACT_MIN_DENSITY && gate_timing {
                // Machine-relative (both backends run on the same box), so
                // it gates meaningfully across hosts — unlike raw flips/s.
                speedup = speedup.gated(0.65);
            }
            out.push(speedup);
        }
        let mut contract = Metric::new(
            "contract_ok",
            if bad.is_empty() { 1.0 } else { 0.0 },
            "bool",
            Direction::HigherIsBetter,
        );
        if gate_timing {
            contract = contract.gated(0.0);
        }
        out.push(contract);
        let below_floor = points.iter().any(|p| {
            p.csr_rate / 1e6 < KERNEL_MIN_MFLIPS || p.dense_rate / 1e6 < KERNEL_MIN_MFLIPS
        });
        let mut floor = Metric::new(
            "floor_ok",
            if below_floor { 0.0 } else { 1.0 },
            "bool",
            Direction::HigherIsBetter,
        );
        if gate_timing {
            floor = floor.gated(0.0);
        }
        out.push(floor);
        out
    }
}

// ---------------------------------------------------------------------------
// Strategy-level selection: segment aggregates vs full-scan reference
// ---------------------------------------------------------------------------

/// Strategy-level flip throughput of the segment-aggregate selection
/// primitives against the pre-segment full-scan path
/// (`dabs_search::reference`) — the measurement behind the suite's
/// `scan_sweep` entry.
///
/// Both arms run the *same* strategy logic on the same seeds and produce
/// bit-identical trajectories (enforced by `tests/solver_parity.rs`), so
/// the flips/s ratio isolates exactly the selection cost. Being a ratio of
/// two timings on one box (each arm taken best-of-N to shed scheduler
/// noise), it gates meaningfully across machines, like the kernel sweep's
/// dense/CSR speedup.
///
/// Two sparse n = 1024 instances, because the win is Δ-distribution
/// dependent:
///
/// * `gset` — G22-like fixed-degree (deg ≈ 10) with ±9 weights: gains
///   collapse onto few distinct values, so threshold selections keep large
///   candidate sets whose mandatory per-candidate reservoir RNG draws are
///   shared by both arms (Amdahl-bound); greedy's pure argmin still wins.
/// * `weighted` — deg ≈ 24 with ±99 weights: gains spread out, candidate
///   sets shrink to near the minimum, and the segment filter skips almost
///   everything. This is where the paper's workhorse PositiveMin (the
///   most-executed algorithm, Table V) and the production batch loop
///   (alternating Greedy and PositiveMin legs, §III-B) live — both under
///   the gated ≥ [`scan::SCAN_MIN_SPEEDUP`]× contract.
pub mod scan {
    use super::*;
    use dabs_model::{BestTracker, IncrementalState, QuboModel, Solution};
    use dabs_rng::{Rng64, Xorshift64Star};
    use dabs_search::{cyclic_min, max_min, positive_min, reference, TabuList};
    use std::time::{Duration, Instant};

    /// The CI speedup contract: segment-aggregate selection must beat the
    /// full-scan path by at least this factor on every contract strategy
    /// (measured headroom is ~7×, so a trip means a real selection
    /// regression, not runner noise).
    pub const SCAN_MIN_SPEEDUP: f64 = 3.0;

    /// Sweep shape per suite mode: `(n, timed flips per arm, best-of
    /// repetitions per arm)`.
    pub fn shape(mode: SuiteMode) -> (usize, u64, usize) {
        match mode {
            SuiteMode::Test => (256, 3_000, 1),
            SuiteMode::Smoke => (1_024, 30_000, 3),
            SuiteMode::Full => (1_024, 150_000, 5),
        }
    }

    /// Fixed-edge-count random QUBO (`edges` off-diagonal terms, weights
    /// `±wmax`) — degree-controlled sparsity, like the G-set family.
    pub fn sparse_model(n: usize, edges: usize, wmax: i64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = dabs_model::QuboBuilder::new(n);
        let mut added = 0usize;
        while added < edges {
            let i = rng.next_index(n);
            let j = rng.next_index(n);
            if i == j {
                continue;
            }
            let mut w = rng.next_range_i64(-wmax, wmax);
            if w == 0 {
                w = 1;
            }
            b.add_quadratic(i.min(j), i.max(j), w);
            added += 1;
        }
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-wmax, wmax));
        }
        b.build().expect("valid model")
    }

    /// One measured (strategy, instance) pair: both arms, same work, plus
    /// whether the speedup participates in the gated contract.
    pub struct ScanPoint {
        pub name: &'static str,
        pub scan_rate: f64,
        pub seg_rate: f64,
        pub gated: bool,
    }

    impl ScanPoint {
        pub fn speedup(&self) -> f64 {
            self.seg_rate / self.scan_rate
        }
    }

    /// Which strategy a measurement arm runs; `seg` selects the
    /// segment-primitive implementation vs the full-scan reference.
    #[derive(Clone, Copy)]
    enum Strategy {
        MaxMin,
        PositiveMin,
        CyclicMin,
        Greedy,
        /// The §III-B batch composite: alternating Greedy-to-local-minimum
        /// and PositiveMin legs of `⌈0.1 n⌉` flips — the work a resident
        /// block actually performs between targets.
        Batch,
    }

    fn run_iterative(
        strategy: Strategy,
        seg: bool,
        st: &mut IncrementalState<'_>,
        best: &mut BestTracker,
        tabu: &mut TabuList,
        rng: &mut Xorshift64Star,
        flips: u64,
    ) -> u64 {
        match (strategy, seg) {
            (Strategy::MaxMin, true) => max_min(st, best, tabu, rng, flips),
            (Strategy::MaxMin, false) => reference::max_min_scan(st, best, tabu, rng, flips),
            (Strategy::PositiveMin, true) => positive_min(st, best, tabu, rng, flips),
            (Strategy::PositiveMin, false) => {
                reference::positive_min_scan(st, best, tabu, rng, flips)
            }
            (Strategy::CyclicMin, true) => cyclic_min(st, best, tabu, flips),
            (Strategy::CyclicMin, false) => reference::cyclic_min_scan(st, best, tabu, flips),
            (Strategy::Batch, true) => {
                let leg = (st.n() as u64).div_ceil(10);
                let mut done = dabs_search::greedy(st, best, tabu, u64::MAX);
                done += positive_min(st, best, tabu, rng, leg.min(flips));
                done
            }
            (Strategy::Batch, false) => {
                let leg = (st.n() as u64).div_ceil(10);
                let mut done = reference::greedy_scan(st, best, tabu, u64::MAX);
                done += reference::positive_min_scan(st, best, tabu, rng, leg.min(flips));
                done
            }
            // Greedy is measured by `run_arm`'s descent loop, never here.
            (Strategy::Greedy, _) => unreachable!("greedy uses the descent harness"),
        }
    }

    /// Time one arm once. Iterative strategies (and the batch composite)
    /// run a warm-up fraction then a timed budget. Greedy times pure
    /// descents from a stream of random starts — the `O(n + m)` re-seeding
    /// between local minima is identical state management in both arms and
    /// would otherwise drown the selection cost this entry measures.
    fn run_arm(model: &QuboModel, strategy: Strategy, seg: bool, flips: u64, seed: u64) -> f64 {
        let n = model.n();
        let mut st = IncrementalState::new(model);
        let mut best = BestTracker::unbounded(n);
        let mut tabu = TabuList::new(n, 8);
        let mut rng = Xorshift64Star::new(seed);
        if matches!(strategy, Strategy::Greedy) {
            let mut starts = Xorshift64Star::new(seed ^ 0x5EED);
            // warm-up descent
            st.reset_to(Solution::random(n, &mut starts));
            if seg {
                dabs_search::greedy(&mut st, &mut best, &mut tabu, u64::MAX);
            } else {
                reference::greedy_scan(&mut st, &mut best, &mut tabu, u64::MAX);
            }
            let mut done = 0u64;
            let mut busy = Duration::ZERO;
            while done < flips {
                st.reset_to(Solution::random(n, &mut starts));
                let t0 = Instant::now();
                let used = if seg {
                    dabs_search::greedy(&mut st, &mut best, &mut tabu, u64::MAX)
                } else {
                    reference::greedy_scan(&mut st, &mut best, &mut tabu, u64::MAX)
                };
                busy += t0.elapsed();
                done += used.max(1);
            }
            std::hint::black_box(best.energy());
            return done as f64 / busy.as_secs_f64().max(1e-9);
        }
        let mut warm = 0u64;
        while warm < (flips / 8).max(64) {
            warm +=
                run_iterative(strategy, seg, &mut st, &mut best, &mut tabu, &mut rng, 256).max(1);
        }
        let mut done = 0u64;
        let t0 = Instant::now();
        while done < flips {
            done += run_iterative(
                strategy,
                seg,
                &mut st,
                &mut best,
                &mut tabu,
                &mut rng,
                flips - done,
            )
            .max(1);
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(best.energy());
        done as f64 / secs
    }

    /// Best-of-`reps` throughput for one arm (the max sheds scheduler
    /// noise; both arms get the same treatment).
    fn measure(model: &QuboModel, strategy: Strategy, seg: bool, flips: u64, reps: usize) -> f64 {
        (0..reps)
            .map(|r| run_arm(model, strategy, seg, flips, 5 + r as u64))
            .fold(0.0f64, f64::max)
    }

    /// Run the sweep over both instances.
    pub fn sweep(mode: SuiteMode, seed: u64) -> Vec<ScanPoint> {
        let (n, flips, reps) = shape(mode);
        let gset = sparse_model(n, 5 * n, 9, seed.wrapping_add(79));
        let weighted = sparse_model(n, 12 * n, 99, seed.wrapping_add(80));
        let plan: [(&'static str, &QuboModel, Strategy, bool); 6] = [
            ("gset.greedy", &gset, Strategy::Greedy, false),
            ("gset.cyclicmin", &gset, Strategy::CyclicMin, false),
            (
                "weighted.positivemin",
                &weighted,
                Strategy::PositiveMin,
                true,
            ),
            ("weighted.maxmin", &weighted, Strategy::MaxMin, false),
            ("weighted.batch", &weighted, Strategy::Batch, true),
            ("gset.batch", &gset, Strategy::Batch, false),
        ];
        plan.into_iter()
            .map(|(name, model, strategy, gated)| ScanPoint {
                name,
                scan_rate: measure(model, strategy, false, flips, reps),
                seg_rate: measure(model, strategy, true, flips, reps),
                gated,
            })
            .collect()
    }

    /// Contract violations across a sweep (empty = contract holds).
    pub fn violations(points: &[ScanPoint]) -> Vec<String> {
        points
            .iter()
            .filter(|p| p.gated && p.speedup() < SCAN_MIN_SPEEDUP)
            .map(|p| {
                format!(
                    "{}: segment selection is only {:.2}\u{d7} the full scan \
                     (contract: \u{2265} {SCAN_MIN_SPEEDUP}\u{d7})",
                    p.name,
                    p.speedup()
                )
            })
            .collect()
    }

    /// The suite entry: per-point throughput for both arms (trajectory),
    /// speedups (contract points gated with a drift tolerance), the
    /// minimum contract speedup, and the \u{2265}3\u{d7} contract verdict. As in
    /// the kernel entry, timing gates are suspended at `Test` scale.
    pub fn entry(cfg: &SuiteConfig) -> MetricSet {
        let gate_timing = cfg.mode != SuiteMode::Test;
        let points = sweep(cfg.mode, cfg.seed);
        let bad = violations(&points);
        let mut out = MetricSet::new();
        let mut min_gated = f64::INFINITY;
        for p in &points {
            out.push(Metric::new(
                format!("{}.scan_mflips", p.name),
                p.scan_rate / 1e6,
                "Mflip/s",
                Direction::HigherIsBetter,
            ));
            out.push(Metric::new(
                format!("{}.seg_mflips", p.name),
                p.seg_rate / 1e6,
                "Mflip/s",
                Direction::HigherIsBetter,
            ));
            let mut speedup = Metric::new(
                format!("{}.speedup", p.name),
                p.speedup(),
                "ratio",
                Direction::HigherIsBetter,
            );
            if p.gated {
                min_gated = min_gated.min(p.speedup());
                if gate_timing {
                    // Machine-relative (both arms on one box) — gates
                    // meaningfully across hosts, unlike raw flips/s.
                    speedup = speedup.gated(0.5);
                }
            }
            out.push(speedup);
        }
        let mut min_speedup = Metric::new(
            "min_contract_speedup",
            if min_gated.is_finite() {
                min_gated
            } else {
                0.0
            },
            "ratio",
            Direction::HigherIsBetter,
        );
        if gate_timing {
            min_speedup = min_speedup.gated(0.5);
        }
        out.push(min_speedup);
        let mut contract = Metric::new(
            "contract_ok",
            if bad.is_empty() { 1.0 } else { 0.0 },
            "bool",
            Direction::HigherIsBetter,
        );
        if gate_timing {
            contract = contract.gated(0.0);
        }
        out.push(contract);
        for v in &bad {
            eprintln!("scan_sweep contract violation: {v}");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Bit-sliced bulk search
// ---------------------------------------------------------------------------

/// Prices the bit-sliced bulk-search kernel against its scalar reference:
/// a [`dabs_model::BatchState`] + [`dabs_search::BulkSweep`] runs all lanes
/// through the lockstep threshold-accepting sweep in one pass over the
/// weights, while the scalar arm runs the same trajectory as independent
/// [`dabs_model::IncrementalState`] + [`dabs_search::ScalarSweep`] pairs.
/// The two arms are bit-identical per lane (same lane seeds, same
/// calibration), so the flip budgets match by construction and the speedup
/// is a pure wall-time ratio. Contract: ≥ 4× aggregate Mflip/s (10× is the
/// recorded, ungated target) with every lane in parity.
pub mod batch {
    use super::*;
    use dabs_model::{BatchState, CsrKernel, IncrementalState, Solution};
    use dabs_rng::Xorshift64Star;
    use dabs_search::{lane_seed, BulkSweep, ScalarSweep, BULK_CYCLE_ROUNDS};
    use std::time::Instant;

    /// Conservative CI floor for the batch-vs-scalar speedup. The paper's
    /// bulk-search argument needs roughly an order of magnitude; measured
    /// headroom on a release build is well above this, so a trip means a
    /// real lane-kernel regression, not runner noise.
    pub const BATCH_MIN_SPEEDUP: f64 = 4.0;
    /// The aspirational target, recorded ungated as `vs_target` so the
    /// trajectory shows progress toward it across machines.
    pub const BATCH_TARGET_SPEEDUP: f64 = 10.0;

    /// Sweep shape per suite mode: `(n, lanes, cooling cycles, best-of
    /// repetitions)`.
    pub fn shape(mode: SuiteMode) -> (usize, usize, u64, usize) {
        match mode {
            SuiteMode::Test => (256, 64, 1, 1),
            SuiteMode::Smoke => (1_024, 256, 2, 3),
            SuiteMode::Full => (1_024, 256, 8, 5),
        }
    }

    /// One measured instance: best-of-reps rates for both arms plus the
    /// deterministic cross-checks from the final repetition.
    pub struct BatchPoint {
        pub batch_rate: f64,
        pub scalar_rate: f64,
        /// Every lane of the final rep bit-identical to its scalar run
        /// (energy, best, flip count, solution) with equal total flips.
        pub parity_ok: bool,
        /// Total accepted flips of the final rep (equal in both arms when
        /// `parity_ok`).
        pub flips: u64,
    }

    impl BatchPoint {
        pub fn speedup(&self) -> f64 {
            self.batch_rate / self.scalar_rate.max(1e-9)
        }
    }

    /// Run both arms `reps` times on the `scan_sweep` weighted instance.
    /// State construction, lane seeding and amplitude calibration happen
    /// outside the timed region in both arms; the timed region is exactly
    /// the sweep.
    pub fn sweep(mode: SuiteMode, seed: u64) -> BatchPoint {
        let (n, lanes, cycles, reps) = shape(mode);
        let model = scan::sparse_model(n, 12 * n, 99, seed.wrapping_add(80));
        let kernel = CsrKernel::new(&model);
        let rounds = cycles * BULK_CYCLE_ROUNDS;

        let mut batch_rate = 0.0f64;
        let mut scalar_rate = 0.0f64;
        let mut parity_ok = false;
        let mut flips = 0u64;
        for r in 0..reps {
            let rep_seed = seed.wrapping_add(101 * r as u64);
            let mut starts = Xorshift64Star::new(rep_seed ^ 0x5A17);
            let lane_starts: Vec<Solution> = (0..lanes)
                .map(|_| Solution::random(n, &mut starts))
                .collect();

            // Batch arm.
            let mut bs = BatchState::new(kernel, lanes);
            for (l, start) in lane_starts.iter().enumerate() {
                bs.seed_lane(l, start);
            }
            let mut bulk = BulkSweep::new(lanes, rep_seed);
            bulk.calibrate(&bs);
            let t0 = Instant::now();
            let batch_flips = bulk.run(&mut bs, rounds);
            let batch_secs = t0.elapsed().as_secs_f64().max(1e-9);
            std::hint::black_box(bs.energies());

            // Scalar arm: the same trajectories, one state per lane.
            let mut states: Vec<IncrementalState<'_, CsrKernel<'_>>> = lane_starts
                .iter()
                .map(|s| IncrementalState::from_solution_with(&model, kernel, s.clone()))
                .collect();
            let mut sweeps: Vec<ScalarSweep> = (0..lanes)
                .map(|l| {
                    let mut sw = ScalarSweep::new(lane_seed(rep_seed, l));
                    sw.calibrate(&states[l]);
                    sw
                })
                .collect();
            let t1 = Instant::now();
            let mut scalar_flips = 0u64;
            for (st, sw) in states.iter_mut().zip(sweeps.iter_mut()) {
                scalar_flips += sw.run(st, rounds);
            }
            let scalar_secs = t1.elapsed().as_secs_f64().max(1e-9);
            std::hint::black_box(&states);

            batch_rate = batch_rate.max(batch_flips as f64 / batch_secs);
            scalar_rate = scalar_rate.max(scalar_flips as f64 / scalar_secs);
            if r == reps - 1 {
                parity_ok = batch_flips == scalar_flips
                    && (0..lanes).all(|l| {
                        bs.lane_energy(l) == states[l].energy()
                            && bs.lane_best_energy(l) == sweeps[l].best()
                            && bs.lane_flip_counts()[l] == states[l].flips()
                            && bs.lane_solution(l) == *states[l].solution()
                    });
                flips = batch_flips;
            }
        }
        BatchPoint {
            batch_rate,
            scalar_rate,
            parity_ok,
            flips,
        }
    }

    /// The suite entry. Timing gates (speedup, contract) are suspended at
    /// `Test` scale like every other kernel entry; the parity verdict is
    /// deterministic and gated in every mode — a debug-profile test run
    /// must still prove the lanes track their scalar references.
    pub fn entry(cfg: &SuiteConfig) -> MetricSet {
        let gate_timing = cfg.mode != SuiteMode::Test;
        let point = sweep(cfg.mode, cfg.seed);
        let mut out = MetricSet::new();
        out.push(Metric::new(
            "batch_mflips",
            point.batch_rate / 1e6,
            "Mflip/s",
            Direction::HigherIsBetter,
        ));
        out.push(Metric::new(
            "scalar_mflips",
            point.scalar_rate / 1e6,
            "Mflip/s",
            Direction::HigherIsBetter,
        ));
        let mut speedup = Metric::new(
            "speedup",
            point.speedup(),
            "ratio",
            Direction::HigherIsBetter,
        );
        if gate_timing {
            // Machine-relative (both arms on one box), so it gates
            // meaningfully across hosts.
            speedup = speedup.gated(0.5);
        }
        out.push(speedup);
        out.push(Metric::new(
            "vs_target",
            point.speedup() / BATCH_TARGET_SPEEDUP,
            "ratio",
            Direction::HigherIsBetter,
        ));
        out.push(
            Metric::new(
                "lane_flips",
                point.flips as f64,
                "count",
                Direction::HigherIsBetter,
            )
            .deterministic(),
        );
        out.push(
            Metric::new(
                "parity_ok",
                if point.parity_ok { 1.0 } else { 0.0 },
                "bool",
                Direction::HigherIsBetter,
            )
            .deterministic()
            .gated(0.0),
        );
        let ok = point.parity_ok && point.speedup() >= BATCH_MIN_SPEEDUP;
        let mut contract = Metric::new(
            "contract_ok",
            if ok { 1.0 } else { 0.0 },
            "bool",
            Direction::HigherIsBetter,
        );
        if gate_timing {
            contract = contract.gated(0.0);
        }
        out.push(contract);
        if !point.parity_ok {
            eprintln!("batch_sweep contract violation: lane/scalar parity broke");
        } else if gate_timing && point.speedup() < BATCH_MIN_SPEEDUP {
            eprintln!(
                "batch_sweep contract violation: bulk kernel is only {:.2}\u{d7} the scalar \
                 reference (contract: \u{2265} {BATCH_MIN_SPEEDUP}\u{d7})",
                point.speedup()
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Observability overhead
// ---------------------------------------------------------------------------

/// Prices the observability layer on the solver's hot loop: the §III-B
/// batch composite (greedy descent + PositiveMin leg) runs twice on the
/// `scan_sweep` sparse instance — once plain, once tallying every batch
/// into a [`dabs_core::ObsAccumulator`] exactly as the sequential engine
/// does (sampled 1-in-2^k publication to the global counters). The
/// contract pins the instrumented arm at ≥ 97% of plain throughput.
pub mod obs_overhead {
    use super::scan::{shape, sparse_model};
    use super::*;
    use dabs_core::ObsAccumulator;
    use dabs_model::{BestTracker, IncrementalState};
    use dabs_rng::Xorshift64Star;
    use dabs_search::{positive_min, TabuList};
    use std::time::Instant;

    /// The CI contract: instrumentation may cost at most this fraction of
    /// flip throughput (the measured cost is ~0 — the accumulator is plain
    /// per-engine arithmetic with a sampled atomic flush — so a trip means
    /// something started touching shared state per flip).
    pub const OBS_MAX_OVERHEAD: f64 = 0.03;

    /// One measured pair: flips/s with and without the per-batch tally.
    pub struct OverheadPoint {
        pub name: &'static str,
        pub plain_rate: f64,
        pub instr_rate: f64,
    }

    impl OverheadPoint {
        /// Instrumented throughput as a fraction of plain (1.0 = free).
        pub fn ratio(&self) -> f64 {
            self.instr_rate / self.plain_rate
        }
    }

    /// Time one arm once: warm-up, then a timed budget of batch
    /// composites. The instrumented arm additionally reports each batch
    /// (strategy, flip count, Δ-segment re-reductions, improved?) to an
    /// accumulator — the exact call sequence `SeqEngine::one_batch` makes.
    fn run_arm(model: &QuboModel, flips: u64, seed: u64, instrumented: bool) -> f64 {
        let n = model.n();
        let mut st = IncrementalState::new(model);
        let mut best = BestTracker::unbounded(n);
        let mut tabu = TabuList::new(n, 8);
        let mut rng = Xorshift64Star::new(seed);
        let mut acc = instrumented.then(ObsAccumulator::new);
        let leg = (n as u64).div_ceil(10);
        let mut last_reds = st.seg_reductions();
        let mut last_best = best.energy();
        let mut one_batch = |st: &mut IncrementalState<'_>,
                             best: &mut BestTracker,
                             tabu: &mut TabuList,
                             rng: &mut Xorshift64Star,
                             budget: u64| {
            let mut done = dabs_search::greedy(st, best, tabu, u64::MAX);
            done += positive_min(st, best, tabu, rng, leg.min(budget));
            if let Some(acc) = acc.as_mut() {
                let reds = st.seg_reductions();
                let improved = best.energy() < last_best;
                acc.on_batch(0, done, reds - last_reds, improved);
                last_reds = reds;
                last_best = best.energy();
            }
            done.max(1)
        };
        let mut warm = 0u64;
        while warm < (flips / 8).max(64) {
            warm += one_batch(&mut st, &mut best, &mut tabu, &mut rng, 256);
        }
        let mut done = 0u64;
        let t0 = Instant::now();
        while done < flips {
            done += one_batch(&mut st, &mut best, &mut tabu, &mut rng, flips - done);
        }
        let secs = t0.elapsed().as_secs_f64().max(1e-9);
        std::hint::black_box(best.energy());
        done as f64 / secs
    }

    /// Best-of-`reps` per arm, with the arms interleaved (plain, instr,
    /// plain, …) so slow machine-wide drift hits both equally. A pair
    /// whose first pass lands under the contract line gets one
    /// confirmation pass with fresh reps (best-of-all kept): the timed
    /// sections are ~100 ms, where a one-off 3% deficit is scheduler
    /// noise on a busy host, so only a deficit that survives both passes
    /// reaches [`violations`].
    pub fn measure(mode: SuiteMode, seed: u64) -> Vec<OverheadPoint> {
        let (n, flips, reps) = shape(mode);
        let flips = flips * 2;
        let plan: [(&'static str, QuboModel); 2] = [
            (
                "gset.batch",
                sparse_model(n, 5 * n, 9, seed.wrapping_add(79)),
            ),
            (
                "weighted.batch",
                sparse_model(n, 12 * n, 99, seed.wrapping_add(80)),
            ),
        ];
        plan.iter()
            .map(|(name, model)| {
                let mut plain = 0.0f64;
                let mut instr = 0.0f64;
                for pass in 0..2 {
                    for r in 0..reps {
                        let arm_seed = 5 + (pass * reps + r) as u64;
                        plain = plain.max(run_arm(model, flips, arm_seed, false));
                        instr = instr.max(run_arm(model, flips, arm_seed, true));
                    }
                    if instr >= plain * (1.0 - OBS_MAX_OVERHEAD) {
                        break;
                    }
                }
                OverheadPoint {
                    name,
                    plain_rate: plain,
                    instr_rate: instr,
                }
            })
            .collect()
    }

    /// Contract violations across the measured pairs (empty = holds).
    pub fn violations(points: &[OverheadPoint]) -> Vec<String> {
        points
            .iter()
            .filter(|p| p.ratio() < 1.0 - OBS_MAX_OVERHEAD)
            .map(|p| {
                format!(
                    "{}: instrumented arm runs at {:.1}% of plain throughput \
                     (contract: \u{2265} {:.0}%)",
                    p.name,
                    p.ratio() * 100.0,
                    (1.0 - OBS_MAX_OVERHEAD) * 100.0
                )
            })
            .collect()
    }

    /// The suite entry: both arms' throughput (trajectory), the ratio per
    /// pair, the worst ratio, and the \u{2264}3% contract verdict. Like the
    /// other machine-timed entries, gates are suspended at `Test` scale.
    pub fn entry(cfg: &SuiteConfig) -> MetricSet {
        let gate_timing = cfg.mode != SuiteMode::Test;
        let points = measure(cfg.mode, cfg.seed);
        let bad = violations(&points);
        let mut out = MetricSet::new();
        let mut worst = f64::INFINITY;
        for p in &points {
            out.push(Metric::new(
                format!("{}.plain_mflips", p.name),
                p.plain_rate / 1e6,
                "Mflip/s",
                Direction::HigherIsBetter,
            ));
            out.push(Metric::new(
                format!("{}.instr_mflips", p.name),
                p.instr_rate / 1e6,
                "Mflip/s",
                Direction::HigherIsBetter,
            ));
            worst = worst.min(p.ratio());
            out.push(Metric::new(
                format!("{}.ratio", p.name),
                p.ratio(),
                "ratio",
                Direction::HigherIsBetter,
            ));
        }
        let mut min_ratio = Metric::new(
            "min_throughput_ratio",
            if worst.is_finite() { worst } else { 0.0 },
            "ratio",
            Direction::HigherIsBetter,
        );
        if gate_timing {
            // Machine-relative (both arms on one box), so it gates
            // meaningfully across hosts; 10% slack absorbs runner noise
            // while the contract below pins the absolute floor.
            min_ratio = min_ratio.gated(0.1);
        }
        out.push(min_ratio);
        let mut contract = Metric::new(
            "contract_ok",
            if bad.is_empty() { 1.0 } else { 0.0 },
            "bool",
            Direction::HigherIsBetter,
        );
        if gate_timing {
            contract = contract.gated(0.0);
        }
        out.push(contract);
        for v in &bad {
            eprintln!("obs_overhead contract violation: {v}");
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Server throughput
// ---------------------------------------------------------------------------

/// End-to-end jobs/s and latency percentiles against an in-process
/// `dabs-server` over real TCP — shared by the `server_throughput` bin, the
/// `dabs loadgen` flow, and the suite's `server_throughput` entry.
pub mod server_load {
    use super::*;
    use dabs_server::{
        drive_fleet, Client, ExecMode, JobSpec, LatencySummary, PoolLoad, ProblemSpec, Server,
        ServerConfig,
    };
    use std::time::Instant;

    /// One load shape.
    #[derive(Debug, Clone)]
    pub struct LoadSpec {
        pub clients: usize,
        pub jobs: usize,
        pub workers: usize,
        pub n: usize,
        pub batches: u64,
        pub seed: u64,
    }

    /// Load shape per suite mode.
    pub fn shape(mode: SuiteMode, seed: u64) -> LoadSpec {
        match mode {
            SuiteMode::Test => LoadSpec {
                clients: 2,
                jobs: 8,
                workers: 2,
                n: 16,
                batches: 40,
                seed,
            },
            SuiteMode::Smoke => LoadSpec {
                clients: 4,
                jobs: 32,
                workers: 2,
                n: 24,
                batches: 100,
                seed,
            },
            SuiteMode::Full => LoadSpec {
                clients: 8,
                jobs: 96,
                workers: 4,
                n: 32,
                batches: 200,
                seed,
            },
        }
    }

    /// Spin up an in-process server, run one warmup job end-to-end (thread
    /// spawning and first-touch costs stay out of the measured window), then
    /// drive the fleet and summarize. The server is shut down on *every*
    /// path — `Server` has no `Drop`, and a leaked worker pool would keep
    /// solving queued jobs under whatever the suite measures next.
    pub fn run(spec: &LoadSpec) -> Result<LatencySummary, String> {
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: spec.workers,
                queue_capacity: (spec.jobs * 2).max(64),
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("cannot bind in-process server: {e}"))?;
        let result = drive(&server, spec);
        server.shutdown();
        result
    }

    fn drive(server: &Server, spec: &LoadSpec) -> Result<LatencySummary, String> {
        let addr = server.local_addr();
        {
            let mut c = Client::connect(addr).map_err(|e| format!("warmup connect: {e}"))?;
            let id = c
                .submit(&JobSpec {
                    problem: ProblemSpec::random(spec.n, 999),
                    seed: 999,
                    mode: ExecMode::Sequential,
                    max_batches: Some(spec.batches),
                    ..JobSpec::default()
                })
                .map_err(|e| format!("warmup submit: {e}"))?;
            c.wait_result(id)
                .map_err(|e| format!("warmup result: {e}"))?;
        }

        let t0 = Instant::now();
        let (n, batches, seed) = (spec.n, spec.batches, spec.seed);
        let all = drive_fleet(&addr.to_string(), spec.clients, spec.jobs, move |c, j| {
            let job_seed = seed + (c * 10_007 + j) as u64;
            JobSpec {
                problem: ProblemSpec::random(n, job_seed),
                seed: job_seed,
                mode: ExecMode::Sequential,
                max_batches: Some(batches),
                ..JobSpec::default()
            }
        })?;
        let wall = t0.elapsed();
        LatencySummary::from_samples(all, wall).ok_or_else(|| "no jobs completed".to_string())
    }

    /// The suite entry. A failed run still emits a (failing) gated `ok`
    /// metric so the report stays schema-valid and the gate trips. As in
    /// the kernel entry, the wall-clock throughput gate is suspended at
    /// `Test` scale, where it would only measure CI box contention.
    pub fn entry(cfg: &SuiteConfig) -> MetricSet {
        let gate_timing = cfg.mode != SuiteMode::Test;
        let spec = shape(cfg.mode, cfg.seed);
        let mut out = MetricSet::new();
        match run(&spec) {
            Ok(s) => {
                out.push(
                    Metric::new("ok", 1.0, "bool", Direction::HigherIsBetter)
                        .deterministic()
                        .gated(0.0),
                );
                out.push(
                    Metric::new(
                        "jobs_done",
                        s.jobs as f64,
                        "count",
                        Direction::HigherIsBetter,
                    )
                    .deterministic()
                    .gated(0.0),
                );
                // Absolute throughput varies across hosts — wide tolerance.
                let mut jobs_per_s = Metric::new(
                    "jobs_per_s",
                    s.jobs_per_sec(),
                    "jobs/s",
                    Direction::HigherIsBetter,
                );
                if gate_timing {
                    jobs_per_s = jobs_per_s.gated(0.6);
                }
                out.push(jobs_per_s);
                out.push(Metric::new(
                    "p50_ms",
                    s.p50.as_secs_f64() * 1e3,
                    "ms",
                    Direction::LowerIsBetter,
                ));
                out.push(Metric::new(
                    "p99_ms",
                    s.p99.as_secs_f64() * 1e3,
                    "ms",
                    Direction::LowerIsBetter,
                ));
            }
            Err(e) => {
                eprintln!("server_throughput entry failed: {e}");
                out.push(
                    Metric::new("ok", 0.0, "bool", Direction::HigherIsBetter)
                        .deterministic()
                        .gated(0.0),
                );
            }
        }
        out
    }

    // -- elastic-pool load: isolation under a saturating decomposed job ----

    /// Shape of the `server_load` entry: a small-job fleet measured twice —
    /// once on an idle pool, once while one saturating decomposed job holds
    /// it — plus the saturating job itself.
    #[derive(Debug, Clone)]
    pub struct ElasticSpec {
        /// The latency-sensitive small-job fleet (measured unloaded, then
        /// loaded).
        pub fleet: LoadSpec,
        /// Instance size of the saturating job; ≥ 128 so its leading units
        /// are cube-seeded.
        pub large_n: usize,
        /// Batch budget of the saturating job — big enough to outlast both
        /// fleet passes; the scenario cancels it at the end.
        pub large_batches: u64,
        /// Decomposition width of the saturating job (`units` in the spec).
        pub large_units: u32,
    }

    /// Detected core count, 0 when unknown.
    pub fn host_cores() -> usize {
        std::thread::available_parallelism().map_or(0, |p| p.get())
    }

    /// Shape per suite mode. Worker count follows the host (clamped) so the
    /// scaling contract measures the machine it runs on; everything else is
    /// fixed per mode so trajectory points stay comparable.
    pub fn elastic_shape(mode: SuiteMode, seed: u64) -> ElasticSpec {
        let cores = host_cores();
        let (workers, clients, jobs, n, batches, large_batches) = match mode {
            SuiteMode::Test => (2, 2, 6, 16, 40, 2_000),
            SuiteMode::Smoke => (cores.clamp(2, 8), 4, 16, 24, 100, 40_000),
            SuiteMode::Full => (cores.clamp(4, 8), 8, 48, 32, 200, 200_000),
        };
        ElasticSpec {
            fleet: LoadSpec {
                clients,
                jobs,
                workers,
                n,
                batches,
                seed,
            },
            large_n: 160,
            large_batches,
            large_units: (workers as u32 * 2).max(4),
        }
    }

    /// What the elastic-load scenario measured.
    #[derive(Debug, Clone)]
    pub struct ElasticOutcome {
        pub unloaded: LatencySummary,
        pub loaded: LatencySummary,
        /// Pool gauges read after the loaded pass (steal/split counters).
        pub load: PoolLoad,
        /// Terminal phase of the saturating job after the closing cancel.
        pub large_phase: String,
    }

    /// Run the elastic-load scenario: unloaded fleet pass, submit the
    /// saturating low-priority decomposed job, loaded fleet pass, read the
    /// pool gauges, cancel the big job, shut down. The big job runs at
    /// priority −1 so the pool's urgency order — not luck — is what keeps
    /// the fleet's units ahead of the backlog.
    pub fn run_elastic(spec: &ElasticSpec) -> Result<ElasticOutcome, String> {
        let fleet = &spec.fleet;
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: fleet.workers,
                queue_capacity: (fleet.jobs * 2 + spec.large_units as usize).max(64),
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("cannot bind in-process server: {e}"))?;
        let result = drive_elastic(&server, spec);
        server.shutdown();
        result
    }

    fn drive_elastic(server: &Server, spec: &ElasticSpec) -> Result<ElasticOutcome, String> {
        let fleet = &spec.fleet;
        let addr = server.local_addr();
        let pass = |tag: &str, seed: u64| -> Result<LatencySummary, String> {
            let t0 = Instant::now();
            let (n, batches) = (fleet.n, fleet.batches);
            let all = drive_fleet(&addr.to_string(), fleet.clients, fleet.jobs, move |c, j| {
                let job_seed = seed + (c * 10_007 + j) as u64;
                JobSpec {
                    problem: ProblemSpec::random(n, job_seed),
                    seed: job_seed,
                    mode: ExecMode::Sequential,
                    max_batches: Some(batches),
                    ..JobSpec::default()
                }
            })
            .map_err(|e| format!("{tag} fleet: {e}"))?;
            LatencySummary::from_samples(all, t0.elapsed())
                .ok_or_else(|| format!("{tag} fleet completed no jobs"))
        };

        let mut control = Client::connect(addr).map_err(|e| format!("control connect: {e}"))?;
        // Warmup: one end-to-end job keeps thread-spawn and first-touch
        // costs out of both measured windows.
        let warm = control
            .submit(&JobSpec {
                problem: ProblemSpec::random(fleet.n, 999),
                seed: 999,
                mode: ExecMode::Sequential,
                max_batches: Some(fleet.batches),
                ..JobSpec::default()
            })
            .map_err(|e| format!("warmup submit: {e}"))?;
        control
            .wait_result(warm)
            .map_err(|e| format!("warmup result: {e}"))?;

        let unloaded = pass("unloaded", fleet.seed)?;

        let large = control
            .submit(&JobSpec {
                problem: ProblemSpec::random(spec.large_n, fleet.seed ^ 0x9e37),
                seed: fleet.seed ^ 0x9e37,
                mode: ExecMode::Sequential,
                max_batches: Some(spec.large_batches),
                units: Some(spec.large_units),
                priority: -1,
                ..JobSpec::default()
            })
            .map_err(|e| format!("large submit: {e}"))?;

        let loaded = pass("loaded", fleet.seed + 777_001)?;

        let stats = control.stats().map_err(|e| format!("stats: {e}"))?;
        let load = PoolLoad::from_stats(&stats).ok_or("stats reply was not Stats")?;
        control
            .cancel(large)
            .map_err(|e| format!("large cancel: {e}"))?;
        let large_phase = control
            .wait_result(large)
            .map_err(|e| format!("large result: {e}"))?
            .phase;
        Ok(ElasticOutcome {
            unloaded,
            loaded,
            load,
            large_phase,
        })
    }

    /// The `server_load` suite entry: latency isolation and pool scaling.
    ///
    /// Contract (self-checked, reported as the gated `contract_ok` bool):
    /// the loaded small-job p99 stays within 1.5× of the unloaded p99, and
    /// unloaded throughput reaches ≥ 96 jobs/s (2× the 48 jobs/s of the
    /// fixed job-per-worker pool's BENCH_5 point). Both halves need real
    /// parallelism to mean anything, so the contract is suspended — forced
    /// to pass — at `Test` scale and on hosts with fewer than 4 cores;
    /// `gates_enforced` records which regime produced the report.
    pub fn load_entry(cfg: &SuiteConfig) -> MetricSet {
        let spec = elastic_shape(cfg.mode, cfg.seed);
        let enforce = cfg.mode != SuiteMode::Test && host_cores() >= 4;
        let mut out = MetricSet::new();
        match run_elastic(&spec) {
            Ok(o) => {
                out.push(
                    Metric::new("ok", 1.0, "bool", Direction::HigherIsBetter)
                        .deterministic()
                        .gated(0.0),
                );
                let p99_unloaded = o.unloaded.p99.as_secs_f64() * 1e3;
                let p99_loaded = o.loaded.p99.as_secs_f64() * 1e3;
                let ratio = if p99_unloaded > 0.0 {
                    p99_loaded / p99_unloaded
                } else {
                    1.0
                };
                let jobs_per_s = o.unloaded.jobs_per_sec();
                out.push(Metric::new(
                    "p99_unloaded_ms",
                    p99_unloaded,
                    "ms",
                    Direction::LowerIsBetter,
                ));
                out.push(Metric::new(
                    "p99_loaded_ms",
                    p99_loaded,
                    "ms",
                    Direction::LowerIsBetter,
                ));
                out.push(Metric::new(
                    "p99_ratio",
                    ratio,
                    "x",
                    Direction::LowerIsBetter,
                ));
                // Absolute throughput varies across hosts — wide tolerance,
                // suspended entirely at Test scale (as in server_throughput).
                let mut tput = Metric::new(
                    "jobs_per_s",
                    jobs_per_s,
                    "jobs/s",
                    Direction::HigherIsBetter,
                );
                if cfg.mode != SuiteMode::Test {
                    tput = tput.gated(0.6);
                }
                out.push(tput);
                out.push(Metric::new(
                    "steals",
                    o.load.steals as f64,
                    "count",
                    Direction::HigherIsBetter,
                ));
                out.push(Metric::new(
                    "splits",
                    o.load.splits as f64,
                    "count",
                    Direction::HigherIsBetter,
                ));
                let p99_ok = ratio <= 1.5;
                let tput_ok = jobs_per_s >= 96.0;
                let pass = !enforce || (p99_ok && tput_ok);
                if !pass {
                    eprintln!(
                        "server_load contract violation: p99 ratio {ratio:.2} (≤1.5 {}), \
                         {jobs_per_s:.1} jobs/s (≥96 {})",
                        if p99_ok { "ok" } else { "VIOLATED" },
                        if tput_ok { "ok" } else { "VIOLATED" },
                    );
                }
                let mut contract = Metric::new(
                    "contract_ok",
                    f64::from(pass),
                    "bool",
                    Direction::HigherIsBetter,
                );
                if cfg.mode != SuiteMode::Test {
                    contract = contract.gated(0.0);
                }
                out.push(contract);
                out.push(Metric::new(
                    "gates_enforced",
                    f64::from(enforce),
                    "bool",
                    Direction::HigherIsBetter,
                ));
            }
            Err(e) => {
                eprintln!("server_load entry failed: {e}");
                out.push(
                    Metric::new("ok", 0.0, "bool", Direction::HigherIsBetter)
                        .deterministic()
                        .gated(0.0),
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Connection scaling (event-loop serving core)
// ---------------------------------------------------------------------------

/// Connection scaling: hold a large pool of idle connections against the
/// single-threaded event loop while a smaller active set does request/
/// response traffic. Measures resident memory per held connection and the
/// active-path ping p99 — the two things that degrade first when a
/// per-connection-thread design is pushed past a few hundred sockets.
pub mod conn_scale {
    use super::*;
    use dabs_server::{Client, Server, ServerConfig};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::Instant;

    /// One connection-scale shape.
    #[derive(Debug, Clone)]
    pub struct ConnSpec {
        /// Idle connections held open for the whole measurement.
        pub idle: usize,
        /// Connections doing ping round-trips while the idle pool is held.
        pub active: usize,
        /// Round-trips per active connection.
        pub pings: usize,
    }

    /// Shape per suite mode. Full is the serving target from the event-loop
    /// redesign: 10k idle + 1k active on one event-loop thread.
    pub fn shape(mode: SuiteMode) -> ConnSpec {
        match mode {
            SuiteMode::Test => ConnSpec {
                idle: 64,
                active: 8,
                pings: 20,
            },
            SuiteMode::Smoke => ConnSpec {
                idle: 512,
                active: 64,
                pings: 20,
            },
            SuiteMode::Full => ConnSpec {
                idle: 10_000,
                active: 1_000,
                pings: 10,
            },
        }
    }

    /// Soft open-file limit from `/proc/self/limits`, if readable.
    fn fd_limit() -> Option<usize> {
        let text = std::fs::read_to_string("/proc/self/limits").ok()?;
        let line = text.lines().find(|l| l.starts_with("Max open files"))?;
        line.split_whitespace().nth(3)?.parse().ok()
    }

    /// Resident set size in bytes from `/proc/self/status`, if readable.
    fn vm_rss() -> Option<u64> {
        let text = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = text.lines().find(|l| l.starts_with("VmRSS:"))?;
        let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
        Some(kib * 1024)
    }

    /// What one connection-scale run observed.
    pub struct ConnOutcome {
        /// Idle connections actually held (after any fd-limit clamp).
        pub idle_held: usize,
        /// RSS growth per held connection — covers *both* endpoints, since
        /// client sockets and server state live in the same process here.
        /// `None` when `/proc` is unreadable.
        pub bytes_per_conn: Option<f64>,
        pub p50: Duration,
        pub p99: Duration,
    }

    /// Spin up an in-process server on one event-loop thread, hold the idle
    /// pool, then measure ping round-trips from the active set.
    pub fn run(spec: &ConnSpec) -> Result<ConnOutcome, String> {
        // Both endpoints of every connection live in this process: a held
        // idle connection costs two fds, and an active `Client` costs three
        // (its reader/writer split clones the socket). Clamp the idle pool
        // so the pool, the active set, and everything else the process has
        // open all fit.
        let mut idle_target = spec.idle;
        if let Some(limit) = fd_limit() {
            let budget = limit.saturating_sub(3 * spec.active + 256) / 2;
            if budget < idle_target {
                eprintln!(
                    "conn_scale: clamping idle pool {idle_target} -> {budget} (fd limit {limit})"
                );
                idle_target = budget;
            }
        }

        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("cannot bind in-process server: {e}"))?;
        let result = drive(&server, idle_target, spec);
        server.shutdown();
        result
    }

    fn drive(server: &Server, idle_target: usize, spec: &ConnSpec) -> Result<ConnOutcome, String> {
        let addr = server.local_addr();

        // Warm the accept path before the baseline RSS reading so one-time
        // allocations (scratch buffers, slab) don't bill to the first conn.
        {
            let mut c = Client::connect(addr).map_err(|e| format!("warmup connect: {e}"))?;
            c.ping().map_err(|e| format!("warmup ping: {e}"))?;
        }
        let rss_before = vm_rss();

        // Hold the idle pool. One ping each proves the connection is fully
        // accepted and registered before it goes quiet.
        let mut idle = Vec::with_capacity(idle_target);
        for i in 0..idle_target {
            let mut s = TcpStream::connect(addr)
                .map_err(|e| format!("idle connect {i}/{idle_target}: {e}"))?;
            s.set_read_timeout(Some(Duration::from_secs(10)))
                .map_err(|e| format!("idle timeout {i}: {e}"))?;
            s.write_all(b"{\"op\":\"ping\"}\n")
                .map_err(|e| format!("idle ping {i}: {e}"))?;
            let mut r = BufReader::new(s);
            let mut line = String::new();
            r.read_line(&mut line)
                .map_err(|e| format!("idle pong {i}: {e}"))?;
            idle.push(r.into_inner());
        }
        let rss_after = vm_rss();
        let bytes_per_conn = match (rss_before, rss_after) {
            (Some(b), Some(a)) if !idle.is_empty() => {
                Some(a.saturating_sub(b) as f64 / idle.len() as f64)
            }
            _ => None,
        };

        // Active traffic while the idle pool is held: sequential round-trips
        // interleaved across the active set, so every RTT is measured with
        // the full idle population registered in the poller.
        let mut actives = Vec::with_capacity(spec.active);
        for i in 0..spec.active {
            actives.push(Client::connect(addr).map_err(|e| format!("active connect {i}: {e}"))?);
        }
        let mut rtts = Vec::with_capacity(spec.active * spec.pings);
        for _ in 0..spec.pings {
            for c in &mut actives {
                let t = Instant::now();
                c.ping().map_err(|e| format!("active ping: {e}"))?;
                rtts.push(t.elapsed());
            }
        }
        rtts.sort();
        let q = |f: f64| rtts[((rtts.len() - 1) as f64 * f) as usize];
        Ok(ConnOutcome {
            idle_held: idle.len(),
            bytes_per_conn,
            p50: q(0.5),
            p99: q(0.99),
        })
    }

    /// Suite entry: `conn_scale`.
    ///
    /// Contract (enforced at Smoke/Full, recorded-only at Test scale):
    /// per-connection memory stays under 64 KiB — both endpoints in this
    /// process, so ≤32 KiB per socket — and the active-path ping p99 stays
    /// under 50 ms with the idle pool held.
    pub fn entry(cfg: &SuiteConfig) -> MetricSet {
        let spec = shape(cfg.mode);
        let enforce = cfg.mode != SuiteMode::Test;
        let mut out = MetricSet::new();
        match run(&spec) {
            Ok(o) => {
                out.push(
                    Metric::new("ok", 1.0, "bool", Direction::HigherIsBetter)
                        .deterministic()
                        .gated(0.0),
                );
                out.push(Metric::new(
                    "conns_held",
                    o.idle_held as f64,
                    "count",
                    Direction::HigherIsBetter,
                ));
                let p50 = o.p50.as_secs_f64() * 1e3;
                let p99 = o.p99.as_secs_f64() * 1e3;
                out.push(Metric::new(
                    "ping_p50_ms",
                    p50,
                    "ms",
                    Direction::LowerIsBetter,
                ));
                // Host-timing metric — wide drift tolerance, suspended at
                // Test scale (as in server_throughput).
                let mut p99_m = Metric::new("ping_p99_ms", p99, "ms", Direction::LowerIsBetter);
                if enforce {
                    p99_m = p99_m.gated(1.5);
                }
                out.push(p99_m);
                // Recorded, never baseline-gated: RSS deltas land on 4 KiB
                // page granularity, so per-conn values jitter between 0 and
                // a few hundred bytes — and a lucky 0.0 baseline makes the
                // relative tolerance (`tolerance × |baseline|`) admit
                // nothing at all. The absolute ≤ 64 KiB bound below
                // (`contract_ok`) is the gate.
                if let Some(bpc) = o.bytes_per_conn {
                    out.push(Metric::new(
                        "bytes_per_conn",
                        bpc,
                        "B",
                        Direction::LowerIsBetter,
                    ));
                }
                let mem_ok = o.bytes_per_conn.is_none_or(|b| b <= 64.0 * 1024.0);
                let p99_ok = p99 <= 50.0;
                let pass = !enforce || (mem_ok && p99_ok);
                if !pass {
                    eprintln!(
                        "conn_scale contract violation: {:.0} B/conn (≤65536 {}), \
                         ping p99 {p99:.2} ms (≤50 {})",
                        o.bytes_per_conn.unwrap_or(0.0),
                        if mem_ok { "ok" } else { "VIOLATED" },
                        if p99_ok { "ok" } else { "VIOLATED" },
                    );
                }
                let mut contract = Metric::new(
                    "contract_ok",
                    f64::from(pass),
                    "bool",
                    Direction::HigherIsBetter,
                );
                if enforce {
                    contract = contract.gated(0.0);
                }
                out.push(contract);
                out.push(Metric::new(
                    "gates_enforced",
                    f64::from(enforce),
                    "bool",
                    Direction::HigherIsBetter,
                ));
            }
            Err(e) => {
                eprintln!("conn_scale entry failed: {e}");
                out.push(
                    Metric::new("ok", 0.0, "bool", Direction::HigherIsBetter)
                        .deterministic()
                        .gated(0.0),
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Chaos soak (fault injection + self-healing runtime)
// ---------------------------------------------------------------------------

/// Chaos soak: a capped, seeded fault storm over a live server under a
/// retrying client, then heal. Unit panics drive one job into quarantine,
/// worker kills exercise the supervisor's respawn path, and WAL fsync
/// errors flip (then clear) degraded mode. Because every fault site
/// carries a cap, the storm ends deterministically and the entry's gates
/// are *invariants*, not speeds: no job lost or duplicated, the worker
/// count restored, and the runtime's gauges exactly equal to the injected
/// fault counts. Timing enters only through bounded polls (machine-
/// relative — no fixed sleeps), and like `server_load` the gates are
/// suspended at `Test` scale and on hosts with fewer than 4 cores, with
/// `gates_enforced` recording which regime produced the report.
pub mod chaos_soak {
    use super::server_load::host_cores;
    use super::*;
    use dabs_server::{
        net_obs, pool_obs, Client, FaultPlan, FaultSite, JobSpec, ProblemSpec, Server, ServerConfig,
    };
    use std::time::Instant;

    /// One soak shape.
    #[derive(Debug, Clone)]
    pub struct SoakSpec {
        /// Jobs besides the quarantine target.
        pub jobs: usize,
        pub workers: usize,
        pub n: usize,
        pub batches: u64,
        pub seed: u64,
    }

    /// Soak shape per suite mode.
    pub fn shape(mode: SuiteMode, seed: u64) -> SoakSpec {
        match mode {
            SuiteMode::Test => SoakSpec {
                jobs: 4,
                workers: 2,
                n: 16,
                batches: 100,
                seed,
            },
            SuiteMode::Smoke => SoakSpec {
                jobs: 8,
                workers: 2,
                n: 24,
                batches: 150,
                seed,
            },
            SuiteMode::Full => SoakSpec {
                jobs: 24,
                workers: 4,
                n: 32,
                batches: 200,
                seed,
            },
        }
    }

    /// What the storm left behind.
    #[derive(Debug, Clone)]
    pub struct SoakOutcome {
        /// Total jobs submitted (including the quarantine target).
        pub jobs: usize,
        /// How many reached a terminal phase.
        pub terminal: usize,
        /// Duplicate job ids handed out (must be 0).
        pub duplicates: usize,
        pub injected_panics: u64,
        pub injected_kills: u64,
        pub injected_fsync: u64,
        pub panics_delta: u64,
        pub quarantined_delta: u64,
        pub wal_errors_delta: u64,
        /// The pool's own restart gauge (per-pool, exact).
        pub worker_restarts: u64,
        pub workers_restored: bool,
        /// `health` returned to `ok` after the storm.
        pub healed: bool,
        pub elapsed: Duration,
    }

    /// Run one storm: quarantine target first (all injected panics land on
    /// it — the only live job), then the clean fleet, then heal checks.
    pub fn run_soak(spec: &SoakSpec) -> Result<SoakOutcome, String> {
        let plan = Arc::new(
            FaultPlan::parse(&format!(
                "seed={},unit_panic=1x3,worker_kill=1x2,wal_fsync=1x3",
                spec.seed.max(1)
            ))
            .map_err(|e| format!("fault plan: {e}"))?,
        );
        let dir = std::env::temp_dir().join(format!(
            "dabs-bench-chaos-{}-{}",
            std::process::id(),
            spec.seed
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let panics0 = pool_obs().unit_panics.get();
        let quarantined0 = pool_obs().quarantined_jobs.get();
        let wal_errors0 = net_obs().wal_errors.get();
        let start = Instant::now();
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: spec.workers,
                queue_capacity: (spec.jobs * 2).max(16),
                wal_dir: Some(dir.clone()),
                chaos: Some(Arc::clone(&plan)),
                ..ServerConfig::default()
            },
        )
        .map_err(|e| format!("bind: {e}"))?;
        let result = drive_storm(&server, spec, &plan);
        let elapsed = start.elapsed();
        let worker_restarts = server.state().pool.gauges().worker_restarts;
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
        let (terminal, duplicates, workers_restored, healed, jobs) = result?;
        Ok(SoakOutcome {
            jobs,
            terminal,
            duplicates,
            injected_panics: plan.injected(FaultSite::UnitPanic),
            injected_kills: plan.injected(FaultSite::WorkerKill),
            injected_fsync: plan.injected(FaultSite::WalFsync),
            panics_delta: pool_obs().unit_panics.get() - panics0,
            quarantined_delta: pool_obs().quarantined_jobs.get() - quarantined0,
            wal_errors_delta: net_obs().wal_errors.get() - wal_errors0,
            worker_restarts,
            workers_restored,
            healed,
            elapsed,
        })
    }

    /// The storm body, split out so the server is shut down on every path.
    /// Returns `(terminal, duplicates, workers_restored, healed, jobs)`.
    fn drive_storm(
        server: &Server,
        spec: &SoakSpec,
        _plan: &FaultPlan,
    ) -> Result<(usize, usize, bool, bool, usize), String> {
        let addr = server.local_addr().to_string();
        let mut client = Client::builder(&addr)
            .read_timeout(Duration::from_secs(10))
            .idempotency_prefix("soak")
            .retry(10, Duration::from_millis(2), Duration::from_millis(50))
            .retry_seed(spec.seed)
            .connect()
            .map_err(|e| format!("connect: {e}"))?;
        let mut ids = Vec::new();
        // The quarantine target: alone on the pool, so every injected panic
        // is its own. Worker kills interleave here too — its units are
        // re-pushed and survive the respawns.
        let target = client
            .try_submit(&JobSpec {
                problem: ProblemSpec::random(spec.n, 9),
                max_batches: Some(400),
                units: Some(4),
                idempotency_key: Some("soak-target".into()),
                ..JobSpec::default()
            })
            .map_err(|e| format!("target submit: {e}"))?
            .job;
        ids.push(target);
        let outcome = client
            .try_wait_result(target)
            .map_err(|e| format!("target wait: {e}"))?;
        if outcome.phase != "failed" {
            return Err(format!("quarantine target ended {:?}", outcome.phase));
        }
        // The clean fleet rides out WAL degradation via retry.
        for j in 0..spec.jobs {
            let ack = client
                .try_submit(&JobSpec {
                    problem: ProblemSpec::random(spec.n, spec.seed ^ j as u64),
                    max_batches: Some(spec.batches),
                    units: Some(2),
                    idempotency_key: Some(format!("soak-{j}")),
                    ..JobSpec::default()
                })
                .map_err(|e| format!("job {j} submit: {e}"))?;
            ids.push(ack.job);
        }
        let mut terminal = 0usize;
        for &id in &ids[1..] {
            let outcome = client
                .try_wait_result(id)
                .map_err(|e| format!("job {id} wait: {e}"))?;
            terminal += usize::from(outcome.phase == "done");
        }
        terminal += usize::from(
            server
                .state()
                .registry
                .get(target)
                .is_some_and(|r| r.phase().is_terminal()),
        );
        let mut unique = ids.clone();
        unique.sort_unstable();
        unique.dedup();
        let duplicates = ids.len() - unique.len();
        // Bounded polls, no fixed sleeps: machine-relative by construction.
        let workers_restored = poll(Duration::from_secs(5), || {
            server.state().pool.live_workers() == spec.workers
        });
        let healed = poll(
            Duration::from_secs(5),
            || matches!(client.health(), Ok((status, _)) if status == "ok"),
        );
        Ok((terminal, duplicates, workers_restored, healed, ids.len()))
    }

    fn poll(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
        let end = Instant::now() + deadline;
        while Instant::now() < end {
            if ok() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }

    /// The `chaos_soak` suite entry. Gated invariants (suspended at `Test`
    /// scale / under 4 cores, recorded via `gates_enforced`):
    /// `no_lost_jobs` — every job terminal, no duplicate ids; and
    /// `workers_restored` — pool worker count back to configured after the
    /// kills. `gauges_exact` cross-checks runtime counters against the
    /// plan's injected totals.
    pub fn entry(cfg: &SuiteConfig) -> MetricSet {
        let spec = shape(cfg.mode, cfg.seed);
        let enforce = cfg.mode != SuiteMode::Test && host_cores() >= 4;
        let mut out = MetricSet::new();
        match run_soak(&spec) {
            Ok(o) => {
                out.push(
                    Metric::new("ok", 1.0, "bool", Direction::HigherIsBetter)
                        .deterministic()
                        .gated(0.0),
                );
                out.push(Metric::new(
                    "jobs",
                    o.jobs as f64,
                    "count",
                    Direction::HigherIsBetter,
                ));
                out.push(Metric::new(
                    "storm_ms",
                    o.elapsed.as_secs_f64() * 1e3,
                    "ms",
                    Direction::LowerIsBetter,
                ));
                out.push(Metric::new(
                    "worker_restarts",
                    o.worker_restarts as f64,
                    "count",
                    Direction::LowerIsBetter,
                ));
                let no_lost = o.terminal == o.jobs && o.duplicates == 0;
                let gauges_exact = o.panics_delta == o.injected_panics
                    && o.quarantined_delta == 1
                    && o.wal_errors_delta == o.injected_fsync
                    && o.worker_restarts == o.injected_kills;
                for (name, held) in [
                    ("no_lost_jobs", no_lost),
                    ("workers_restored", o.workers_restored),
                    ("healed", o.healed),
                    ("gauges_exact", gauges_exact),
                ] {
                    let pass = !enforce || held;
                    if !pass {
                        eprintln!("chaos_soak invariant violated: {name} ({o:?})");
                    }
                    let mut m =
                        Metric::new(name, f64::from(pass), "bool", Direction::HigherIsBetter);
                    if cfg.mode != SuiteMode::Test {
                        m = m.gated(0.0);
                    }
                    out.push(m);
                }
                out.push(Metric::new(
                    "gates_enforced",
                    f64::from(enforce),
                    "bool",
                    Direction::HigherIsBetter,
                ));
            }
            Err(e) => {
                eprintln!("chaos_soak entry failed: {e}");
                out.push(
                    Metric::new("ok", 0.0, "bool", Direction::HigherIsBetter)
                        .deterministic()
                        .gated(0.0),
                );
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// The §VI ablation studies: arm definitions shared by the four
/// `ablation_*` bins (threaded, wall-clock budgets, full nine-instance set)
/// and the suite entries (sequential, batch budgets, one instance per
/// family, deterministic).
pub mod ablation {
    use super::*;
    use dabs_problems::{gset, qaplib, QaspInstance, Topology};
    use dabs_search::MainAlgorithm;

    /// One measurement arm: a named way to build a solver config.
    pub struct Arm {
        pub name: String,
        #[allow(clippy::type_complexity)]
        pub build: Box<dyn Fn(usize, usize, SearchParams) -> DabsConfig + Send + Sync>,
    }

    impl Arm {
        fn new(
            name: impl Into<String>,
            build: impl Fn(usize, usize, SearchParams) -> DabsConfig + Send + Sync + 'static,
        ) -> Arm {
            Arm {
                name: name.into(),
                build: Box::new(build),
            }
        }
    }

    /// Adaptive (95 % replay / 5 % explore) vs uniform selection
    /// (`explore_prob = 1.0` disables the replay path entirely).
    pub fn adaptive_arms() -> Vec<Arm> {
        vec![
            Arm::new("adaptive", |d, b, p| {
                let mut cfg = DabsConfig::dabs(d, b);
                cfg.params = p;
                cfg
            }),
            Arm::new("uniform", |d, b, p| {
                let mut cfg = DabsConfig::dabs(d, b);
                cfg.params = p;
                cfg.explore_prob = 1.0;
                cfg
            }),
        ]
    }

    /// Island ring (4 pools × 2 blocks) vs a single pool with the same
    /// total block workers (1 × 8). Ignores the plan's device/block shape —
    /// the shape *is* the ablation.
    pub fn islands_arms() -> Vec<Arm> {
        vec![
            Arm::new("islands", |_, _, p| {
                let mut cfg = DabsConfig::dabs(4, 2);
                cfg.params = p;
                cfg
            }),
            Arm::new("single", |_, _, p| {
                let mut cfg = DabsConfig::dabs(1, 8);
                cfg.params = p;
                cfg
            }),
        ]
    }

    /// Tabu tenure 8 (the paper's fixed setting) vs tenure 0.
    pub fn tabu_arms() -> Vec<Arm> {
        vec![
            Arm::new("tabu8", |d, b, p| {
                let mut cfg = DabsConfig::dabs(d, b);
                cfg.params = p;
                cfg.params.tabu_tenure = 8;
                cfg
            }),
            Arm::new("tabu0", |d, b, p| {
                let mut cfg = DabsConfig::dabs(d, b);
                cfg.params = p;
                cfg.params.tabu_tenure = 0;
                cfg
            }),
        ]
    }

    /// Full five-algorithm portfolio vs each algorithm alone.
    pub fn portfolio_arms() -> Vec<Arm> {
        let mut arms = vec![Arm::new("portfolio", |d, b, p| {
            let mut cfg = DabsConfig::dabs(d, b);
            cfg.params = p;
            cfg
        })];
        for algo in MainAlgorithm::ALL {
            arms.push(Arm::new(format!("only-{}", algo.name()), move |d, b, p| {
                let mut cfg = DabsConfig::dabs(d, b);
                cfg.params = p;
                cfg.algorithms = vec![algo];
                cfg
            }));
        }
        arms
    }

    /// Which columns an ablation table prints per arm.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ArmColumns {
        /// best energy, TTS, success probability (two-arm tables).
        Full,
        /// success probability only (the wide portfolio table).
        ProbOnly,
    }

    /// The shared bin path: threaded solver, wall-clock budgets, the full
    /// nine-instance set, reference established by the first arm.
    pub fn run_table(arms: &[Arm], plan: &RunPlan, cols: ArmColumns) -> Table {
        let mut headers = vec!["Problem".to_string(), "PotOpt E".to_string()];
        for arm in arms {
            match cols {
                ArmColumns::Full => {
                    headers.push(format!("{} best", arm.name));
                    headers.push(format!("{} TTS", arm.name));
                    headers.push(format!("{} prob", arm.name));
                }
                ArmColumns::ProbOnly => headers.push(arm.name.clone()),
            }
        }
        let mut table = Table::new(headers);
        for inst in problem_suite(plan.full, plan.seed) {
            let budget = plan.budget(inst.family);
            let configs: Vec<(String, DabsConfig)> = arms
                .iter()
                .map(|a| {
                    (
                        a.name.clone(),
                        (a.build)(plan.devices, plan.blocks, inst.params),
                    )
                })
                .collect();
            let reference = establish_reference(&inst.model, &configs[0].1, budget * 3);
            let measured = measure_arms(
                &inst.model,
                &configs,
                plan.runs,
                plan.seed,
                budget,
                reference,
            );
            let mut row = vec![inst.label.clone(), reference.to_string()];
            for (_, stats) in &measured {
                match cols {
                    ArmColumns::Full => {
                        row.push(stats.best_energy().to_string());
                        row.push(fmt_tts(stats.mean_tts()));
                        row.push(format!("{:.0}%", 100.0 * stats.success_rate()));
                    }
                    ArmColumns::ProbOnly => {
                        row.push(format!("{:.0}%", 100.0 * stats.success_rate()));
                    }
                }
            }
            table.row(row);
        }
        table
    }

    /// One small instance per problem family for the deterministic suite
    /// entries.
    fn suite_instances(mode: SuiteMode, seed: u64) -> Vec<(String, QuboModel, SearchParams)> {
        let (mc_n, qap_n, qap_pen, qasp) = match mode {
            SuiteMode::Test => (32, 5, 10_000, (2usize, 24usize, 60usize)),
            SuiteMode::Smoke => (96, 8, 60_000, (4, 120, 500)),
            SuiteMode::Full => (256, 12, 100_000, (6, 300, 1_800)),
        };
        let topo =
            Topology::pegasus_like(qasp.0, qasp.0, 8.0, seed).with_faults(qasp.1, qasp.2, seed);
        vec![
            (
                "maxcut".to_string(),
                gset::k2000_like(mc_n, seed).to_qubo(),
                SearchParams::maxcut(),
            ),
            (
                "qap".to_string(),
                qaplib::tai_like(qap_n, seed).to_qubo(qap_pen),
                SearchParams::qap_qasp(),
            ),
            (
                "qasp".to_string(),
                QaspInstance::generate(&topo, 16, seed).qubo().clone(),
                SearchParams::qap_qasp(),
            ),
        ]
    }

    /// Deterministic suite measurement: every arm, sequential, batch
    /// budgets, target = first arm's long-run energy.
    fn det_entry(cfg: &SuiteConfig, arms: &[Arm]) -> MetricSet {
        let scale = Scale::of(cfg.mode);
        let mut out = MetricSet::new();
        for (inst_key, model, params) in suite_instances(cfg.mode, cfg.seed) {
            let reference = {
                let mut ref_cfg = (arms[0].build)(4, 2, params);
                ref_cfg.seed = cfg.seed;
                let solver = DabsSolver::new(ref_cfg).expect("valid config");
                solver
                    .run_sequential(&model, Termination::batches(scale.abl_batches * 3))
                    .energy
            };
            out.push(
                Metric::new(
                    format!("{inst_key}.ref_energy"),
                    reference as f64,
                    "energy",
                    Direction::LowerIsBetter,
                )
                .deterministic()
                .gated(0.25),
            );
            for (ai, arm) in arms.iter().enumerate() {
                let mut best = i64::MAX;
                let mut reached = 0usize;
                for k in 0..scale.abl_runs as u64 {
                    let mut run_cfg = (arm.build)(4, 2, params);
                    run_cfg.seed = arm_seed(cfg.seed, ai).wrapping_add(k);
                    let solver = DabsSolver::new(run_cfg).expect("valid config");
                    let r = solver.run_sequential(
                        &model,
                        Termination::batches(scale.abl_batches).with_target(reference),
                    );
                    best = best.min(r.energy);
                    if r.reached_target {
                        reached += 1;
                    }
                }
                out.push(
                    Metric::new(
                        format!("{inst_key}.{}.best_energy", arm.name),
                        best as f64,
                        "energy",
                        Direction::LowerIsBetter,
                    )
                    .deterministic()
                    .gated(0.25),
                );
                out.push(
                    Metric::new(
                        format!("{inst_key}.{}.success_rate", arm.name),
                        reached as f64 / scale.abl_runs as f64,
                        "ratio",
                        Direction::HigherIsBetter,
                    )
                    .deterministic(),
                );
            }
        }
        out
    }

    pub fn adaptive_entry(cfg: &SuiteConfig) -> MetricSet {
        det_entry(cfg, &adaptive_arms())
    }

    pub fn islands_entry(cfg: &SuiteConfig) -> MetricSet {
        det_entry(cfg, &islands_arms())
    }

    pub fn tabu_entry(cfg: &SuiteConfig) -> MetricSet {
        det_entry(cfg, &tabu_arms())
    }

    /// The portfolio entry trims to the portfolio itself plus the first two
    /// solo algorithms in Test/Smoke mode — six sequential arms at suite
    /// scale would dominate the smoke wall-clock for no extra signal.
    pub fn portfolio_entry(cfg: &SuiteConfig) -> MetricSet {
        let mut arms = portfolio_arms();
        if cfg.mode != SuiteMode::Full {
            arms.truncate(3);
        }
        det_entry(cfg, &arms)
    }
}

// ---------------------------------------------------------------------------
// Frequency tables (Tables V/VI)
// ---------------------------------------------------------------------------

/// Shared measurement loops of the frequency tables.
pub mod frequency {
    use super::*;
    use dabs_core::FrequencyReport;
    use dabs_core::GeneticOp;
    use dabs_search::MainAlgorithm;

    /// Canonical seed-stream offsets: Table V uses `seed·10⁴ + k`,
    /// Table VI `seed·2·10⁴ + k` (distinct tables, distinct streams).
    pub const EXECUTED_STREAM: u64 = 10_000;
    pub const FIRST_FINDER_STREAM: u64 = 20_000;

    /// Aggregate executed-frequency counters over repeated runs (Table V).
    pub fn executed(inst: &BenchInstance, plan: &RunPlan) -> FrequencyReport {
        let budget = plan.budget(inst.family);
        let mut agg: Option<FrequencyReport> = None;
        for k in 0..plan.runs as u64 {
            let mut cfg = plan.dabs(inst.params);
            cfg.seed = plan.seed * EXECUTED_STREAM + k;
            let solver = DabsSolver::new(cfg).expect("valid config");
            let r = solver.run(&inst.model, Termination::time(budget));
            match &mut agg {
                Some(a) => a.merge(&r.frequencies),
                None => agg = Some(r.frequencies),
            }
        }
        agg.expect("at least one run")
    }

    /// Tally which (algorithm, operation) pair first found each run's final
    /// best (Table VI). Returns `(algo_counts, op_counts, counted_runs)`.
    pub fn first_finder(inst: &BenchInstance, plan: &RunPlan) -> ([u32; 5], [u32; 9], u32) {
        let budget = plan.budget(inst.family);
        let mut algo_counts = [0u32; 5];
        let mut op_counts = [0u32; 9];
        let mut counted = 0u32;
        for k in 0..plan.runs as u64 {
            let mut cfg = plan.dabs(inst.params);
            cfg.seed = plan.seed * FIRST_FINDER_STREAM + k;
            let solver = DabsSolver::new(cfg).expect("valid config");
            let r = solver.run(&inst.model, Termination::time(budget));
            if let Some((algo, op)) = r.first_finder {
                algo_counts[algo.index()] += 1;
                op_counts[op.index()] += 1;
                counted += 1;
            }
        }
        (algo_counts, op_counts, counted)
    }

    /// Percentage rows with the row maximum starred (the paper's boldface).
    pub fn percent_row(counts: &[f64]) -> Vec<String> {
        let max = counts.iter().cloned().fold(0.0f64, f64::max);
        counts
            .iter()
            .map(|&p| {
                if (p - max).abs() < 1e-9 && max > 0.0 {
                    format!("{p:.1}%*")
                } else {
                    format!("{p:.1}%")
                }
            })
            .collect()
    }

    /// The Table V/VI column headers (problem + 5 algorithms + 9 ops).
    pub fn table_headers() -> Vec<String> {
        let mut headers = vec!["Problem".to_string()];
        headers.extend(MainAlgorithm::ALL.iter().map(|a| a.name().to_string()));
        headers.extend(GeneticOp::DABS.iter().map(|o| o.name().to_string()));
        headers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn run_plan_has_one_set_of_defaults() {
        let p = RunPlan::from_args(&args(""));
        assert!(!p.full);
        assert_eq!((p.runs, p.seed, p.devices, p.blocks), (5, 1, 4, 2));
        assert_eq!(p.budget_override, None);
        // family budgets come from the canonical table
        assert_eq!(p.budget(Family::MaxCut), Duration::from_millis(3_000));
        assert_eq!(p.budget(Family::Qap), Duration::from_millis(4_000));
        assert_eq!(p.budget(Family::Qasp), Duration::from_millis(5_000));
    }

    #[test]
    fn budget_override_beats_family_default() {
        let p = RunPlan::from_args(&args("--budget-ms 1234"));
        assert_eq!(p.budget(Family::Qap), Duration::from_millis(1_234));
    }

    #[test]
    fn full_scale_budgets_differ() {
        let p = RunPlan::from_args(&args("--full"));
        assert_eq!(p.budget(Family::Qap), Duration::from_millis(120_000));
        assert_eq!(p.budget(Family::MaxCut), Duration::from_millis(60_000));
    }

    #[test]
    fn arm_seeds_are_disjoint_streams() {
        for base in [0u64, 1, 7] {
            let s: Vec<u64> = (0..4).map(|a| arm_seed(base, a)).collect();
            let mut sorted = s.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "arm seeds collide at base {base}: {s:?}");
        }
    }

    #[test]
    fn problem_suite_covers_three_families_with_three_instances_each() {
        let suite = problem_suite(false, 1);
        assert_eq!(suite.len(), 9);
        for f in [Family::MaxCut, Family::Qap, Family::Qasp] {
            assert_eq!(suite.iter().filter(|i| i.family == f).count(), 3);
        }
    }

    #[test]
    fn ablation_arms_shapes() {
        assert_eq!(ablation::adaptive_arms().len(), 2);
        assert_eq!(ablation::islands_arms().len(), 2);
        assert_eq!(ablation::tabu_arms().len(), 2);
        assert_eq!(ablation::portfolio_arms().len(), 6);
        let uniform = &ablation::adaptive_arms()[1];
        let cfg = (uniform.build)(4, 2, SearchParams::maxcut());
        assert_eq!(cfg.explore_prob, 1.0);
        let tabu0 = &ablation::tabu_arms()[1];
        assert_eq!(
            (tabu0.build)(4, 2, SearchParams::maxcut())
                .params
                .tabu_tenure,
            0
        );
    }

    #[test]
    fn kernel_sweep_points_are_ordered_and_positive() {
        let points = kernel::sweep(96, 500, 3, &[0.1, 0.9]);
        assert_eq!(points.len(), 2);
        assert!(points[0].density < points[1].density);
        for p in &points {
            assert!(p.csr_rate > 0.0 && p.dense_rate > 0.0);
            assert!(p.nnz > 0);
        }
    }

    #[test]
    fn det_reference_is_reproducible() {
        let model = dabs_problems::gset::k2000_like(24, 5).to_qubo();
        let a = ttt::det_reference(&model, SearchParams::maxcut(), 9, 60);
        let b = ttt::det_reference(&model, SearchParams::maxcut(), 9, 60);
        assert_eq!(a, b);
    }
}
