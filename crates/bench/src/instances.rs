//! The benchmark instance sets at CI scale and paper scale.
//!
//! Every table binary accepts `--full` to run the paper-sized instances
//! (n = 2000 MaxCut, n = 20/30 QAP, 5 627-node QASP); the default is a
//! scaled-down set with the same structure that finishes in minutes on a
//! laptop. Seeds default to 1 and are configurable with `--seed`.

use dabs_problems::{gset, qaplib, MaxCutProblem, QapInstance, QaspInstance, Topology};

/// A named MaxCut benchmark.
pub struct MaxCutBench {
    pub label: &'static str,
    pub problem: MaxCutProblem,
}

/// The Table II trio, scaled. At CI scale: n = 120 complete / sparse graphs
/// with matched density ratios (G22-like ≈ 1 % density, G39-like ≈ 0.6 %).
pub fn maxcut_set(full: bool, seed: u64) -> Vec<MaxCutBench> {
    if full {
        vec![
            MaxCutBench {
                label: "K2000",
                problem: gset::GsetClass::K2000.generate(seed),
            },
            MaxCutBench {
                label: "G22",
                problem: gset::GsetClass::G22.generate(seed),
            },
            MaxCutBench {
                label: "G39",
                problem: gset::GsetClass::G39.generate(seed),
            },
        ]
    } else {
        let n = 120;
        // scale edge counts with n²/2000² to keep the density profile
        vec![
            MaxCutBench {
                label: "K2000(scaled n=120)",
                problem: gset::k2000_like(n, seed),
            },
            MaxCutBench {
                label: "G22(scaled n=120)",
                problem: gset::g22_like(n, 720, seed),
            },
            MaxCutBench {
                label: "G39(scaled n=120)",
                problem: gset::g39_like(n, 424, seed),
            },
        ]
    }
}

/// A named QAP benchmark with its paper penalty.
pub struct QapBench {
    pub label: &'static str,
    pub instance: QapInstance,
    pub penalty: i64,
}

/// The Table III trio, scaled. The paper's penalties (200 000 / 30 000 /
/// 1 000) are reproduced at full scale; scaled instances use the same
/// order-of-magnitude ratios relative to their cost scale.
pub fn qap_set(full: bool, seed: u64) -> Vec<QapBench> {
    if full {
        vec![
            QapBench {
                label: "tai20a",
                instance: qaplib::tai_like(20, seed),
                penalty: 200_000,
            },
            QapBench {
                label: "tho30",
                instance: qaplib::tho_like(5, 6, seed),
                penalty: 30_000,
            },
            QapBench {
                label: "nug30",
                instance: qaplib::nug_like(5, 6, seed),
                penalty: 1_000,
            },
        ]
    } else {
        vec![
            QapBench {
                label: "tai8a(scaled)",
                instance: qaplib::tai_like(8, seed),
                penalty: 60_000,
            },
            QapBench {
                label: "tho9(scaled)",
                instance: qaplib::tho_like(3, 3, seed),
                penalty: 4_000,
            },
            QapBench {
                label: "nug9(scaled)",
                instance: qaplib::nug_like(3, 3, seed),
                penalty: 400,
            },
        ]
    }
}

/// A named QASP benchmark.
pub struct QaspBench {
    pub label: String,
    pub instance: QaspInstance,
}

/// The Table IV trio (resolutions 1/16/256), scaled. At CI scale the
/// topology is a Pegasus-like graph on a 6×6 Chimera base (~1 150 nodes
/// trimmed to 1 000); `--full` uses the paper's 5 627 / 40 279 working
/// graph.
pub fn qasp_set(full: bool, seed: u64) -> Vec<QaspBench> {
    let topology = if full {
        Topology::advantage_working_graph(seed)
    } else {
        // Chimera(12,12,4) base = 1 152 nodes, trimmed to a 1 000-node twin
        Topology::pegasus_like(12, 12, 14.0, seed).with_faults(1_000, 7_000, seed)
    };
    [1i64, 16, 256]
        .into_iter()
        .map(|r| QaspBench {
            label: format!("QASP{r}"),
            instance: QaspInstance::generate(&topology, r, seed.wrapping_add(r as u64)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_maxcut_set_shapes() {
        let set = maxcut_set(false, 1);
        assert_eq!(set.len(), 3);
        assert_eq!(set[0].problem.n(), 120);
        assert_eq!(set[0].problem.edge_count(), 120 * 119 / 2);
        assert_eq!(set[1].problem.edge_count(), 720);
        assert_eq!(set[2].problem.edge_count(), 424);
    }

    #[test]
    fn full_maxcut_set_is_paper_sized() {
        let set = maxcut_set(true, 1);
        assert!(set.iter().all(|b| b.problem.n() == 2000));
        assert_eq!(set[1].problem.edge_count(), 19_990);
    }

    #[test]
    fn scaled_qap_set_shapes() {
        let set = qap_set(false, 1);
        assert_eq!(set.len(), 3);
        assert!(set.iter().all(|b| b.instance.n() <= 9));
        assert!(set.iter().all(|b| b.penalty > 0));
    }

    #[test]
    fn full_qap_set_matches_paper_sizes_and_penalties() {
        let set = qap_set(true, 1);
        assert_eq!(set[0].instance.n(), 20);
        assert_eq!(set[0].penalty, 200_000);
        assert_eq!(set[1].instance.n(), 30);
        assert_eq!(set[2].penalty, 1_000);
    }

    #[test]
    fn qasp_set_covers_three_resolutions() {
        let set = qasp_set(false, 1);
        let res: Vec<i64> = set.iter().map(|b| b.instance.resolution).collect();
        assert_eq!(res, vec![1, 16, 256]);
        assert!(set.iter().all(|b| b.instance.n() == 1_000));
    }
}
