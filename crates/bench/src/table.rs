//! Aligned ASCII table rendering for the table-reproduction binaries.

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
                if c + 1 < ncols {
                    line.push_str("  ");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // the value column starts at the same offset in every row
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
        assert_eq!(lines[3].find("22").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn len_tracks_rows() {
        let mut t = Table::new(vec!["x"]);
        assert!(t.is_empty());
        t.row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }
}
