//! End-to-end tests of the suite runner, the `BENCH_*.json` schema, and
//! the baseline gate — at `SuiteMode::Test` scale so a debug-profile run
//! stays in seconds while exercising exactly the smoke/full code path.

use dabs_bench::baseline::compare;
use dabs_bench::report::SuiteReport;
use dabs_bench::suite::{run_suite, Family, SuiteConfig, SuiteMode};
use std::path::PathBuf;
use std::process::{Command, Output};

fn test_cfg(seed: u64) -> SuiteConfig {
    SuiteConfig {
        mode: SuiteMode::Test,
        seed,
        filter: None,
        verbose: false,
    }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dabs_suite_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

fn suite_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_suite"))
        .args(args)
        .output()
        .expect("failed to spawn the suite binary")
}

#[test]
fn golden_fixed_seed_run_round_trips_and_validates() {
    // A fixed-seed run, through the real binary, producing a real file.
    let out_path = tmp("golden.json");
    let out = suite_bin(&[
        "--mode",
        "test",
        "--seed",
        "7",
        "--out",
        out_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "suite run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Round-trip through the shims/serde json module.
    let text = std::fs::read_to_string(&out_path).expect("report written");
    let report = SuiteReport::from_json_str(&text).expect("parses back");
    let rewritten = report.to_json_string();
    let reparsed = SuiteReport::from_json_str(&rewritten).expect("reparses");
    assert_eq!(reparsed, report, "serialize → parse must be a fixed point");

    // Schema: every metric has a unit, timestamps are monotone, and every
    // family has a non-empty entry.
    report
        .validate_coverage(&Family::ALL)
        .expect("schema-valid with full family coverage");
    assert_eq!(report.mode, SuiteMode::Test);
    assert_eq!(report.seed, 7);
    assert!(report.wall_ms > 0);
    for entry in &report.entries {
        for m in entry.metrics.iter() {
            assert!(!m.unit.is_empty(), "{}.{} lacks a unit", entry.name, m.name);
        }
    }
}

#[test]
fn same_seed_runs_emit_identical_deterministic_metrics() {
    let a = run_suite(&test_cfg(3));
    let b = run_suite(&test_cfg(3));
    let mut checked = 0usize;
    for ea in &a.entries {
        let eb = b.entry(&ea.name).expect("same entries");
        for ma in ea.metrics.iter().filter(|m| m.deterministic) {
            let mb = eb
                .metrics
                .get(&ma.name)
                .unwrap_or_else(|| panic!("{}/{} missing from second run", ea.name, ma.name));
            assert!(
                ma.value == mb.value,
                "{}/{}: {} vs {} — deterministic metrics must reproduce bit-for-bit",
                ea.name,
                ma.name,
                ma.value,
                mb.value
            );
            checked += 1;
        }
    }
    assert!(
        checked >= 40,
        "expected a substantial deterministic surface, found {checked} metrics"
    );
    // And the gate agrees on that surface: comparing the two runs with the
    // wall-clock metrics stripped must pass. (Timing metrics are exempt by
    // design — at Test scale they measure box contention, not the code —
    // which is also why the entries leave them ungated in this mode.)
    let outcome = compare(&det_only(&a), &det_only(&b), 1.0).expect("comparable");
    assert!(outcome.passed(), "{}", outcome.render());
}

/// A copy of the report keeping only deterministic metrics.
fn det_only(r: &SuiteReport) -> SuiteReport {
    let mut out = r.clone();
    for e in &mut out.entries {
        let mut kept = dabs_core::MetricSet::new();
        for m in e.metrics.iter().filter(|m| m.deterministic) {
            kept.push(m.clone());
        }
        e.metrics = kept;
    }
    out
}

#[test]
fn different_seed_changes_the_workload() {
    let a = run_suite(&test_cfg(3));
    let c = run_suite(&test_cfg(4));
    // Guard against a scenario accidentally ignoring the seed: at least one
    // deterministic energy must differ between seeds.
    let differs = a.entries.iter().any(|ea| {
        c.entry(&ea.name).is_some_and(|ec| {
            ea.metrics.iter().filter(|m| m.deterministic).any(|ma| {
                ec.metrics
                    .get(&ma.name)
                    .is_some_and(|mc| mc.value != ma.value)
            })
        })
    });
    assert!(differs, "seed had no effect on any deterministic metric");
    // ...and the comparator refuses cross-seed comparisons.
    assert!(compare(&a, &c, 1.0).unwrap_err().contains("seed"));
}

#[test]
fn compare_rejects_doctored_baseline_with_inflated_metrics() {
    // Produce an honest candidate, then doctor a baseline from it by
    // inflating every gated metric in its better direction. The gate must
    // fail (exit 1) — this is the acceptance test for the CI regression
    // check.
    let honest_path = tmp("honest.json");
    let doctored_path = tmp("doctored.json");
    let out = suite_bin(&[
        "--mode",
        "test",
        "--seed",
        "11",
        "--out",
        honest_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let honest = SuiteReport::read_file(&honest_path).expect("readable");
    let mut doctored = honest.clone();
    for entry in &mut doctored.entries {
        let mut inflated = dabs_core::MetricSet::new();
        for m in entry.metrics.clone() {
            let mut m2 = m.clone();
            if m.gate {
                m2.value = match m.direction {
                    dabs_core::Direction::HigherIsBetter => m.value.abs() * 10.0 + 100.0,
                    dabs_core::Direction::LowerIsBetter => -(m.value.abs() * 10.0 + 100.0),
                };
            }
            inflated.push(m2);
        }
        entry.metrics = inflated;
    }
    doctored.write_file(&doctored_path).expect("writable");

    let out = suite_bin(&[
        "compare",
        "--baseline",
        doctored_path.to_str().unwrap(),
        "--candidate",
        honest_path.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "doctored baseline must trip the gate: stdout {} stderr {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSION"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");

    // Sanity: the honest file compared against itself passes (exit 0).
    let out = suite_bin(&[
        "compare",
        "--baseline",
        honest_path.to_str().unwrap(),
        "--candidate",
        honest_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));
}

#[test]
fn compare_usage_and_io_errors_exit_2() {
    let out = suite_bin(&["compare"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing --baseline is usage error"
    );
    let out = suite_bin(&["compare", "--baseline", "/nonexistent/x.json"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unreadable baseline is an I/O error"
    );
    let out = suite_bin(&["frobnicate"]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "unknown subcommand is usage error"
    );
    let out = suite_bin(&["--mode", "nope"]);
    assert_eq!(out.status.code(), Some(2), "unknown mode is usage error");
}

#[test]
fn corrupted_report_file_fails_validation_at_compare_time() {
    let path = tmp("corrupt.json");
    let cfg = test_cfg(5);
    let report = run_suite(&cfg);
    // Drop the unit of one metric by textual surgery: the file parses as
    // JSON but must fail schema validation inside `compare`.
    let text = report
        .to_json_string()
        .replacen("\"unit\":\"count\"", "\"unit\":\"\"", 1);
    std::fs::write(&path, &text).unwrap();
    let out = suite_bin(&[
        "compare",
        "--baseline",
        path.to_str().unwrap(),
        "--candidate",
        path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("schema"));
}
