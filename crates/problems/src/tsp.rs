//! TSP → QAP reduction (paper §II-B remark).
//!
//! "The QAP is harder than the Traveling Salesperson Problem because the TSP
//! can be solved by a QAP algorithm by setting a circular logistic flow of
//! the facilities." A tour visiting all cities once is an assignment of
//! *tour positions* (facilities) to *cities* (locations) where the flow
//! matrix is the directed cycle `0 → 1 → … → n−1 → 0` and distances are the
//! city distances; the QAP cost is then exactly the tour length.

use crate::qap::QapInstance;
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};
use serde::{Deserialize, Serialize};

/// A TSP instance: a symmetric distance matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TspInstance {
    n: usize,
    /// Row-major distances.
    dist: Vec<i64>,
    pub name: String,
}

impl TspInstance {
    /// Build from a row-major distance matrix (diagonal zeroed).
    pub fn new(n: usize, mut dist: Vec<i64>, name: impl Into<String>) -> Self {
        assert!(n >= 3, "TSP needs at least three cities");
        assert_eq!(dist.len(), n * n);
        for i in 0..n {
            dist[i * n + i] = 0;
        }
        Self {
            n,
            dist,
            name: name.into(),
        }
    }

    /// Random Euclidean-ish instance: cities on an `L×L` integer grid with
    /// rounded Euclidean distances.
    pub fn random_euclidean(n: usize, grid: i64, seed: u64) -> Self {
        let mut rng = Xorshift64Star::new(SplitMix64::new(seed ^ 0x757).next_u64());
        let pts: Vec<(i64, i64)> = (0..n)
            .map(|_| (rng.next_range_i64(0, grid), rng.next_range_i64(0, grid)))
            .collect();
        let mut dist = vec![0i64; n * n];
        for i in 0..n {
            for j in 0..n {
                let dx = (pts[i].0 - pts[j].0) as f64;
                let dy = (pts[i].1 - pts[j].1) as f64;
                dist[i * n + j] = (dx * dx + dy * dy).sqrt().round() as i64;
            }
        }
        Self::new(n, dist, format!("tsp{n}-euclid(seed={seed})"))
    }

    /// Number of cities.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between cities `a` and `b`.
    pub fn dist(&self, a: usize, b: usize) -> i64 {
        self.dist[a * self.n + b]
    }

    /// Length of a tour given as a city sequence (cyclic).
    pub fn tour_length(&self, tour: &[usize]) -> i64 {
        assert_eq!(tour.len(), self.n, "tour must visit every city once");
        let mut len = 0i64;
        for k in 0..self.n {
            len += self.dist(tour[k], tour[(k + 1) % self.n]);
        }
        len
    }

    /// Reduce to a QAP: facility `k` = tour position `k`, flow is the
    /// directed cycle, locations are cities. `QapInstance::cost(g)` of an
    /// assignment `g` (position → city) equals `tour_length` of the tour
    /// `g` read in position order.
    pub fn to_qap(&self) -> QapInstance {
        let n = self.n;
        let mut flow = vec![0i64; n * n];
        for k in 0..n {
            flow[k * n + (k + 1) % n] = 1;
        }
        QapInstance::new(n, flow, self.dist.clone(), format!("{}→QAP", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::random_permutation;

    fn square() -> TspInstance {
        // 4 cities on a unit square (scaled by 10): optimal tour = perimeter 40.
        let d = |a: (i64, i64), b: (i64, i64)| {
            let dx = (a.0 - b.0) as f64;
            let dy = (a.1 - b.1) as f64;
            (dx * dx + dy * dy).sqrt().round() as i64
        };
        let pts = [(0, 0), (10, 0), (10, 10), (0, 10)];
        let mut dist = vec![0i64; 16];
        for i in 0..4 {
            for j in 0..4 {
                dist[i * 4 + j] = d(pts[i], pts[j]);
            }
        }
        TspInstance::new(4, dist, "square")
    }

    #[test]
    fn tour_length_by_hand() {
        let t = square();
        assert_eq!(t.tour_length(&[0, 1, 2, 3]), 40);
        // crossing tour is longer: 0→2→1→3 = 14+14+14+14 = 56... compute:
        // d(0,2)=14, d(2,1)=10, d(1,3)=14, d(3,0)=10 → 48
        assert_eq!(t.tour_length(&[0, 2, 1, 3]), 48);
    }

    #[test]
    fn qap_cost_equals_tour_length() {
        let t = TspInstance::random_euclidean(7, 100, 3);
        let qap = t.to_qap();
        let mut rng = Xorshift64Star::new(4);
        for _ in 0..20 {
            let tour = random_permutation(7, &mut rng);
            assert_eq!(qap.cost(&tour), t.tour_length(&tour));
        }
    }

    #[test]
    fn qap_reduction_finds_optimal_square_tour() {
        // Brute-force the 4! assignments of the reduced QAP; optimum = 40.
        let t = square();
        let qap = t.to_qap();
        let mut best = i64::MAX;
        let perms = permutations(4);
        for g in &perms {
            best = best.min(qap.cost(g));
        }
        assert_eq!(best, 40);
    }

    #[test]
    fn euclidean_instances_are_symmetric_metric() {
        let t = TspInstance::random_euclidean(10, 50, 5);
        for a in 0..10 {
            assert_eq!(t.dist(a, a), 0);
            for b in 0..10 {
                assert_eq!(t.dist(a, b), t.dist(b, a));
            }
        }
    }

    fn permutations(n: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut cur: Vec<usize> = (0..n).collect();
        heap_permute(&mut cur, n, &mut out);
        out
    }

    fn heap_permute(arr: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == 1 {
            out.push(arr.clone());
            return;
        }
        for i in 0..k {
            heap_permute(arr, k - 1, out);
            if k.is_multiple_of(2) {
                arr.swap(i, k - 1);
            } else {
                arr.swap(0, k - 1);
            }
        }
    }

    use dabs_rng::Xorshift64Star;
}
