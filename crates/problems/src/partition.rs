//! Number partitioning → QUBO.
//!
//! The paper's introduction motivates DABS with "many NP-hard problems can
//! be reduced to QUBO"; number partitioning is the classic smallest
//! example (Lucas 2014, §2.1). Split a multiset of positive integers into
//! two sides with minimal difference of sums. With spins `s_i = σ(x_i)`
//! the difference is `D = Σ a_i s_i`, and minimising `D²` expands to the
//! QUBO below; the optimum energy is `(diff² − (Σa)²) / …` — we keep the
//! exact integer bookkeeping in [`PartitionProblem::difference`].

use dabs_model::{QuboBuilder, QuboModel, Solution};
use serde::{Deserialize, Serialize};

/// A number-partitioning instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionProblem {
    numbers: Vec<i64>,
    pub name: String,
}

impl PartitionProblem {
    /// Build from positive integers.
    pub fn new(numbers: Vec<i64>, name: impl Into<String>) -> Self {
        assert!(!numbers.is_empty(), "need at least one number");
        assert!(numbers.iter().all(|&a| a > 0), "numbers must be positive");
        Self {
            numbers,
            name: name.into(),
        }
    }

    /// The numbers.
    pub fn numbers(&self) -> &[i64] {
        &self.numbers
    }

    /// Count of numbers (= QUBO bits).
    pub fn n(&self) -> usize {
        self.numbers.len()
    }

    /// Total sum `Σ a_i`.
    pub fn total(&self) -> i64 {
        self.numbers.iter().sum()
    }

    /// Signed difference `Σ_{x_i=1} a_i − Σ_{x_i=0} a_i` of a partition.
    pub fn difference(&self, x: &Solution) -> i64 {
        assert_eq!(x.len(), self.n(), "partition length mismatch");
        let ones: i64 = x.iter_ones().map(|i| self.numbers[i]).sum();
        2 * ones - self.total()
    }

    /// Reduce to a QUBO with `E(X) = difference(X)² − (Σa)²`.
    ///
    /// Expansion: `D = 2·Σ a_i x_i − T`, so
    /// `D² − T² = 4·Σ_i a_i(a_i − T)·x_i + 8·Σ_{i<j} a_i a_j x_i x_j`
    /// (using `x² = x`). The constant `−T²` is folded in so a perfect
    /// partition has energy `−T²` and every imbalance costs `D² ≥ 0` more.
    pub fn to_qubo(&self) -> QuboModel {
        let n = self.n();
        let t = self.total();
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, 4 * self.numbers[i] * (self.numbers[i] - t));
            for j in (i + 1)..n {
                b.add_quadratic(i, j, 8 * self.numbers[i] * self.numbers[j]);
            }
        }
        b.build().expect("valid by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::{Rng64, Xorshift64Star};

    #[test]
    fn energy_equals_squared_difference_minus_total_squared() {
        let p = PartitionProblem::new(vec![3, 1, 1, 2, 2, 1], "toy");
        let q = p.to_qubo();
        let t = p.total();
        for v in 0..(1u32 << 6) {
            let bits: Vec<bool> = (0..6).map(|i| (v >> i) & 1 == 1).collect();
            let x = Solution::from_bits(&bits);
            let d = p.difference(&x);
            assert_eq!(q.energy(&x), d * d - t * t, "X = {bits:?}");
        }
    }

    #[test]
    fn perfect_partition_is_the_optimum() {
        // {3,1,1,2,2,1}: total 10 → perfect split 5/5 exists (3+2, 1+1+2+1)
        let p = PartitionProblem::new(vec![3, 1, 1, 2, 2, 1], "toy");
        let q = p.to_qubo();
        let mut best = i64::MAX;
        let mut best_x = Solution::zeros(6);
        for v in 0..(1u32 << 6) {
            let bits: Vec<bool> = (0..6).map(|i| (v >> i) & 1 == 1).collect();
            let x = Solution::from_bits(&bits);
            if q.energy(&x) < best {
                best = q.energy(&x);
                best_x = x;
            }
        }
        assert_eq!(best, -100, "perfect partition energy is −T²");
        assert_eq!(p.difference(&best_x), 0);
    }

    #[test]
    fn odd_total_cannot_balance() {
        let p = PartitionProblem::new(vec![2, 2, 3], "odd");
        let q = p.to_qubo();
        let t = p.total();
        let mut best = i64::MAX;
        for v in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            best = best.min(q.energy(&Solution::from_bits(&bits)));
        }
        // best |D| is 1 → E = 1 − T²
        assert_eq!(best, 1 - t * t);
    }

    #[test]
    fn difference_is_antisymmetric_under_complement() {
        let mut rng = Xorshift64Star::new(501);
        let numbers: Vec<i64> = (0..12).map(|_| rng.next_range_i64(1, 50)).collect();
        let p = PartitionProblem::new(numbers, "rand");
        for _ in 0..10 {
            let x = Solution::random(12, &mut rng);
            let mut y = x.clone();
            for i in 0..12 {
                y.flip(i);
            }
            assert_eq!(p.difference(&x), -p.difference(&y));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_numbers() {
        PartitionProblem::new(vec![1, 0, 2], "bad");
    }
}
