//! Minimum vertex cover → QUBO (Lucas 2014, §4.3).
//!
//! Choose the fewest vertices such that every edge has a chosen endpoint:
//! `E(X) = Σ_i x_i + p·Σ_{(u,v)∈E} (1 − x_u)(1 − x_v)`. With penalty
//! `p > 1` an uncovered edge always costs more than covering it, so the
//! QUBO optimum is a minimum cover of size `E`.

use dabs_model::{QuboBuilder, QuboModel, Solution};
use serde::{Deserialize, Serialize};

/// A minimum-vertex-cover instance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VertexCoverProblem {
    n: usize,
    edges: Vec<(usize, usize)>,
    pub name: String,
}

impl VertexCoverProblem {
    /// Build from an undirected edge list.
    pub fn new(n: usize, edges: Vec<(usize, usize)>, name: impl Into<String>) -> Self {
        assert!(n >= 1);
        for &(u, v) in &edges {
            assert!(u < n && v < n && u != v, "invalid edge ({u},{v})");
        }
        Self {
            n,
            edges,
            name: name.into(),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Is `x` a vertex cover?
    pub fn is_cover(&self, x: &Solution) -> bool {
        assert_eq!(x.len(), self.n);
        self.edges.iter().all(|&(u, v)| x.get(u) || x.get(v))
    }

    /// Number of uncovered edges.
    pub fn uncovered(&self, x: &Solution) -> usize {
        self.edges
            .iter()
            .filter(|&&(u, v)| !x.get(u) && !x.get(v))
            .count()
    }

    /// Reduce to a QUBO with penalty `p ≥ 2`:
    /// `E(X) = |X| + p·#uncovered(X) − p·|E| + …` — concretely, expanding
    /// `(1 − x_u)(1 − x_v) = 1 − x_u − x_v + x_u x_v` and dropping the
    /// constant `p·|E|`, so `E(X) = Σ x_i − p·Σ(x_u + x_v − x_u x_v)`.
    /// For covers, `E(X) = |X| − p·|E|`.
    pub fn to_qubo(&self, p: i64) -> QuboModel {
        assert!(p >= 2, "penalty must be ≥ 2 to dominate the size term");
        let mut b = QuboBuilder::new(self.n);
        for i in 0..self.n {
            b.add_linear(i, 1);
        }
        for &(u, v) in &self.edges {
            b.add_linear(u, -p);
            b.add_linear(v, -p);
            b.add_quadratic(u, v, p);
        }
        b.build().expect("valid by construction")
    }

    /// The constant dropped by [`Self::to_qubo`]: for a cover `X`,
    /// `E(X) = |X| − p·|E|`, i.e. cover size = `E(X) + p·|E|`.
    pub fn cover_size_of_energy(&self, energy: i64, p: i64) -> i64 {
        energy + p * self.edges.len() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> VertexCoverProblem {
        // star K_{1,4}: centre 0; minimum cover = {0}, size 1
        VertexCoverProblem::new(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)], "star")
    }

    #[test]
    fn cover_detection() {
        let p = star();
        let centre = Solution::from_bitstring("10000");
        assert!(p.is_cover(&centre));
        assert_eq!(p.uncovered(&centre), 0);
        let leaves = Solution::from_bitstring("01111");
        assert!(p.is_cover(&leaves));
        let nothing = Solution::zeros(5);
        assert!(!p.is_cover(&nothing));
        assert_eq!(p.uncovered(&nothing), 4);
    }

    #[test]
    fn qubo_energy_formula_for_covers() {
        let p = star();
        let q = p.to_qubo(3);
        // cover {0}: E = 1 − 3·4 = −11
        assert_eq!(q.energy(&Solution::from_bitstring("10000")), -11);
        // cover {1,2,3,4}: E = 4 − 12 = −8
        assert_eq!(q.energy(&Solution::from_bitstring("01111")), -8);
    }

    #[test]
    fn optimum_is_the_minimum_cover() {
        let p = star();
        let penalty = 3;
        let q = p.to_qubo(penalty);
        let mut best = i64::MAX;
        let mut best_x = Solution::zeros(5);
        for v in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            let x = Solution::from_bits(&bits);
            if q.energy(&x) < best {
                best = q.energy(&x);
                best_x = x;
            }
        }
        assert!(p.is_cover(&best_x), "optimum must cover");
        assert_eq!(best_x.count_ones(), 1, "minimum cover is the centre");
        assert_eq!(p.cover_size_of_energy(best, penalty), 1);
    }

    #[test]
    fn triangle_needs_two() {
        let p = VertexCoverProblem::new(3, vec![(0, 1), (1, 2), (0, 2)], "K3");
        let q = p.to_qubo(2);
        let mut best = i64::MAX;
        let mut best_x = Solution::zeros(3);
        for v in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            let x = Solution::from_bits(&bits);
            if q.energy(&x) < best {
                best = q.energy(&x);
                best_x = x;
            }
        }
        assert!(p.is_cover(&best_x));
        assert_eq!(best_x.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "penalty must be ≥ 2")]
    fn rejects_weak_penalty() {
        star().to_qubo(1);
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn rejects_bad_edges() {
        VertexCoverProblem::new(2, vec![(0, 2)], "bad");
    }
}
