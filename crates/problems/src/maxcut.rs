//! MaxCut and its QUBO reduction (paper §II-A).
//!
//! Given a weighted undirected graph, find a bipartition `(S, S̄)` maximising
//! the total weight of crossing edges. Per edge `{i, j}` of weight `w` the
//! reduction emits `w·(2 x_i x_j − x_i − x_j)`, which evaluates to `−w` when
//! the edge is cut and `0` otherwise, so `E(X) = −cut(X)` and minimising the
//! QUBO maximises the cut.

use dabs_model::{ModelError, QuboBuilder, QuboModel, Solution};
use serde::{Deserialize, Serialize};

/// A MaxCut problem instance: a weighted undirected graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaxCutProblem {
    n: usize,
    edges: Vec<(usize, usize, i64)>,
    /// Optional instance label, e.g. "K2000-like(seed=1)".
    pub name: String,
}

impl MaxCutProblem {
    /// Build from an edge list. Edge endpoints must be distinct and in
    /// range; duplicates are allowed (weights accumulate in the QUBO).
    pub fn new(
        n: usize,
        edges: Vec<(usize, usize, i64)>,
        name: impl Into<String>,
    ) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::Empty);
        }
        for &(i, j, _) in &edges {
            if i >= n {
                return Err(ModelError::NodeOutOfRange { node: i, n });
            }
            if j >= n {
                return Err(ModelError::NodeOutOfRange { node: j, n });
            }
            if i == j {
                return Err(ModelError::SelfLoop { node: i });
            }
        }
        Ok(Self {
            n,
            edges,
            name: name.into(),
        })
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edges.
    pub fn edges(&self) -> &[(usize, usize, i64)] {
        &self.edges
    }

    /// The cut value of a bipartition (`x_i = 1` ⇔ node `i ∈ S`).
    pub fn cut_value(&self, x: &Solution) -> i64 {
        assert_eq!(x.len(), self.n, "partition length mismatch");
        self.edges
            .iter()
            .filter(|&&(i, j, _)| x.get(i) != x.get(j))
            .map(|&(_, _, w)| w)
            .sum()
    }

    /// Reduce to a QUBO model with `E(X) = −cut(X)`.
    pub fn to_qubo(&self) -> QuboModel {
        let mut b = QuboBuilder::new(self.n);
        for &(i, j, w) in &self.edges {
            b.add_maxcut_edge(i, j, w);
        }
        b.build().expect("validated at construction")
    }

    /// Total positive weight — an upper bound on any cut.
    pub fn positive_weight(&self) -> i64 {
        self.edges.iter().map(|&(_, _, w)| w.max(0)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::{Rng64, Xorshift64Star};

    fn petersen_like() -> MaxCutProblem {
        // 5-cycle with unit weights: odd cycle, max cut = 4.
        MaxCutProblem::new(
            5,
            vec![(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 0, 1)],
            "C5",
        )
        .unwrap()
    }

    #[test]
    fn cut_value_by_hand() {
        let p = petersen_like();
        assert_eq!(p.cut_value(&Solution::from_bitstring("00000")), 0);
        assert_eq!(p.cut_value(&Solution::from_bitstring("10000")), 2);
        assert_eq!(p.cut_value(&Solution::from_bitstring("10100")), 4);
    }

    #[test]
    fn energy_is_negative_cut_for_every_assignment() {
        let p = petersen_like();
        let q = p.to_qubo();
        for v in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            let x = Solution::from_bits(&bits);
            assert_eq!(q.energy(&x), -p.cut_value(&x));
        }
    }

    #[test]
    fn odd_cycle_optimum() {
        // Max cut of C5 is 4; QUBO optimum must be −4.
        let q = petersen_like().to_qubo();
        let mut best = i64::MAX;
        for v in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| (v >> i) & 1 == 1).collect();
            best = best.min(q.energy(&Solution::from_bits(&bits)));
        }
        assert_eq!(best, -4);
    }

    #[test]
    fn negative_weights_supported() {
        // A single negative edge: best cut leaves it uncut (cut value 0).
        let p = MaxCutProblem::new(2, vec![(0, 1, -3)], "neg").unwrap();
        let q = p.to_qubo();
        assert_eq!(q.energy(&Solution::from_bitstring("00")), 0);
        assert_eq!(q.energy(&Solution::from_bitstring("10")), 3);
        assert_eq!(p.cut_value(&Solution::from_bitstring("10")), -3);
    }

    #[test]
    fn random_graph_energy_cut_duality() {
        let mut rng = Xorshift64Star::new(121);
        let n = 30;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(0.2) {
                    edges.push((i, j, if rng.next_bool(0.5) { 1 } else { -1 }));
                }
            }
        }
        let p = MaxCutProblem::new(n, edges, "rand").unwrap();
        let q = p.to_qubo();
        for _ in 0..25 {
            let x = Solution::random(n, &mut rng);
            assert_eq!(q.energy(&x), -p.cut_value(&x));
        }
    }

    #[test]
    fn complement_has_same_cut() {
        // Cut is symmetric under complementing the partition.
        let p = petersen_like();
        let mut rng = Xorshift64Star::new(122);
        for _ in 0..10 {
            let x = Solution::random(5, &mut rng);
            let mut y = x.clone();
            for i in 0..5 {
                y.flip(i);
            }
            assert_eq!(p.cut_value(&x), p.cut_value(&y));
        }
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(MaxCutProblem::new(3, vec![(0, 3, 1)], "bad").is_err());
        assert!(MaxCutProblem::new(3, vec![(1, 1, 1)], "loop").is_err());
        assert!(MaxCutProblem::new(0, vec![], "empty").is_err());
    }

    #[test]
    fn positive_weight_upper_bounds_cut() {
        let p = petersen_like();
        let ub = p.positive_weight();
        let mut rng = Xorshift64Star::new(123);
        for _ in 0..20 {
            assert!(p.cut_value(&Solution::random(5, &mut rng)) <= ub);
        }
    }
}
