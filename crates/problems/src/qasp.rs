//! The Quantum Annealer Simulation Problem (paper §II-C).
//!
//! A QASP instance with resolution `r` is a random Ising model on an
//! annealer working graph where every interaction `J_ij` is drawn uniformly
//! from the non-zero integers in `[−r, r]` and every bias `h_i` from the
//! non-zero integers in `[−4r, 4r]` (the Advantage coupler/bias ranges
//! scaled to resolution `r`). The model is then converted to a QUBO for the
//! solvers; the Ising Hamiltonian of any answer is recoverable through the
//! stored offset.

use crate::topology::Topology;
use dabs_model::{IsingModel, QuboModel, Solution};
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};
use serde::{Deserialize, Serialize};

/// A generated QASP instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QaspInstance {
    /// The underlying random Ising model.
    ising: IsingModel,
    /// The equivalent QUBO model.
    qubo: QuboModel,
    /// `H(S) = E(X) + offset` for every assignment.
    offset: i64,
    /// The generation resolution `r`.
    pub resolution: i64,
    /// Instance label.
    pub name: String,
}

impl QaspInstance {
    /// Generate a random QASP of resolution `r ≥ 1` on `topology`.
    pub fn generate(topology: &Topology, resolution: i64, seed: u64) -> Self {
        assert!(resolution >= 1, "resolution must be at least 1");
        let mut rng = Xorshift64Star::new(SplitMix64::new(seed ^ 0x9A5).next_u64());
        let edges: Vec<(usize, usize, i64)> = topology
            .edges()
            .iter()
            .map(|&(a, b)| (a, b, nonzero_uniform(&mut rng, resolution)))
            .collect();
        let biases: Vec<i64> = (0..topology.n())
            .map(|_| nonzero_uniform(&mut rng, 4 * resolution))
            .collect();
        let ising = IsingModel::new(topology.n(), &edges, biases).expect("topology is valid");
        let (qubo, offset) = ising.to_qubo();
        Self {
            ising,
            qubo,
            offset,
            resolution,
            name: format!("QASP{resolution}({}, seed={seed})", topology.name),
        }
    }

    /// Number of spins/bits.
    pub fn n(&self) -> usize {
        self.ising.n()
    }

    /// The Ising view.
    pub fn ising(&self) -> &IsingModel {
        &self.ising
    }

    /// The QUBO view (what the solvers minimise).
    pub fn qubo(&self) -> &QuboModel {
        &self.qubo
    }

    /// Conversion offset: `H(S) = E(X) + offset`.
    pub fn offset(&self) -> i64 {
        self.offset
    }

    /// Hamiltonian of a QUBO solution (through the conversion identity).
    pub fn hamiltonian_of(&self, x: &Solution) -> i64 {
        self.qubo.energy(x) + self.offset
    }
}

/// Uniform non-zero integer in `[−bound, bound]`.
fn nonzero_uniform<R: Rng64>(rng: &mut R, bound: i64) -> i64 {
    debug_assert!(bound >= 1);
    // 2·bound non-zero values; map [0, 2b) skipping zero.
    let v = rng.next_below(2 * bound as u64) as i64 - bound;
    if v >= 0 {
        v + 1
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_topology() -> Topology {
        Topology::chimera(3, 3, 4)
    }

    #[test]
    fn couplings_and_biases_in_range_and_nonzero() {
        for r in [1i64, 16, 256] {
            let q = QaspInstance::generate(&small_topology(), r, 42);
            let ising = q.ising();
            for (i, j) in small_topology().edges().iter().copied() {
                let jij = ising.coupling(i, j);
                assert!(jij != 0 && jij.abs() <= r, "J({i},{j}) = {jij} for r = {r}");
            }
            for i in 0..ising.n() {
                let h = ising.bias(i);
                assert!(h != 0 && h.abs() <= 4 * r, "h({i}) = {h} for r = {r}");
            }
        }
    }

    #[test]
    fn resolution_one_alphabet() {
        // r = 1: J ∈ {−1, +1}, h ∈ {−4..−1, 1..4}.
        let q = QaspInstance::generate(&small_topology(), 1, 7);
        let ising = q.ising();
        let mut j_vals = std::collections::HashSet::new();
        for &(a, b) in small_topology().edges() {
            j_vals.insert(ising.coupling(a, b));
        }
        assert!(j_vals.is_subset(&[-1i64, 1].into_iter().collect()));
        assert_eq!(j_vals.len(), 2, "both signs should occur");
    }

    #[test]
    fn hamiltonian_identity_holds() {
        let q = QaspInstance::generate(&small_topology(), 16, 3);
        let mut rng = Xorshift64Star::new(5);
        for _ in 0..20 {
            let x = Solution::random(q.n(), &mut rng);
            assert_eq!(q.ising().hamiltonian(&x), q.hamiltonian_of(&x));
            assert_eq!(q.hamiltonian_of(&x), q.qubo().energy(&x) + q.offset());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t = small_topology();
        let a = QaspInstance::generate(&t, 16, 9);
        let b = QaspInstance::generate(&t, 16, 9);
        assert_eq!(a.ising(), b.ising());
        let c = QaspInstance::generate(&t, 16, 10);
        assert_ne!(a.ising(), c.ising());
    }

    #[test]
    fn nonzero_uniform_covers_alphabet() {
        let mut rng = Xorshift64Star::new(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let v = nonzero_uniform(&mut rng, 2);
            assert!(v != 0 && v.abs() <= 2);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4, "all of −2,−1,1,2 should appear");
    }

    #[test]
    fn qubo_preserves_edge_structure() {
        let t = small_topology();
        let q = QaspInstance::generate(&t, 4, 13);
        assert_eq!(q.qubo().edge_count(), t.edge_count());
        assert_eq!(q.n(), t.n());
    }
}
