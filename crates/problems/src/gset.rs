//! Gset-class MaxCut instance generators (paper §VI-A).
//!
//! The paper benchmarks on three published 2000-node graphs:
//!
//! * **K2000** — random complete graph with ±1 weights,
//! * **G22** (Gset) — sparse random graph, ~19 990 edges, all-+1 weights,
//! * **G39** (Gset) — sparse random graph, ~11 778 edges, ±1 weights.
//!
//! The published files are external data; these seeded generators produce
//! instances with matching node count, edge count and weight alphabet (the
//! hardness-relevant structure). Optimal values are instance-specific —
//! EXPERIMENTS.md compares TTS/gap *shapes*, not the paper's absolute
//! energies.

use crate::maxcut::MaxCutProblem;
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};

/// Which published instance a generated twin mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GsetClass {
    /// Complete graph, ±1 weights (K2000).
    K2000,
    /// Sparse, unit weights (G22: 2000 nodes, 19 990 edges).
    G22,
    /// Sparse, ±1 weights (G39: 2000 nodes, 11 778 edges).
    G39,
}

impl GsetClass {
    /// Published node count.
    pub fn nodes(self) -> usize {
        2000
    }

    /// Published edge count.
    pub fn edges(self) -> usize {
        match self {
            GsetClass::K2000 => 2000 * 1999 / 2,
            GsetClass::G22 => 19_990,
            GsetClass::G39 => 11_778,
        }
    }

    /// Generate a seeded twin at the published size.
    pub fn generate(self, seed: u64) -> MaxCutProblem {
        match self {
            GsetClass::K2000 => k2000_like(self.nodes(), seed),
            GsetClass::G22 => g22_like(self.nodes(), self.edges(), seed),
            GsetClass::G39 => g39_like(self.nodes(), self.edges(), seed),
        }
    }
}

/// Random complete graph with weights drawn uniformly from `{−1, +1}`
/// (the K2000 construction of Tamate et al., at arbitrary `n`).
pub fn k2000_like(n: usize, seed: u64) -> MaxCutProblem {
    let mut rng = Xorshift64Star::new(SplitMix64::new(seed).next_u64());
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j, if rng.next_bool(0.5) { 1 } else { -1 }));
        }
    }
    MaxCutProblem::new(n, edges, format!("K{n}-like(seed={seed})")).unwrap()
}

/// Sparse random graph with `m` distinct edges, all weight +1 (G22 class).
pub fn g22_like(n: usize, m: usize, seed: u64) -> MaxCutProblem {
    let edges = random_edge_set(n, m, seed)
        .into_iter()
        .map(|(i, j)| (i, j, 1))
        .collect();
    MaxCutProblem::new(n, edges, format!("G22-like(n={n},m={m},seed={seed})")).unwrap()
}

/// Sparse random graph with `m` distinct edges, weights ±1 (G39 class).
pub fn g39_like(n: usize, m: usize, seed: u64) -> MaxCutProblem {
    let mut rng = Xorshift64Star::new(SplitMix64::new(seed ^ 0x9E37).next_u64());
    let edges = random_edge_set(n, m, seed)
        .into_iter()
        .map(|(i, j)| (i, j, if rng.next_bool(0.5) { 1 } else { -1 }))
        .collect();
    MaxCutProblem::new(n, edges, format!("G39-like(n={n},m={m},seed={seed})")).unwrap()
}

/// `m` distinct random edges over `n` nodes (rejection sampling on a hash
/// set keyed by the packed pair).
fn random_edge_set(n: usize, m: usize, seed: u64) -> Vec<(usize, usize)> {
    assert!(n >= 2, "need at least two nodes");
    let max_edges = n * (n - 1) / 2;
    assert!(m <= max_edges, "requested {m} edges > maximum {max_edges}");
    let mut rng = Xorshift64Star::new(SplitMix64::new(seed).next_u64());
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let i = rng.next_index(n);
        let j = rng.next_index(n);
        if i == j {
            continue;
        }
        let (a, b) = (i.min(j), i.max(j));
        if seen.insert(((a as u64) << 32) | b as u64) {
            edges.push((a, b));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k2000_like_is_complete_with_pm1_weights() {
        let p = k2000_like(50, 1);
        assert_eq!(p.edge_count(), 50 * 49 / 2);
        assert!(p.edges().iter().all(|&(_, _, w)| w == 1 || w == -1));
        // roughly balanced signs
        let pos = p.edges().iter().filter(|&&(_, _, w)| w == 1).count();
        assert!((400..=825).contains(&pos), "sign balance off: {pos}");
    }

    #[test]
    fn g22_like_has_exact_edge_count_and_unit_weights() {
        let p = g22_like(200, 1999, 2);
        assert_eq!(p.edge_count(), 1999);
        assert!(p.edges().iter().all(|&(_, _, w)| w == 1));
        // no duplicate edges
        let mut set = std::collections::HashSet::new();
        for &(i, j, _) in p.edges() {
            assert!(set.insert((i, j)), "duplicate edge ({i},{j})");
            assert!(i < j);
        }
    }

    #[test]
    fn g39_like_mixes_signs() {
        let p = g39_like(200, 1177, 3);
        assert_eq!(p.edge_count(), 1177);
        let pos = p.edges().iter().filter(|&&(_, _, w)| w == 1).count();
        let neg = p.edge_count() - pos;
        assert!(pos > 100 && neg > 100, "weights should mix: +{pos}/−{neg}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(k2000_like(40, 9).edges(), k2000_like(40, 9).edges());
        assert_ne!(k2000_like(40, 9).edges(), k2000_like(40, 10).edges());
        assert_eq!(g22_like(100, 500, 4).edges(), g22_like(100, 500, 4).edges());
    }

    #[test]
    fn class_published_sizes() {
        assert_eq!(GsetClass::K2000.edges(), 1_999_000);
        assert_eq!(GsetClass::G22.edges(), 19_990);
        assert_eq!(GsetClass::G39.edges(), 11_778);
        for c in [GsetClass::K2000, GsetClass::G22, GsetClass::G39] {
            assert_eq!(c.nodes(), 2000);
        }
    }

    #[test]
    #[should_panic(expected = "edges > maximum")]
    fn rejects_impossible_edge_count() {
        g22_like(10, 100, 5);
    }
}
