//! QAPLIB-class synthetic instance generators (paper §VI-B).
//!
//! The paper evaluates on QAPLIB's tai20a, tho30 and nug30. Those data files
//! are external; per DESIGN.md we generate structural twins:
//!
//! * [`tai_like`] — Taillard's `taiXXa` family: flows and distances drawn
//!   uniformly at random (symmetric, zero diagonal).
//! * [`nug_like`] — Nugent family: locations on a rectangular grid with
//!   Manhattan distances, small random flows.
//! * [`tho_like`] — Thonemann/Bölte family: grid distances with a heavier-
//!   tailed flow distribution (squared uniform), giving the mixed magnitude
//!   structure of tho30.
//!
//! All generators are deterministic per seed and produce symmetric
//! instances, matching the published families' structure.

use crate::qap::QapInstance;
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};

/// Uniform-random symmetric QAP (tai*a class): flows and distances uniform
/// on `[1, 99]`, zero diagonal.
pub fn tai_like(n: usize, seed: u64) -> QapInstance {
    let mut rng = Xorshift64Star::new(SplitMix64::new(seed).next_u64());
    let flow = symmetric_random(n, &mut rng, |r| r.next_range_i64(1, 99));
    let dist = symmetric_random(n, &mut rng, |r| r.next_range_i64(1, 99));
    QapInstance::new(n, flow, dist, format!("tai{n}a-like(seed={seed})"))
}

/// Grid QAP (nug class): locations on a `rows×cols` grid with Manhattan
/// distances; flows uniform on `[0, 10]` with ~35 % zeros.
pub fn nug_like(rows: usize, cols: usize, seed: u64) -> QapInstance {
    let n = rows * cols;
    let mut rng = Xorshift64Star::new(SplitMix64::new(seed ^ 0x4E55).next_u64());
    let dist = grid_manhattan(rows, cols);
    let flow = symmetric_random(n, &mut rng, |r| {
        if r.next_bool(0.35) {
            0
        } else {
            r.next_range_i64(1, 10)
        }
    });
    QapInstance::new(
        n,
        flow,
        dist,
        format!("nug{n}-like({rows}x{cols},seed={seed})"),
    )
}

/// Grid QAP with heavy-tailed flows (tho class): flows are squared uniforms
/// on `[0, 9]²`, so a few large flows dominate.
pub fn tho_like(rows: usize, cols: usize, seed: u64) -> QapInstance {
    let n = rows * cols;
    let mut rng = Xorshift64Star::new(SplitMix64::new(seed ^ 0x7404).next_u64());
    let dist = grid_manhattan(rows, cols);
    let flow = symmetric_random(n, &mut rng, |r| {
        let v = r.next_range_i64(0, 9);
        v * v
    });
    QapInstance::new(
        n,
        flow,
        dist,
        format!("tho{n}-like({rows}x{cols},seed={seed})"),
    )
}

/// Symmetric matrix with zero diagonal, entries from `gen`.
fn symmetric_random<R: Rng64, F: FnMut(&mut R) -> i64>(
    n: usize,
    rng: &mut R,
    mut gen: F,
) -> Vec<i64> {
    let mut m = vec![0i64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = gen(rng);
            m[i * n + j] = v;
            m[j * n + i] = v;
        }
    }
    m
}

/// Manhattan distances between cells of a `rows×cols` grid, row-major.
fn grid_manhattan(rows: usize, cols: usize) -> Vec<i64> {
    let n = rows * cols;
    let mut d = vec![0i64; n * n];
    for a in 0..n {
        let (ra, ca) = (a / cols, a % cols);
        for b in 0..n {
            let (rb, cb) = (b / cols, b % cols);
            d[a * n + b] = (ra as i64 - rb as i64).abs() + (ca as i64 - cb as i64).abs();
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_symmetric_zero_diag(q: &QapInstance) {
        let n = q.n();
        for i in 0..n {
            assert_eq!(q.flow(i, i), 0);
            assert_eq!(q.dist(i, i), 0);
            for j in 0..n {
                assert_eq!(q.flow(i, j), q.flow(j, i));
                assert_eq!(q.dist(i, j), q.dist(j, i));
            }
        }
    }

    #[test]
    fn tai_like_structure() {
        let q = tai_like(12, 7);
        assert_eq!(q.n(), 12);
        assert_symmetric_zero_diag(&q);
        // entries within [1, 99]
        for i in 0..12 {
            for j in 0..12 {
                if i != j {
                    assert!((1..=99).contains(&q.flow(i, j)));
                    assert!((1..=99).contains(&q.dist(i, j)));
                }
            }
        }
    }

    #[test]
    fn nug_like_distances_are_manhattan() {
        let q = nug_like(3, 4, 8);
        assert_eq!(q.n(), 12);
        assert_symmetric_zero_diag(&q);
        // cell 0 = (0,0), cell 5 = (1,1): distance 2
        assert_eq!(q.dist(0, 5), 2);
        // cell 0 to cell 11 = (2,3): 2 + 3 = 5
        assert_eq!(q.dist(0, 11), 5);
        // triangle inequality on the grid metric
        for a in 0..12 {
            for b in 0..12 {
                for c in 0..12 {
                    assert!(q.dist(a, c) <= q.dist(a, b) + q.dist(b, c));
                }
            }
        }
    }

    #[test]
    fn tho_like_has_heavy_tail() {
        let q = tho_like(4, 4, 9);
        assert_symmetric_zero_diag(&q);
        let mut flows: Vec<i64> = Vec::new();
        for i in 0..16 {
            for j in (i + 1)..16 {
                flows.push(q.flow(i, j));
            }
        }
        let max = *flows.iter().max().unwrap();
        let mean = flows.iter().sum::<i64>() as f64 / flows.len() as f64;
        assert!(max as f64 > 2.0 * mean, "squared flows should be skewed");
        assert!(max <= 81);
    }

    #[test]
    fn generators_deterministic() {
        let a = tai_like(10, 3);
        let b = tai_like(10, 3);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(a.flow(i, j), b.flow(i, j));
                assert_eq!(a.dist(i, j), b.dist(i, j));
            }
        }
        let c = tai_like(10, 4);
        let differs = (0..10)
            .flat_map(|i| (0..10).map(move |j| (i, j)))
            .any(|(i, j)| a.flow(i, j) != c.flow(i, j));
        assert!(differs);
    }

    #[test]
    fn paper_sizes_construct() {
        // tai20a (n=20), tho30/nug30 (n=30) — the paper's three instances.
        assert_eq!(tai_like(20, 1).n(), 20);
        assert_eq!(tho_like(5, 6, 1).n(), 30);
        assert_eq!(nug_like(5, 6, 1).n(), 30);
    }
}
