//! The Quadratic Assignment Problem and its QUBO reduction (paper §II-B).
//!
//! Given `n` facilities with flows `l(i, i')` and `n` locations with
//! distances `d(j, j')`, find the assignment `g` minimising
//! `C(g) = Σ_{i,i'} l(i,i')·d(g(i), g(i'))` (ordered sum).
//!
//! The reduction one-hot encodes `g` into `N = n²` bits `x_{⟨i,j⟩}` with
//! `⟨i,j⟩ = i·n + j`, `x_{⟨i,j⟩} = 1 ⇔ g(i) = j`:
//!
//! * diagonal: `−p` on every bit,
//! * same row or same column pair: `+p`,
//! * cross pair `(i,j),(i',j')` with `i≠i'`, `j≠j'`:
//!   `l(i,i')·d(j,j') + l(i',i)·d(j',j)` (both ordered contributions),
//!
//! so `E(X) = C(g_X) − n·p` for every feasible `X`.

use dabs_model::{QuboBuilder, QuboModel, Solution};
use serde::{Deserialize, Serialize};

/// A QAP instance: flow and distance matrices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QapInstance {
    n: usize,
    /// Row-major `n×n` flows; `flow[i*n + i']` is `l(i, i')`.
    flow: Vec<i64>,
    /// Row-major `n×n` distances; `dist[j*n + j']` is `d(j, j')`.
    dist: Vec<i64>,
    /// Instance label, e.g. "tai20a-like(seed=1)".
    pub name: String,
}

impl QapInstance {
    /// Build from row-major matrices. Diagonals are zeroed (self-flow and
    /// self-distance contribute a constant and are conventionally 0).
    pub fn new(n: usize, mut flow: Vec<i64>, mut dist: Vec<i64>, name: impl Into<String>) -> Self {
        assert!(n >= 2, "QAP needs at least two facilities");
        assert_eq!(flow.len(), n * n, "flow matrix must be n×n");
        assert_eq!(dist.len(), n * n, "distance matrix must be n×n");
        for i in 0..n {
            flow[i * n + i] = 0;
            dist[i * n + i] = 0;
        }
        Self {
            n,
            flow,
            dist,
            name: name.into(),
        }
    }

    /// Number of facilities/locations.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Flow `l(i, i')`.
    #[inline]
    pub fn flow(&self, i: usize, i2: usize) -> i64 {
        self.flow[i * self.n + i2]
    }

    /// Distance `d(j, j')`.
    #[inline]
    pub fn dist(&self, j: usize, j2: usize) -> i64 {
        self.dist[j * self.n + j2]
    }

    /// Assignment cost `C(g) = Σ_{i,i'} l(i,i')·d(g(i),g(i'))` (ordered).
    pub fn cost(&self, g: &[usize]) -> i64 {
        assert_eq!(g.len(), self.n, "assignment length mismatch");
        let mut c = 0i64;
        for i in 0..self.n {
            for i2 in 0..self.n {
                c += self.flow(i, i2) * self.dist(g[i], g[i2]);
            }
        }
        c
    }

    /// Index of the QUBO bit for "facility `i` at location `j`".
    #[inline]
    pub fn bit(&self, i: usize, j: usize) -> usize {
        i * self.n + j
    }

    /// A penalty that provably keeps the QUBO optimum feasible:
    /// `p = 1 + max_i Σ_{i'} l(i,i') · max d` bounds the cost impact any
    /// single reassignment can have.
    pub fn auto_penalty(&self) -> i64 {
        let max_d = self.dist.iter().copied().max().unwrap_or(0);
        let max_row_flow = (0..self.n)
            .map(|i| {
                (0..self.n)
                    .map(|i2| self.flow(i, i2).abs() + self.flow(i2, i).abs())
                    .sum::<i64>()
            })
            .max()
            .unwrap_or(0);
        1 + max_row_flow * max_d
    }

    /// Reduce to a QUBO on `n²` bits with penalty `p`.
    /// For feasible `X`, `E(X) = cost(g_X) − n·p`.
    pub fn to_qubo(&self, p: i64) -> QuboModel {
        let n = self.n;
        let mut b = QuboBuilder::new(n * n);
        for i in 0..n {
            for j in 0..n {
                b.add_linear(self.bit(i, j), -p);
            }
        }
        // same-row and same-column conflicts
        for i in 0..n {
            for j in 0..n {
                for j2 in (j + 1)..n {
                    b.add_quadratic(self.bit(i, j), self.bit(i, j2), p);
                }
            }
        }
        for j in 0..n {
            for i in 0..n {
                for i2 in (i + 1)..n {
                    b.add_quadratic(self.bit(i, j), self.bit(i2, j), p);
                }
            }
        }
        // flow·distance cross terms
        for i in 0..n {
            for i2 in (i + 1)..n {
                for j in 0..n {
                    for j2 in 0..n {
                        if j == j2 {
                            continue;
                        }
                        let w = self.flow(i, i2) * self.dist(j, j2)
                            + self.flow(i2, i) * self.dist(j2, j);
                        if w != 0 {
                            b.add_quadratic(self.bit(i, j), self.bit(i2, j2), w);
                        }
                    }
                }
            }
        }
        b.build().expect("valid by construction")
    }

    /// Decode a QUBO solution into an assignment.
    /// Returns `Some(g)` iff `X` is feasible (exactly one bit per row and
    /// per column).
    pub fn decode(&self, x: &Solution) -> Option<Vec<usize>> {
        assert_eq!(x.len(), self.n * self.n, "solution length mismatch");
        let n = self.n;
        let mut g = vec![usize::MAX; n];
        let mut col_used = vec![false; n];
        for (i, gi) in g.iter_mut().enumerate() {
            for (j, used) in col_used.iter_mut().enumerate() {
                if x.get(self.bit(i, j)) {
                    if *gi != usize::MAX || *used {
                        return None; // doubled row or column
                    }
                    *gi = j;
                    *used = true;
                }
            }
            if *gi == usize::MAX {
                return None; // empty row
            }
        }
        Some(g)
    }

    /// Encode an assignment as a one-hot QUBO solution.
    pub fn encode(&self, g: &[usize]) -> Solution {
        assert_eq!(g.len(), self.n);
        let mut x = Solution::zeros(self.n * self.n);
        for (i, &j) in g.iter().enumerate() {
            assert!(j < self.n, "location {j} out of range");
            x.set(self.bit(i, j), true);
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::{random_permutation, Rng64, Xorshift64Star};

    fn tiny() -> QapInstance {
        // n = 3, hand-made flows/distances.
        QapInstance::new(
            3,
            vec![0, 5, 2, 5, 0, 3, 2, 3, 0],
            vec![0, 8, 15, 8, 0, 13, 15, 13, 0],
            "tiny",
        )
    }

    #[test]
    fn cost_by_hand() {
        let q = tiny();
        // identity assignment: C = Σ l(i,i') d(i,i') (ordered)
        // = 2·(5·8 + 2·15 + 3·13) = 2·109 = 218
        assert_eq!(q.cost(&[0, 1, 2]), 218);
        // swap 0,1: g = [1,0,2]: 2·(5·8 + 2·13 + 3·15) = 2·111 = 222
        assert_eq!(q.cost(&[1, 0, 2]), 222);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let q = tiny();
        for g in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let x = q.encode(&g);
            assert_eq!(q.decode(&x).unwrap(), g.to_vec());
        }
    }

    #[test]
    fn decode_rejects_infeasible() {
        let q = tiny();
        // empty
        assert!(q.decode(&Solution::zeros(9)).is_none());
        // doubled row
        let mut x = Solution::zeros(9);
        x.set(q.bit(0, 0), true);
        x.set(q.bit(0, 1), true);
        assert!(q.decode(&x).is_none());
        // doubled column
        let mut x = q.encode(&[0, 1, 2]);
        x.set(q.bit(1, 0), true);
        assert!(q.decode(&x).is_none());
    }

    #[test]
    fn feasible_energy_identity() {
        // E(X) = C(g) − n·p for every permutation (the paper's invariant).
        let q = tiny();
        let p = 10_000;
        let model = q.to_qubo(p);
        let perms = [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        for g in perms {
            let x = q.encode(&g);
            assert_eq!(model.energy(&x), q.cost(&g) - 3 * p, "g = {g:?}");
        }
    }

    #[test]
    fn infeasible_energy_bounded_below() {
        // Paper: E(X) ≥ −(n−1)·p for infeasible X (flows non-negative).
        let q = tiny();
        let p = 10_000;
        let model = q.to_qubo(p);
        let n2 = 9;
        for v in 0..(1u32 << n2) {
            let bits: Vec<bool> = (0..n2).map(|k| (v >> k) & 1 == 1).collect();
            let x = Solution::from_bits(&bits);
            if q.decode(&x).is_none() {
                assert!(
                    model.energy(&x) >= -(2) * p,
                    "infeasible X with E = {} below −(n−1)p",
                    model.energy(&x)
                );
            }
        }
    }

    #[test]
    fn qubo_optimum_is_feasible_and_matches_best_permutation() {
        let q = tiny();
        let p = q.auto_penalty();
        let model = q.to_qubo(p);
        // exhaustive over 2^9 assignments
        let mut best_e = i64::MAX;
        let mut best_x = Solution::zeros(9);
        for v in 0..(1u32 << 9) {
            let bits: Vec<bool> = (0..9).map(|k| (v >> k) & 1 == 1).collect();
            let x = Solution::from_bits(&bits);
            let e = model.energy(&x);
            if e < best_e {
                best_e = e;
                best_x = x;
            }
        }
        let g = q.decode(&best_x).expect("QUBO optimum must be feasible");
        // best permutation by brute force
        let perms = [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let best_cost = perms.iter().map(|g| q.cost(g)).min().unwrap();
        assert_eq!(q.cost(&g), best_cost);
        assert_eq!(best_e, best_cost - 3 * p);
    }

    #[test]
    fn random_instance_feasible_identity() {
        let mut rng = Xorshift64Star::new(131);
        let n = 6;
        let flow: Vec<i64> = (0..n * n).map(|_| rng.next_range_i64(0, 9)).collect();
        let dist: Vec<i64> = (0..n * n).map(|_| rng.next_range_i64(0, 9)).collect();
        let q = QapInstance::new(n, flow, dist, "rand6");
        let p = 5_000;
        let model = q.to_qubo(p);
        for _ in 0..20 {
            let g = random_permutation(n, &mut rng);
            let x = q.encode(&g);
            assert_eq!(model.energy(&x), q.cost(&g) - (n as i64) * p);
        }
    }

    #[test]
    fn auto_penalty_is_positive() {
        assert!(tiny().auto_penalty() > 0);
    }
}
