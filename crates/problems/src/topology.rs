//! Quantum-annealer working-graph topologies (paper §II-C / §VI-C).
//!
//! QASP instances live on the D-Wave Advantage 4.1 working graph: 5 627
//! operable qubits and 40 279 operable couplers of a Pegasus P16 lattice
//! (average degree ≈ 14.3, bounded degree 15, strong spatial locality).
//!
//! Per DESIGN.md we substitute an exactly-sized structural twin:
//!
//! * [`Topology::chimera`] — the exact Chimera `C(m, n, l)` lattice (the
//!   D-Wave 2000Q topology), implemented from its published definition.
//! * [`Topology::pegasus_like`] — a Chimera base augmented with local extra
//!   couplers up to Pegasus-like degree ≈ 15, then trimmed by seeded fault
//!   deletion to hit an exact node/edge budget.
//! * [`Topology::advantage_working_graph`] — the paper's 5 627 / 40 279
//!   budget applied to `pegasus_like`.
//!
//! What QASP tests (resolution sensitivity of a sparse local Ising model)
//! depends on the size/degree/locality profile, not the precise Pegasus
//! coordinate algebra, so the twin preserves the relevant behaviour.

use dabs_rng::{shuffle, Rng64, SplitMix64, Xorshift64Star};
use serde::{Deserialize, Serialize};

/// An undirected simple graph listing each edge once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    n: usize,
    edges: Vec<(usize, usize)>,
    /// Human-readable description.
    pub name: String,
}

impl Topology {
    /// Build from an explicit edge list (deduplicated, `i < j` normalised).
    pub fn new(n: usize, edges: Vec<(usize, usize)>, name: impl Into<String>) -> Self {
        let mut set = std::collections::HashSet::with_capacity(edges.len() * 2);
        let mut out = Vec::with_capacity(edges.len());
        for (a, b) in edges {
            assert!(a < n && b < n && a != b, "invalid edge ({a},{b})");
            let e = (a.min(b), a.max(b));
            if set.insert(e) {
                out.push(e);
            }
        }
        Self {
            n,
            edges: out,
            name: name.into(),
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edges (each once, `i < j`).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Node degrees.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            d[a] += 1;
            d[b] += 1;
        }
        d
    }

    /// The exact Chimera lattice `C(m, n, l)`: an `m×n` grid of `K_{l,l}`
    /// unit cells. Within a cell the `l` "vertical" qubits (u = 0) connect
    /// to all `l` "horizontal" qubits (u = 1); vertical qubits couple to the
    /// same-index vertical qubit of the cell below, horizontal qubits to the
    /// same-index horizontal qubit of the cell to the right.
    pub fn chimera(m: usize, n: usize, l: usize) -> Self {
        assert!(m >= 1 && n >= 1 && l >= 1);
        let id = |i: usize, j: usize, u: usize, k: usize| ((i * n + j) * 2 + u) * l + k;
        let mut edges = Vec::new();
        for i in 0..m {
            for j in 0..n {
                // intra-cell K_{l,l}
                for k0 in 0..l {
                    for k1 in 0..l {
                        edges.push((id(i, j, 0, k0), id(i, j, 1, k1)));
                    }
                }
                // inter-cell couplers
                if i + 1 < m {
                    for k in 0..l {
                        edges.push((id(i, j, 0, k), id(i + 1, j, 0, k)));
                    }
                }
                if j + 1 < n {
                    for k in 0..l {
                        edges.push((id(i, j, 1, k), id(i, j + 1, 1, k)));
                    }
                }
            }
        }
        Self::new(m * n * 2 * l, edges, format!("chimera({m},{n},{l})"))
    }

    /// A Pegasus-degree graph: Chimera base plus seeded local augmentation
    /// edges until the average degree reaches `target_avg_degree`.
    /// Augmentation edges connect nodes within a window of ±(3 cells) of
    /// each other, preserving annealer-style locality.
    pub fn pegasus_like(m: usize, n: usize, target_avg_degree: f64, seed: u64) -> Self {
        let base = Self::chimera(m, n, 4);
        let nn = base.n;
        let window = 8 * n * 3; // three cell-rows of ids
        let target_edges = ((target_avg_degree * nn as f64) / 2.0).round() as usize;
        let mut rng = Xorshift64Star::new(SplitMix64::new(seed).next_u64());
        let mut set: std::collections::HashSet<(usize, usize)> =
            base.edges.iter().copied().collect();
        let mut edges = base.edges.clone();
        let mut attempts = 0usize;
        while edges.len() < target_edges && attempts < target_edges * 100 {
            attempts += 1;
            let a = rng.next_index(nn);
            let off = 1 + rng.next_index(window.min(nn - 1));
            let b = if a + off < nn {
                a + off
            } else {
                a - off.min(a)
            };
            if a == b {
                continue;
            }
            let e = (a.min(b), a.max(b));
            if set.insert(e) {
                edges.push(e);
            }
        }
        Self {
            n: nn,
            edges,
            name: format!("pegasus_like({m},{n},deg={target_avg_degree},seed={seed})"),
        }
    }

    /// Delete nodes (faults) and surplus edges to hit an exact budget:
    /// returns a graph with exactly `target_nodes` nodes (relabelled
    /// contiguously) and at most / exactly `target_edges` edges (exact
    /// whenever enough edges survive the node deletion).
    pub fn with_faults(&self, target_nodes: usize, target_edges: usize, seed: u64) -> Self {
        assert!(target_nodes <= self.n, "cannot grow the graph");
        let mut rng = Xorshift64Star::new(SplitMix64::new(seed ^ 0xFA17).next_u64());
        // choose survivors
        let mut ids: Vec<usize> = (0..self.n).collect();
        shuffle(&mut ids, &mut rng);
        ids.truncate(target_nodes);
        ids.sort_unstable();
        let mut relabel = vec![usize::MAX; self.n];
        for (new, &old) in ids.iter().enumerate() {
            relabel[old] = new;
        }
        let mut edges: Vec<(usize, usize)> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                let (ra, rb) = (relabel[a], relabel[b]);
                (ra != usize::MAX && rb != usize::MAX).then_some((ra.min(rb), ra.max(rb)))
            })
            .collect();
        shuffle(&mut edges, &mut rng);
        edges.truncate(target_edges);
        Self {
            n: target_nodes,
            edges,
            name: format!(
                "{}+faults(n={target_nodes},m={target_edges},seed={seed})",
                self.name
            ),
        }
    }

    /// The paper's D-Wave Advantage 4.1 working-graph budget:
    /// 5 627 nodes, 40 279 edges.
    pub fn advantage_working_graph(seed: u64) -> Self {
        // Chimera(27,27,4) has 5 832 nodes; augment to Pegasus degree ≈ 14.8
        // before deleting faults so the final average degree ≈ 14.3.
        Self::pegasus_like(27, 27, 15.2, seed).with_faults(5_627, 40_279, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chimera_counts() {
        // C(m,n,l): m·n·2l nodes; edges: m·n·l² internal + (m−1)·n·l + m·(n−1)·l
        let t = Topology::chimera(3, 4, 4);
        assert_eq!(t.n(), 3 * 4 * 8);
        let expect = 3 * 4 * 16 + 2 * 4 * 4 + 3 * 3 * 4;
        assert_eq!(t.edge_count(), expect);
    }

    #[test]
    fn chimera_degrees_bounded() {
        // interior qubits have degree l + 2, boundary l + 1
        let t = Topology::chimera(4, 4, 4);
        let deg = t.degrees();
        assert!(deg.iter().all(|&d| d == 5 || d == 6));
        assert_eq!(*deg.iter().max().unwrap(), 6);
    }

    #[test]
    fn chimera_2000q_size() {
        // D-Wave 2000Q: C(16,16,4) = 2048 qubits.
        let t = Topology::chimera(16, 16, 4);
        assert_eq!(t.n(), 2048);
    }

    #[test]
    fn pegasus_like_reaches_target_degree() {
        let t = Topology::pegasus_like(6, 6, 14.0, 1);
        let avg = 2.0 * t.edge_count() as f64 / t.n() as f64;
        assert!(
            (13.0..=14.5).contains(&avg),
            "average degree {avg} out of range"
        );
    }

    #[test]
    fn with_faults_exact_budget() {
        let t = Topology::pegasus_like(6, 6, 14.0, 2);
        let f = t.with_faults(250, 1500, 3);
        assert_eq!(f.n(), 250);
        assert_eq!(f.edge_count(), 1500);
        // all edges in range, no self-loops, no duplicates
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in f.edges() {
            assert!(a < b && b < 250);
            assert!(seen.insert((a, b)));
        }
    }

    #[test]
    fn advantage_working_graph_budget() {
        let t = Topology::advantage_working_graph(1);
        assert_eq!(t.n(), 5_627);
        assert_eq!(t.edge_count(), 40_279);
        let avg = 2.0 * t.edge_count() as f64 / t.n() as f64;
        assert!((14.0..=14.6).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn topologies_deterministic_per_seed() {
        let a = Topology::pegasus_like(4, 4, 12.0, 7);
        let b = Topology::pegasus_like(4, 4, 12.0, 7);
        assert_eq!(a, b);
        let c = Topology::pegasus_like(4, 4, 12.0, 8);
        assert_ne!(a.edges(), c.edges());
    }

    #[test]
    fn new_deduplicates_and_normalises() {
        let t = Topology::new(4, vec![(2, 1), (1, 2), (0, 3)], "t");
        assert_eq!(t.edge_count(), 2);
        assert!(t.edges().contains(&(1, 2)));
    }

    #[test]
    #[should_panic(expected = "invalid edge")]
    fn new_rejects_self_loop() {
        Topology::new(4, vec![(1, 1)], "bad");
    }
}
