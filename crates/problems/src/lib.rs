//! Benchmark problems and their QUBO reductions (paper §II).
//!
//! Three problem families drive the paper's evaluation:
//!
//! * **MaxCut** ([`maxcut`], [`gset`]) — node bipartition maximising the
//!   crossing weight; reduced edge-by-edge with the gadget
//!   `w·(2 x_i x_j − x_i − x_j)` so that `E(X) = −cut(X)`.
//! * **QAP** ([`qap`], [`qaplib`]) — facility/location assignment; one-hot
//!   encoded into `n²` bits with penalty `p`, so that
//!   `E(X) = C(g_X) − n·p` for feasible assignments.
//! * **QASP** ([`qasp`], [`topology`]) — random resolution-`r` Ising models
//!   on a quantum-annealer working graph, converted Ising→QUBO.
//!
//! The published instance files (Gset, QAPLIB, the D-Wave Advantage working
//! graph) are external data we do not ship; seeded generators with matching
//! size, density and weight structure stand in for them (see DESIGN.md's
//! substitution table). [`tsp`] adds the paper's §II-B remark that TSP
//! reduces to QAP; [`partition`] and [`vertexcover`] are two further
//! classic reductions backing the introduction's "many NP-hard problems
//! can be reduced to QUBO".

pub mod gset;
pub mod maxcut;
pub mod partition;
pub mod qap;
pub mod qaplib;
pub mod qasp;
pub mod topology;
pub mod tsp;
pub mod vertexcover;

pub use gset::{g22_like, g39_like, k2000_like, GsetClass};
pub use maxcut::MaxCutProblem;
pub use partition::PartitionProblem;
pub use qap::QapInstance;
pub use qasp::QaspInstance;
pub use topology::Topology;
pub use tsp::TspInstance;
pub use vertexcover::VertexCoverProblem;
