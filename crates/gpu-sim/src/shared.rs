//! Device-wide shared state: the `atomicMin` best-energy register and the
//! cooperative stop flag.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// Lock-free monotone-minimum energy register.
///
/// The paper keeps `E(BEST)` in shared memory and updates it with CUDA
/// `atomicMin`, arguing updates are rare so contention is negligible; a
/// relaxed `fetch_min` gives the same semantics here.
#[derive(Debug)]
pub struct SharedBest {
    energy: AtomicI64,
}

impl SharedBest {
    /// Start at `+∞` (`i64::MAX`).
    pub fn new() -> Self {
        Self {
            energy: AtomicI64::new(i64::MAX),
        }
    }

    /// Record `e`; returns `true` when `e` strictly improved the register.
    #[inline]
    pub fn update(&self, e: i64) -> bool {
        self.energy.fetch_min(e, Ordering::Relaxed) > e
    }

    /// Current best energy (`i64::MAX` when nothing recorded yet).
    #[inline]
    pub fn get(&self) -> i64 {
        self.energy.load(Ordering::Relaxed)
    }

    /// Min-merge a bulk leg's per-lane energies: one `fetch_min` with the
    /// lane minimum instead of one per lane. Returns `true` when the
    /// register strictly improved; `false` on an empty slice.
    #[inline]
    pub fn merge_lanes(&self, lane_energies: &[i64]) -> bool {
        match lane_energies.iter().min() {
            Some(&e) => self.update(e),
            None => false,
        }
    }
}

impl Default for SharedBest {
    fn default() -> Self {
        Self::new()
    }
}

/// Cooperative termination flag checked by every block between batches.
#[derive(Debug, Default)]
pub struct StopFlag {
    flag: AtomicBool,
}

impl StopFlag {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request termination.
    #[inline]
    pub fn stop(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has termination been requested?
    #[inline]
    pub fn is_stopped(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shared_best_monotone() {
        let b = SharedBest::new();
        assert_eq!(b.get(), i64::MAX);
        assert!(b.update(10));
        assert!(!b.update(10), "equal value is not an improvement");
        assert!(!b.update(11), "worse value is not an improvement");
        assert!(b.update(-5));
        assert_eq!(b.get(), -5);
    }

    #[test]
    fn shared_best_concurrent_minimum() {
        let b = Arc::new(SharedBest::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for v in 0..1000i64 {
                        b.update(v - t * 100);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.get(), -700);
    }

    #[test]
    fn merge_lanes_takes_the_minimum() {
        let b = SharedBest::new();
        assert!(!b.merge_lanes(&[]), "empty lane set is a no-op");
        assert_eq!(b.get(), i64::MAX);
        assert!(b.merge_lanes(&[5, -3, 8]));
        assert_eq!(b.get(), -3);
        assert!(!b.merge_lanes(&[0, -3]), "no strict improvement");
        assert!(b.merge_lanes(&[-10, 99]));
        assert_eq!(b.get(), -10);
    }

    #[test]
    fn stop_flag_transitions_once() {
        let f = StopFlag::new();
        assert!(!f.is_stopped());
        f.stop();
        assert!(f.is_stopped());
        f.stop(); // idempotent
        assert!(f.is_stopped());
    }
}
