//! Per-device execution counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Flip/batch throughput counters, updated by block threads and read by the
/// host (all relaxed: they are monotone counters used for reporting only).
#[derive(Debug, Default)]
pub struct DeviceStats {
    batches: AtomicU64,
    flips: AtomicU64,
    improvements: AtomicU64,
}

impl DeviceStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed batch of `flips` flips; `improved` marks whether
    /// it improved the device-wide best.
    pub fn record_batch(&self, flips: u64, improved: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.flips.fetch_add(flips, Ordering::Relaxed);
        if improved {
            self.improvements.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Batches completed so far.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Total flips performed so far.
    pub fn flips(&self) -> u64 {
        self.flips.load(Ordering::Relaxed)
    }

    /// Batches that improved the device-wide best.
    pub fn improvements(&self) -> u64 {
        self.improvements.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = DeviceStats::new();
        s.record_batch(100, true);
        s.record_batch(250, false);
        assert_eq!(s.batches(), 2);
        assert_eq!(s.flips(), 350);
        assert_eq!(s.improvements(), 1);
    }
}
