//! The host↔device packet (paper §III-C, Table I).

use dabs_model::Solution;
use dabs_search::MainAlgorithm;
use serde::{Deserialize, Serialize};

/// A work/result packet.
///
/// Host → device: `solution` is the *target* vector, `energy` is `None`
/// ("void" — the host never computes energies), `algorithm` selects the main
/// search algorithm, and `genetic_op` records which operation generated the
/// target.
///
/// Device → host: `solution` is overwritten with the batch's best vector and
/// `energy` with its value; the algorithm and operation fields are *not*
/// modified, so the host learns which pair produced the solution — the
/// signal driving adaptive selection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Target (inbound) or best-found (outbound) solution vector.
    pub solution: Solution,
    /// `None` inbound; `Some(E)` outbound.
    pub energy: Option<i64>,
    /// Main search algorithm the block must run / did run.
    pub algorithm: MainAlgorithm,
    /// Opaque tag identifying the genetic operation that generated the
    /// target (interpreted only by the host layer in `dabs-core`).
    pub genetic_op: u8,
    /// Per-lane current energies of a bulk (bit-sliced) device leg, one per
    /// resident candidate lane; empty on scalar paths and on requests.
    /// `energy` stays the min — `lane_energies` is the full distribution
    /// for hosts that want more than the winner.
    pub lane_energies: Vec<i64>,
}

impl Packet {
    /// A host→device request packet.
    pub fn request(target: Solution, algorithm: MainAlgorithm, genetic_op: u8) -> Self {
        Self {
            solution: target,
            energy: None,
            algorithm,
            genetic_op,
            lane_energies: Vec::new(),
        }
    }

    /// Turn this request into a result, preserving the bookkeeping fields.
    pub fn into_result(mut self, best: Solution, energy: i64) -> Self {
        self.solution = best;
        self.energy = Some(energy);
        self
    }

    /// Attach the per-lane energies of a bulk device leg.
    pub fn with_lane_energies(mut self, lane_energies: Vec<i64>) -> Self {
        self.lane_energies = lane_energies;
        self
    }

    /// Outbound packets carry an energy; inbound ones do not.
    pub fn is_result(&self) -> bool {
        self.energy.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_has_void_energy() {
        let p = Packet::request(Solution::zeros(8), MainAlgorithm::MaxMin, 3);
        assert!(!p.is_result());
        assert_eq!(p.genetic_op, 3);
    }

    #[test]
    fn result_preserves_bookkeeping_fields() {
        let p = Packet::request(Solution::zeros(8), MainAlgorithm::CyclicMin, 5);
        let r = p.into_result(Solution::ones(8), -42);
        assert!(r.is_result());
        assert_eq!(r.energy, Some(-42));
        assert_eq!(r.algorithm, MainAlgorithm::CyclicMin);
        assert_eq!(r.genetic_op, 5);
        assert_eq!(r.solution, Solution::ones(8));
        assert!(r.lane_energies.is_empty(), "scalar results carry no lanes");
    }

    #[test]
    fn lane_energies_attach_to_bulk_results() {
        let p = Packet::request(Solution::zeros(8), MainAlgorithm::MaxMin, 0);
        let r = p
            .into_result(Solution::ones(8), -7)
            .with_lane_energies(vec![-7, 3, 0]);
        assert_eq!(r.lane_energies, vec![-7, 3, 0]);
        assert_eq!(r.energy, Some(-7));
    }
}
