//! Virtual multi-GPU substrate (paper §V, substituted per DESIGN.md).
//!
//! The paper runs bulk search on eight NVIDIA A100s: each GPU hosts up to
//! 216 CUDA blocks, every block keeps a resident solution vector and
//! repeatedly executes *batch searches* on targets received from the host,
//! returning its best solution when the batch ends. Communication is by
//! packet transfer; the host never computes energies.
//!
//! This crate reproduces that architecture on CPU threads:
//!
//! * [`VirtualDevice`] — one simulated GPU: a set of *block* worker threads
//!   sharing the read-only model (the paper's global-memory `W` matrix).
//! * [`Packet`] — the four-field packet of Table I: solution vector, energy
//!   (void on the way in), main search algorithm, genetic-operation tag.
//! * [`SharedBest`] — the `atomicMin`-style device-wide best energy.
//! * [`DeviceStats`] — flip/batch counters for throughput reporting.
//!
//! Blocks receive work over a bounded channel (the host keeps it fed, as
//! its OpenMP threads do in the paper) and push results back over an
//! unbounded channel. The DABS host layer in `dabs-core` owns the solution
//! pools and the GA; this crate knows nothing about genetic operations —
//! the packet's operation field is an opaque tag it faithfully round-trips.

mod device;
mod packet;
mod shared;
mod stats;

pub use device::{DeviceConfig, DeviceHandle, InlineDevice, VirtualDevice};
pub use packet::Packet;
pub use shared::{SharedBest, StopFlag};
pub use stats::DeviceStats;
