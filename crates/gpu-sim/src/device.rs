//! Virtual devices and their block workers.

use crate::{DeviceStats, Packet, SharedBest, StopFlag};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use dabs_model::{
    CsrKernel, DenseKernel, IncrementalState, KernelKind, QuboKernel, QuboModel, Solution,
};
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};
use dabs_search::{BatchSearch, SearchParams};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of one virtual device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Number of block workers (the paper dispatches 216 CUDA blocks per
    /// A100; on CPU a handful of threads per device is the equivalent).
    pub blocks: usize,
    /// Batch-search flip budgets.
    pub params: SearchParams,
    /// Seed from which every block derives its private RNG stream.
    pub seed: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            blocks: 2,
            params: SearchParams::default(),
            seed: 0xDAB5,
        }
    }
}

/// Handle to a running [`VirtualDevice`]: join it to shut down cleanly.
#[derive(Debug)]
pub struct DeviceHandle {
    workers: Vec<JoinHandle<()>>,
}

impl DeviceHandle {
    /// Wait for every block worker to exit. Workers exit when the stop flag
    /// is raised or the request channel disconnects.
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// One simulated GPU.
pub struct VirtualDevice;

impl VirtualDevice {
    /// Spawn the device's block workers.
    ///
    /// Each block loops: receive a request packet, run a batch search on its
    /// resident state, send back the result packet. `shared` is the
    /// device-wide `atomicMin` best; `stop` ends the loop between batches.
    pub fn spawn(
        model: Arc<QuboModel>,
        config: DeviceConfig,
        requests: Receiver<Packet>,
        results: Sender<Packet>,
        shared: Arc<SharedBest>,
        stop: Arc<StopFlag>,
        stats: Arc<DeviceStats>,
    ) -> DeviceHandle {
        let mut seeder = SplitMix64::new(config.seed);
        let workers = (0..config.blocks.max(1))
            .map(|_| {
                let model = Arc::clone(&model);
                let rx = requests.clone();
                let tx = results.clone();
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let params = config.params;
                let seed = seeder.next_u64();
                std::thread::spawn(move || {
                    // Monomorphize the batch loop on the model's selected
                    // kernel backend; the dispatch happens once per thread,
                    // never per batch.
                    match model.kernel_kind() {
                        KernelKind::Dense => block_loop(
                            &model,
                            DenseKernel::new(&model),
                            params,
                            seed,
                            rx,
                            tx,
                            &shared,
                            &stop,
                            &stats,
                        ),
                        KernelKind::Csr => block_loop(
                            &model,
                            CsrKernel::new(&model),
                            params,
                            seed,
                            rx,
                            tx,
                            &shared,
                            &stop,
                            &stats,
                        ),
                    }
                })
            })
            .collect();
        DeviceHandle { workers }
    }
}

/// The per-block work loop (one CUDA block in the paper's Fig. 4(2)).
#[allow(clippy::too_many_arguments)]
fn block_loop<K: QuboKernel>(
    model: &QuboModel,
    kernel: K,
    params: SearchParams,
    seed: u64,
    requests: Receiver<Packet>,
    results: Sender<Packet>,
    shared: &SharedBest,
    stop: &StopFlag,
    stats: &DeviceStats,
) {
    let mut rng = Xorshift64Star::new(seed);
    let mut state = IncrementalState::with_kernel(model, kernel);
    let mut batch = BatchSearch::new(model.n(), params);
    loop {
        if stop.is_stopped() {
            return;
        }
        let packet = match requests.recv_timeout(Duration::from_millis(5)) {
            Ok(p) => p,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let out = batch.run(&mut state, &packet.solution, packet.algorithm, &mut rng);
        let improved = shared.update(out.energy);
        stats.record_batch(out.flips, improved);
        if results
            .send(packet.into_result(out.best, out.energy))
            .is_err()
        {
            return; // host went away
        }
    }
}

/// A single-threaded, deterministic device used in tests and in the
/// solver's sequential mode: processes one packet per call on a resident
/// block state, with no channels or threads involved. Generic over the
/// energy-kernel backend; [`InlineDevice::new`] builds the CSR-backed
/// default, [`InlineDevice::with_kernel`] takes whichever backend the model
/// selected.
pub struct InlineDevice<'m, K: QuboKernel = CsrKernel<'m>> {
    state: IncrementalState<'m, K>,
    batch: BatchSearch,
    rng: Xorshift64Star,
    shared: SharedBest,
    stats: DeviceStats,
}

impl<'m> InlineDevice<'m, CsrKernel<'m>> {
    /// Build a CSR-backed inline device with one resident block.
    pub fn new(model: &'m QuboModel, params: SearchParams, seed: u64) -> Self {
        Self::with_kernel(model, CsrKernel::new(model), params, seed)
    }
}

impl<'m, K: QuboKernel> InlineDevice<'m, K> {
    /// Build an inline device on an explicit kernel backend.
    pub fn with_kernel(model: &'m QuboModel, kernel: K, params: SearchParams, seed: u64) -> Self {
        Self {
            state: IncrementalState::with_kernel(model, kernel),
            batch: BatchSearch::new(model.n(), params),
            rng: Xorshift64Star::new(seed),
            shared: SharedBest::new(),
            stats: DeviceStats::new(),
        }
    }

    /// Process one request packet synchronously, returning the result.
    pub fn process(&mut self, packet: Packet) -> Packet {
        let out = self.batch.run(
            &mut self.state,
            &packet.solution,
            packet.algorithm,
            &mut self.rng,
        );
        let improved = self.shared.update(out.energy);
        self.stats.record_batch(out.flips, improved);
        packet.into_result(out.best, out.energy)
    }

    /// Device-wide best energy so far.
    pub fn best_energy(&self) -> i64 {
        self.shared.get()
    }

    /// Execution counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Lifetime lazy Δ-segment re-reductions performed by the resident
    /// state (sampled into the solver's observability counters).
    pub fn seg_reductions(&self) -> u64 {
        self.state.seg_reductions()
    }

    /// The resident block's current vector (for tests).
    pub fn resident(&self) -> &Solution {
        self.state.solution()
    }

    /// Re-seat the resident block on `solution`, recomputing energy and
    /// flip deltas. Used to warm-start a device from a sibling unit's
    /// incumbent instead of whatever state it last held.
    pub fn reset_resident(&mut self, solution: &Solution) {
        self.state.reset_to(solution.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use dabs_model::QuboBuilder;
    use dabs_search::MainAlgorithm;

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(0.3) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn inline_device_round_trips_packets() {
        let q = random_model(30, 111);
        let mut dev = InlineDevice::new(&q, SearchParams::default(), 1);
        let mut rng = Xorshift64Star::new(2);
        let req = Packet::request(Solution::random(30, &mut rng), MainAlgorithm::MaxMin, 7);
        let res = dev.process(req);
        assert!(res.is_result());
        assert_eq!(res.genetic_op, 7);
        assert_eq!(res.algorithm, MainAlgorithm::MaxMin);
        assert_eq!(q.energy(&res.solution), res.energy.unwrap());
        assert_eq!(dev.best_energy(), res.energy.unwrap());
        assert_eq!(dev.stats().batches(), 1);
        assert!(dev.stats().flips() > 0);
    }

    #[test]
    fn inline_device_is_deterministic() {
        let q = random_model(25, 112);
        let run = || {
            let mut dev = InlineDevice::new(&q, SearchParams::default(), 9);
            let mut rng = Xorshift64Star::new(10);
            let mut energies = Vec::new();
            for _ in 0..5 {
                let req =
                    Packet::request(Solution::random(25, &mut rng), MainAlgorithm::CyclicMin, 0);
                energies.push(dev.process(req).energy.unwrap());
            }
            energies
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inline_device_kernels_are_bit_identical() {
        // Same model weights, same seeds, different backends: the packet
        // stream must match exactly (the integer delta arithmetic is
        // identical, only the memory layout differs).
        let mut q = random_model(45, 210);
        q.select_kernel(dabs_model::KernelChoice::Dense);
        let mut csr_dev =
            InlineDevice::with_kernel(&q, CsrKernel::new(&q), SearchParams::default(), 3);
        let mut dense_dev =
            InlineDevice::with_kernel(&q, DenseKernel::new(&q), SearchParams::default(), 3);
        let mut rng_a = Xorshift64Star::new(4);
        let mut rng_b = Xorshift64Star::new(4);
        for i in 0..6 {
            let algo = MainAlgorithm::ALL[i % 5];
            let ra = csr_dev.process(Packet::request(
                Solution::random(45, &mut rng_a),
                algo,
                i as u8,
            ));
            let rb = dense_dev.process(Packet::request(
                Solution::random(45, &mut rng_b),
                algo,
                i as u8,
            ));
            assert_eq!(ra.solution, rb.solution);
            assert_eq!(ra.energy, rb.energy);
        }
        assert_eq!(csr_dev.resident(), dense_dev.resident());
        assert_eq!(csr_dev.stats().flips(), dense_dev.stats().flips());
    }

    #[test]
    fn threaded_device_runs_dense_models() {
        let mut model = random_model(40, 211);
        model.select_kernel(dabs_model::KernelChoice::Dense);
        let q = Arc::new(model);
        let (req_tx, req_rx) = channel::bounded::<Packet>(8);
        let (res_tx, res_rx) = channel::unbounded::<Packet>();
        let stop = Arc::new(StopFlag::new());
        let handle = VirtualDevice::spawn(
            Arc::clone(&q),
            DeviceConfig::default(),
            req_rx,
            res_tx,
            Arc::new(SharedBest::new()),
            Arc::clone(&stop),
            Arc::new(DeviceStats::new()),
        );
        let mut rng = Xorshift64Star::new(6);
        for i in 0..4 {
            req_tx
                .send(Packet::request(
                    Solution::random(40, &mut rng),
                    MainAlgorithm::ALL[i % 5],
                    i as u8,
                ))
                .unwrap();
        }
        for _ in 0..4 {
            let r = res_rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(q.energy(&r.solution), r.energy.unwrap());
        }
        stop.stop();
        handle.join();
    }

    #[test]
    fn threaded_device_processes_all_requests() {
        let q = Arc::new(random_model(40, 113));
        let (req_tx, req_rx) = channel::bounded::<Packet>(16);
        let (res_tx, res_rx) = channel::unbounded::<Packet>();
        let shared = Arc::new(SharedBest::new());
        let stop = Arc::new(StopFlag::new());
        let stats = Arc::new(DeviceStats::new());
        let handle = VirtualDevice::spawn(
            Arc::clone(&q),
            DeviceConfig {
                blocks: 3,
                params: SearchParams::default(),
                seed: 42,
            },
            req_rx,
            res_tx,
            Arc::clone(&shared),
            Arc::clone(&stop),
            Arc::clone(&stats),
        );
        let mut rng = Xorshift64Star::new(5);
        let total = 20;
        for i in 0..total {
            let algo = MainAlgorithm::ALL[i % 5];
            req_tx
                .send(Packet::request(
                    Solution::random(40, &mut rng),
                    algo,
                    i as u8,
                ))
                .unwrap();
        }
        let mut results = Vec::new();
        for _ in 0..total {
            let r = res_rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert!(r.is_result());
            assert_eq!(q.energy(&r.solution), r.energy.unwrap());
            results.push(r);
        }
        stop.stop();
        handle.join();
        assert_eq!(results.len(), total);
        assert_eq!(stats.batches(), total as u64);
        // the shared best equals the minimum over all results
        let min = results.iter().map(|r| r.energy.unwrap()).min().unwrap();
        assert_eq!(shared.get(), min);
    }

    #[test]
    fn device_exits_on_channel_disconnect() {
        let q = Arc::new(random_model(10, 114));
        let (req_tx, req_rx) = channel::bounded::<Packet>(4);
        let (res_tx, _res_rx) = channel::unbounded::<Packet>();
        let handle = VirtualDevice::spawn(
            q,
            DeviceConfig::default(),
            req_rx,
            res_tx,
            Arc::new(SharedBest::new()),
            Arc::new(StopFlag::new()),
            Arc::new(DeviceStats::new()),
        );
        drop(req_tx); // disconnect
        handle.join(); // must not hang
    }

    #[test]
    fn device_exits_on_stop_flag() {
        let q = Arc::new(random_model(10, 115));
        let (_req_tx, req_rx) = channel::bounded::<Packet>(4);
        let (res_tx, _res_rx) = channel::unbounded::<Packet>();
        let stop = Arc::new(StopFlag::new());
        let handle = VirtualDevice::spawn(
            q,
            DeviceConfig::default(),
            req_rx,
            res_tx,
            Arc::new(SharedBest::new()),
            Arc::clone(&stop),
            Arc::new(DeviceStats::new()),
        );
        stop.stop();
        handle.join(); // must not hang
    }
}
