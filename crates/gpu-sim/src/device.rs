//! Virtual devices and their block workers.

use crate::{DeviceStats, Packet, SharedBest, StopFlag};
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use dabs_model::{
    BatchKernel, BatchState, CsrKernel, DenseKernel, IncrementalState, KernelKind, QuboModel,
    Solution,
};
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};
use dabs_search::{BatchSearch, BulkSweep, SearchParams, BULK_CYCLE_ROUNDS};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of one virtual device.
#[derive(Debug, Clone)]
pub struct DeviceConfig {
    /// Number of block workers (the paper dispatches 216 CUDA blocks per
    /// A100; on CPU a handful of threads per device is the equivalent).
    pub blocks: usize,
    /// Batch-search flip budgets.
    pub params: SearchParams,
    /// Seed from which every block derives its private RNG stream.
    pub seed: u64,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self {
            blocks: 2,
            params: SearchParams::default(),
            seed: 0xDAB5,
        }
    }
}

/// Handle to a running [`VirtualDevice`]: join it to shut down cleanly.
#[derive(Debug)]
pub struct DeviceHandle {
    workers: Vec<JoinHandle<()>>,
}

impl DeviceHandle {
    /// Wait for every block worker to exit. Workers exit when the stop flag
    /// is raised or the request channel disconnects.
    pub fn join(self) {
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// One simulated GPU.
pub struct VirtualDevice;

impl VirtualDevice {
    /// Spawn the device's block workers.
    ///
    /// Each block loops: receive a request packet, run a batch search on its
    /// resident state, send back the result packet. `shared` is the
    /// device-wide `atomicMin` best; `stop` ends the loop between batches.
    pub fn spawn(
        model: Arc<QuboModel>,
        config: DeviceConfig,
        requests: Receiver<Packet>,
        results: Sender<Packet>,
        shared: Arc<SharedBest>,
        stop: Arc<StopFlag>,
        stats: Arc<DeviceStats>,
    ) -> DeviceHandle {
        let mut seeder = SplitMix64::new(config.seed);
        let workers = (0..config.blocks.max(1))
            .map(|_| {
                let model = Arc::clone(&model);
                let rx = requests.clone();
                let tx = results.clone();
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let params = config.params;
                let seed = seeder.next_u64();
                std::thread::spawn(move || {
                    // Monomorphize the batch loop on the model's selected
                    // kernel backend; the dispatch happens once per thread,
                    // never per batch.
                    match model.kernel_kind() {
                        KernelKind::Dense => block_loop(
                            &model,
                            DenseKernel::new(&model),
                            params,
                            seed,
                            rx,
                            tx,
                            &shared,
                            &stop,
                            &stats,
                        ),
                        KernelKind::Csr => block_loop(
                            &model,
                            CsrKernel::new(&model),
                            params,
                            seed,
                            rx,
                            tx,
                            &shared,
                            &stop,
                            &stats,
                        ),
                    }
                })
            })
            .collect();
        DeviceHandle { workers }
    }
}

/// The per-block work loop (one CUDA block in the paper's Fig. 4(2)).
#[allow(clippy::too_many_arguments)]
fn block_loop<K: BatchKernel>(
    model: &QuboModel,
    kernel: K,
    params: SearchParams,
    seed: u64,
    requests: Receiver<Packet>,
    results: Sender<Packet>,
    shared: &SharedBest,
    stop: &StopFlag,
    stats: &DeviceStats,
) {
    let mut rng = Xorshift64Star::new(seed);
    let mut bulk = (params.batch_lanes >= 64)
        .then(|| BulkResident::new(kernel, params.batch_lanes as usize, seed));
    let mut state = IncrementalState::with_kernel(model, kernel);
    let mut batch = BatchSearch::new(model.n(), params);
    loop {
        if stop.is_stopped() {
            return;
        }
        let packet = match requests.recv_timeout(Duration::from_millis(5)) {
            Ok(p) => p,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let sent = if let Some(bulk) = bulk.as_mut() {
            let leg = bulk.leg(&packet.solution, &mut rng);
            let improved = shared.merge_lanes(bulk.state.best_energies());
            stats.record_batch(leg.flips, improved);
            results
                .send(
                    packet
                        .into_result(leg.best, leg.energy)
                        .with_lane_energies(bulk.state.energies().to_vec()),
                )
                .is_ok()
        } else {
            let out = batch.run(&mut state, &packet.solution, packet.algorithm, &mut rng);
            let improved = shared.update(out.energy);
            stats.record_batch(out.flips, improved);
            results
                .send(packet.into_result(out.best, out.energy))
                .is_ok()
        };
        if !sent {
            return; // host went away
        }
    }
}

/// The resident bit-sliced batch of one bulk-mode block: `B` candidate
/// lanes ([`BatchState`]) plus their threshold-accepting sweep
/// ([`BulkSweep`]), persisting across legs like the scalar resident state.
struct BulkResident<K: BatchKernel> {
    state: BatchState<K>,
    sweep: BulkSweep,
    seeded: bool,
}

/// What one bulk leg produced: the winning lane's current solution/energy
/// (so `energy == E(best)` exactly, as with scalar legs) and the flips
/// accepted across all lanes.
struct BulkLeg {
    best: Solution,
    energy: i64,
    flips: u64,
}

impl<K: BatchKernel> BulkResident<K> {
    fn new(kernel: K, lanes: usize, seed: u64) -> Self {
        Self {
            state: BatchState::new(kernel, lanes),
            sweep: BulkSweep::new(lanes, seed),
            seeded: false,
        }
    }

    /// Seed every lane from `target`: lane 0 exact, siblings perturbed by
    /// ~n/16 random bit flips so the batch starts as a cloud around the
    /// target (the bulk analogue of one warm start; a cube-seeded unit's
    /// incumbent fans out to a whole lane batch this way).
    fn seed_all(&mut self, target: &Solution, rng: &mut Xorshift64Star) {
        let n = self.state.n();
        let spread = (n / 16).max(1);
        for lane in 0..self.state.lanes() {
            let mut sol = target.clone();
            if lane > 0 {
                for _ in 0..spread {
                    sol.flip(rng.next_index(n));
                }
            }
            self.seed_lane(lane, &sol);
        }
        self.seeded = true;
    }

    fn seed_lane(&mut self, lane: usize, sol: &Solution) {
        self.state.seed_lane(lane, sol);
        let amp = self.state.max_abs_delta(lane);
        self.sweep.set_amp(lane, amp);
    }

    /// One bulk leg: inject the target (first leg seeds the whole batch;
    /// later legs replace the worst current lane), run one cooling cycle
    /// of the lockstep sweep, report the winning lane.
    fn leg(&mut self, target: &Solution, rng: &mut Xorshift64Star) -> BulkLeg {
        if self.seeded {
            let worst = self
                .state
                .energies()
                .iter()
                .enumerate()
                .max_by_key(|&(_, &e)| e)
                .map(|(l, _)| l)
                .unwrap_or(0);
            self.seed_lane(worst, target);
        } else {
            self.seed_all(target, rng);
        }
        let flips = self.sweep.run(&mut self.state, BULK_CYCLE_ROUNDS);
        let (lane, energy) = self.state.argmin_lane();
        BulkLeg {
            best: self.state.lane_solution(lane),
            energy,
            flips,
        }
    }
}

/// A single-threaded, deterministic device used in tests and in the
/// solver's sequential mode: processes one packet per call on a resident
/// block state, with no channels or threads involved. Generic over the
/// energy-kernel backend; [`InlineDevice::new`] builds the CSR-backed
/// default, [`InlineDevice::with_kernel`] takes whichever backend the model
/// selected.
pub struct InlineDevice<'m, K: BatchKernel = CsrKernel<'m>> {
    state: IncrementalState<'m, K>,
    batch: BatchSearch,
    bulk: Option<BulkResident<K>>,
    params: SearchParams,
    rng: Xorshift64Star,
    shared: SharedBest,
    stats: DeviceStats,
}

impl<'m> InlineDevice<'m, CsrKernel<'m>> {
    /// Build a CSR-backed inline device with one resident block.
    pub fn new(model: &'m QuboModel, params: SearchParams, seed: u64) -> Self {
        Self::with_kernel(model, CsrKernel::new(model), params, seed)
    }
}

impl<'m, K: BatchKernel> InlineDevice<'m, K> {
    /// Build an inline device on an explicit kernel backend. A
    /// `params.batch_lanes ≥ 64` switches the device to the bulk resident
    /// mode: `batch_lanes` bit-sliced candidate lanes advanced in lockstep
    /// by the threshold-accepting sweep instead of one scalar block.
    pub fn with_kernel(model: &'m QuboModel, kernel: K, params: SearchParams, seed: u64) -> Self {
        Self {
            state: IncrementalState::with_kernel(model, kernel),
            batch: BatchSearch::new(model.n(), params),
            bulk: (params.batch_lanes >= 64)
                .then(|| BulkResident::new(kernel, params.batch_lanes as usize, seed)),
            params,
            rng: Xorshift64Star::new(seed),
            shared: SharedBest::new(),
            stats: DeviceStats::new(),
        }
    }

    /// Process one request packet synchronously, returning the result.
    pub fn process(&mut self, packet: Packet) -> Packet {
        if let Some(bulk) = self.bulk.as_mut() {
            let leg = bulk.leg(&packet.solution, &mut self.rng);
            let improved = self.shared.merge_lanes(bulk.state.best_energies());
            self.stats.record_batch(leg.flips, improved);
            return packet
                .into_result(leg.best, leg.energy)
                .with_lane_energies(bulk.state.energies().to_vec());
        }
        let out = self.batch.run(
            &mut self.state,
            &packet.solution,
            packet.algorithm,
            &mut self.rng,
        );
        let improved = self.shared.update(out.energy);
        self.stats.record_batch(out.flips, improved);
        packet.into_result(out.best, out.energy)
    }

    /// The configured bit-sliced lane count (0 in scalar mode).
    pub fn batch_lanes(&self) -> u32 {
        self.params.batch_lanes
    }

    /// Device-wide best energy so far.
    pub fn best_energy(&self) -> i64 {
        self.shared.get()
    }

    /// Execution counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Lifetime lazy Δ-segment re-reductions performed by the resident
    /// state (sampled into the solver's observability counters).
    pub fn seg_reductions(&self) -> u64 {
        self.state.seg_reductions()
    }

    /// The resident block's current vector (for tests).
    pub fn resident(&self) -> &Solution {
        self.state.solution()
    }

    /// Re-seat the resident block on `solution`, recomputing energy and
    /// flip deltas. Used to warm-start a device from a sibling unit's
    /// incumbent instead of whatever state it last held. In bulk mode the
    /// warm start fans out across the whole lane batch (lane 0 exact,
    /// siblings perturbed), so a cube-seeded unit hands its vector to all
    /// `B` resident candidates at once.
    pub fn reset_resident(&mut self, solution: &Solution) {
        if let Some(bulk) = self.bulk.as_mut() {
            bulk.seed_all(solution, &mut self.rng);
        } else {
            self.state.reset_to(solution.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;
    use dabs_model::QuboBuilder;
    use dabs_search::MainAlgorithm;

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(0.3) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn inline_device_round_trips_packets() {
        let q = random_model(30, 111);
        let mut dev = InlineDevice::new(&q, SearchParams::default(), 1);
        let mut rng = Xorshift64Star::new(2);
        let req = Packet::request(Solution::random(30, &mut rng), MainAlgorithm::MaxMin, 7);
        let res = dev.process(req);
        assert!(res.is_result());
        assert_eq!(res.genetic_op, 7);
        assert_eq!(res.algorithm, MainAlgorithm::MaxMin);
        assert_eq!(q.energy(&res.solution), res.energy.unwrap());
        assert_eq!(dev.best_energy(), res.energy.unwrap());
        assert_eq!(dev.stats().batches(), 1);
        assert!(dev.stats().flips() > 0);
    }

    #[test]
    fn inline_device_is_deterministic() {
        let q = random_model(25, 112);
        let run = || {
            let mut dev = InlineDevice::new(&q, SearchParams::default(), 9);
            let mut rng = Xorshift64Star::new(10);
            let mut energies = Vec::new();
            for _ in 0..5 {
                let req =
                    Packet::request(Solution::random(25, &mut rng), MainAlgorithm::CyclicMin, 0);
                energies.push(dev.process(req).energy.unwrap());
            }
            energies
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn inline_device_kernels_are_bit_identical() {
        // Same model weights, same seeds, different backends: the packet
        // stream must match exactly (the integer delta arithmetic is
        // identical, only the memory layout differs).
        let mut q = random_model(45, 210);
        q.select_kernel(dabs_model::KernelChoice::Dense);
        let mut csr_dev =
            InlineDevice::with_kernel(&q, CsrKernel::new(&q), SearchParams::default(), 3);
        let mut dense_dev =
            InlineDevice::with_kernel(&q, DenseKernel::new(&q), SearchParams::default(), 3);
        let mut rng_a = Xorshift64Star::new(4);
        let mut rng_b = Xorshift64Star::new(4);
        for i in 0..6 {
            let algo = MainAlgorithm::ALL[i % 5];
            let ra = csr_dev.process(Packet::request(
                Solution::random(45, &mut rng_a),
                algo,
                i as u8,
            ));
            let rb = dense_dev.process(Packet::request(
                Solution::random(45, &mut rng_b),
                algo,
                i as u8,
            ));
            assert_eq!(ra.solution, rb.solution);
            assert_eq!(ra.energy, rb.energy);
        }
        assert_eq!(csr_dev.resident(), dense_dev.resident());
        assert_eq!(csr_dev.stats().flips(), dense_dev.stats().flips());
    }

    #[test]
    fn threaded_device_runs_dense_models() {
        let mut model = random_model(40, 211);
        model.select_kernel(dabs_model::KernelChoice::Dense);
        let q = Arc::new(model);
        let (req_tx, req_rx) = channel::bounded::<Packet>(8);
        let (res_tx, res_rx) = channel::unbounded::<Packet>();
        let stop = Arc::new(StopFlag::new());
        let handle = VirtualDevice::spawn(
            Arc::clone(&q),
            DeviceConfig::default(),
            req_rx,
            res_tx,
            Arc::new(SharedBest::new()),
            Arc::clone(&stop),
            Arc::new(DeviceStats::new()),
        );
        let mut rng = Xorshift64Star::new(6);
        for i in 0..4 {
            req_tx
                .send(Packet::request(
                    Solution::random(40, &mut rng),
                    MainAlgorithm::ALL[i % 5],
                    i as u8,
                ))
                .unwrap();
        }
        for _ in 0..4 {
            let r = res_rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(q.energy(&r.solution), r.energy.unwrap());
        }
        stop.stop();
        handle.join();
    }

    #[test]
    fn threaded_device_processes_all_requests() {
        let q = Arc::new(random_model(40, 113));
        let (req_tx, req_rx) = channel::bounded::<Packet>(16);
        let (res_tx, res_rx) = channel::unbounded::<Packet>();
        let shared = Arc::new(SharedBest::new());
        let stop = Arc::new(StopFlag::new());
        let stats = Arc::new(DeviceStats::new());
        let handle = VirtualDevice::spawn(
            Arc::clone(&q),
            DeviceConfig {
                blocks: 3,
                params: SearchParams::default(),
                seed: 42,
            },
            req_rx,
            res_tx,
            Arc::clone(&shared),
            Arc::clone(&stop),
            Arc::clone(&stats),
        );
        let mut rng = Xorshift64Star::new(5);
        let total = 20;
        for i in 0..total {
            let algo = MainAlgorithm::ALL[i % 5];
            req_tx
                .send(Packet::request(
                    Solution::random(40, &mut rng),
                    algo,
                    i as u8,
                ))
                .unwrap();
        }
        let mut results = Vec::new();
        for _ in 0..total {
            let r = res_rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert!(r.is_result());
            assert_eq!(q.energy(&r.solution), r.energy.unwrap());
            results.push(r);
        }
        stop.stop();
        handle.join();
        assert_eq!(results.len(), total);
        assert_eq!(stats.batches(), total as u64);
        // the shared best equals the minimum over all results
        let min = results.iter().map(|r| r.energy.unwrap()).min().unwrap();
        assert_eq!(shared.get(), min);
    }

    #[test]
    fn inline_bulk_device_round_trips_lane_results() {
        let q = random_model(50, 310);
        let params = SearchParams {
            batch_lanes: 64,
            ..SearchParams::default()
        };
        let mut dev = InlineDevice::new(&q, params, 1);
        assert_eq!(dev.batch_lanes(), 64);
        let mut rng = Xorshift64Star::new(2);
        for op in 0..3u8 {
            let req = Packet::request(Solution::random(50, &mut rng), MainAlgorithm::MaxMin, op);
            let res = dev.process(req);
            assert!(res.is_result());
            assert_eq!(res.lane_energies.len(), 64);
            // The reported winner is a real lane: its energy is the lane
            // minimum and matches the ground-truth energy of the solution.
            let min = *res.lane_energies.iter().min().unwrap();
            assert_eq!(res.energy.unwrap(), min);
            assert_eq!(q.energy(&res.solution), res.energy.unwrap());
        }
        assert_eq!(dev.stats().batches(), 3);
        assert!(dev.stats().flips() > 0);
        // The shared best was min-merged off the sentinel by the lane bests.
        assert!(dev.best_energy() < i64::MAX);
    }

    #[test]
    fn inline_bulk_device_is_deterministic() {
        let q = random_model(40, 311);
        let params = SearchParams {
            batch_lanes: 128,
            ..SearchParams::default()
        };
        let run = || {
            let mut dev = InlineDevice::new(&q, params, 9);
            let mut rng = Xorshift64Star::new(10);
            let mut out = Vec::new();
            for _ in 0..3 {
                let req =
                    Packet::request(Solution::random(40, &mut rng), MainAlgorithm::CyclicMin, 0);
                let res = dev.process(req);
                out.push((res.energy.unwrap(), res.lane_energies));
            }
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn bulk_warm_start_fans_out_across_lanes() {
        let q = random_model(48, 312);
        let params = SearchParams {
            batch_lanes: 64,
            ..SearchParams::default()
        };
        let mut dev = InlineDevice::new(&q, params, 5);
        let mut rng = Xorshift64Star::new(6);
        let warm = Solution::random(48, &mut rng);
        dev.reset_resident(&warm);
        let res = dev.process(Packet::request(warm, MainAlgorithm::MaxMin, 0));
        assert_eq!(res.lane_energies.len(), 64);
        assert_eq!(q.energy(&res.solution), res.energy.unwrap());
    }

    #[test]
    fn threaded_bulk_device_processes_requests() {
        let q = Arc::new(random_model(40, 313));
        let (req_tx, req_rx) = channel::bounded::<Packet>(8);
        let (res_tx, res_rx) = channel::unbounded::<Packet>();
        let shared = Arc::new(SharedBest::new());
        let stop = Arc::new(StopFlag::new());
        let handle = VirtualDevice::spawn(
            Arc::clone(&q),
            DeviceConfig {
                blocks: 2,
                params: SearchParams {
                    batch_lanes: 64,
                    ..SearchParams::default()
                },
                seed: 77,
            },
            req_rx,
            res_tx,
            Arc::clone(&shared),
            Arc::clone(&stop),
            Arc::new(DeviceStats::new()),
        );
        let mut rng = Xorshift64Star::new(8);
        for i in 0..4 {
            req_tx
                .send(Packet::request(
                    Solution::random(40, &mut rng),
                    MainAlgorithm::ALL[i % 5],
                    i as u8,
                ))
                .unwrap();
        }
        let mut min = i64::MAX;
        for _ in 0..4 {
            let r = res_rx.recv_timeout(Duration::from_secs(30)).unwrap();
            assert_eq!(r.lane_energies.len(), 64);
            assert_eq!(q.energy(&r.solution), r.energy.unwrap());
            min = min.min(*r.lane_energies.iter().min().unwrap());
        }
        stop.stop();
        handle.join();
        // The shared register min-merged every lane, so it is at least as
        // good as the best lane any result reported.
        assert!(shared.get() <= min);
    }

    #[test]
    fn device_exits_on_channel_disconnect() {
        let q = Arc::new(random_model(10, 114));
        let (req_tx, req_rx) = channel::bounded::<Packet>(4);
        let (res_tx, _res_rx) = channel::unbounded::<Packet>();
        let handle = VirtualDevice::spawn(
            q,
            DeviceConfig::default(),
            req_rx,
            res_tx,
            Arc::new(SharedBest::new()),
            Arc::new(StopFlag::new()),
            Arc::new(DeviceStats::new()),
        );
        drop(req_tx); // disconnect
        handle.join(); // must not hang
    }

    #[test]
    fn device_exits_on_stop_flag() {
        let q = Arc::new(random_model(10, 115));
        let (_req_tx, req_rx) = channel::bounded::<Packet>(4);
        let (res_tx, _res_rx) = channel::unbounded::<Packet>();
        let stop = Arc::new(StopFlag::new());
        let handle = VirtualDevice::spawn(
            q,
            DeviceConfig::default(),
            req_rx,
            res_tx,
            Arc::new(SharedBest::new()),
            Arc::clone(&stop),
            Arc::new(DeviceStats::new()),
        );
        stop.stop();
        handle.join(); // must not hang
    }
}
