//! Criterion microbenchmarks for the flip hot loop: `apply_flip` (both
//! kernel backends, with segment-aggregate maintenance) and the selection
//! primitives the search strategies run between flips — at the three
//! parity densities, so a change to the segment layer shows its cost and
//! payoff in one table.
//!
//! Run with `cargo bench -p dabs-model --bench flip_loop`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dabs_model::{IncrementalState, KernelChoice, QuboBuilder, QuboModel};
use dabs_rng::{Rng64, Xorshift64Star};

const N: usize = 512;
const DENSITIES: [f64; 3] = [0.05, 0.5, 0.95];

fn density_model(density: f64) -> QuboModel {
    let mut rng = Xorshift64Star::new(42);
    let mut b = QuboBuilder::new(N);
    b.kernel(KernelChoice::Dense); // build both storages
    for i in 0..N {
        b.add_linear(i, rng.next_range_i64(-99, 99));
        for j in (i + 1)..N {
            if rng.next_bool(density) {
                b.add_quadratic(i, j, rng.next_range_i64(-99, 99));
            }
        }
    }
    b.build().unwrap()
}

fn key(density: f64) -> String {
    format!("d{:02}", (density * 100.0).round() as u32)
}

/// One incremental flip (Eq. 4–5 update + aggregate maintenance), kept on a
/// 2-cycle so the state never drifts: flip i, flip it back.
fn bench_apply_flip(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_flip");
    for density in DENSITIES {
        let q = density_model(density);
        let mut rng = Xorshift64Star::new(7);
        {
            let mut st = IncrementalState::new(&q);
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new("csr", key(density)), &N, |b, _| {
                b.iter(|| {
                    st.flip(i);
                    st.flip(i);
                    i = (i + 97) % N;
                    black_box(st.energy())
                })
            });
        }
        {
            let mut st = IncrementalState::new_dense(&q);
            let mut i = rng.next_index(N);
            group.bench_with_input(BenchmarkId::new("dense", key(density)), &N, |b, _| {
                b.iter(|| {
                    st.flip(i);
                    st.flip(i);
                    i = (i + 97) % N;
                    black_box(st.energy())
                })
            });
        }
    }
    group.finish();
}

/// The selection primitives, each measured right after a flip so the
/// dirty-segment refresh cost is on the clock (that is the real per-flip
/// shape in every strategy).
fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection");
    for density in DENSITIES {
        let q = density_model(density);
        let k = key(density);
        {
            let mut st = IncrementalState::new(&q);
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new("min_delta", &k), &N, |b, _| {
                b.iter(|| {
                    st.flip(i % N);
                    i += 31;
                    black_box(st.min_delta())
                })
            });
        }
        {
            let mut st = IncrementalState::new(&q);
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new("min_max_argmin", &k), &N, |b, _| {
                b.iter(|| {
                    st.flip(i % N);
                    i += 31;
                    black_box(st.min_max_argmin())
                })
            });
        }
        {
            let mut st = IncrementalState::new(&q);
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new("positive_min_delta", &k), &N, |b, _| {
                b.iter(|| {
                    st.flip(i % N);
                    i += 31;
                    black_box(st.positive_min_delta())
                })
            });
        }
        {
            let mut st = IncrementalState::new(&q);
            let mut rng = Xorshift64Star::new(9);
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new("select_le_min+4", &k), &N, |b, _| {
                b.iter(|| {
                    st.flip(i % N);
                    i += 31;
                    let (_, min_d) = st.min_delta();
                    black_box(st.select_le(min_d.saturating_add(4), &mut rng, |_| true))
                })
            });
        }
        {
            let mut st = IncrementalState::new(&q);
            let mut i = 0usize;
            group.bench_with_input(BenchmarkId::new("window_argmin_n8", &k), &N, |b, _| {
                b.iter(|| {
                    st.flip(i % N);
                    let pos = (i * 13) % N;
                    i += 31;
                    black_box(st.window_argmin(pos, N / 8, |_| true))
                })
            });
        }
    }
    group.finish();
}

/// The full-scan selection the segment layer replaced, for an on-demand
/// before/after on the same machine.
fn bench_naive_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_scan");
    for density in DENSITIES {
        let q = density_model(density);
        let mut st = IncrementalState::new(&q);
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("full_min_scan", key(density)),
            &N,
            |b, _| {
                b.iter(|| {
                    st.flip(i % N);
                    i += 31;
                    let deltas = st.deltas();
                    let mut best = (0usize, deltas[0]);
                    for (k, &d) in deltas.iter().enumerate().skip(1) {
                        if d < best.1 {
                            best = (k, d);
                        }
                    }
                    black_box(best)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_apply_flip, bench_selection, bench_naive_scan);
criterion_main!(benches);
