//! Incremental per-segment aggregates over the Δ array — the watched-data
//! layer that makes candidate selection scan-free.
//!
//! The one-flip update (paper Eqs. 4–5) is `O(deg(i))`, but every search
//! strategy then *selects* the next bit from the Δ array, and a naive
//! selection re-scans all `n` gains — often twice (min/max pass plus a
//! reservoir pass). At n = 1024 the selection scan, not the kernel,
//! dominates the flip loop.
//!
//! [`SegmentAggregates`] fixes that with the same lazy-structure idea DPLL
//! solvers use for watched literals: state is updated only where a change
//! lands, never globally re-derived. The Δ array is partitioned into
//! [`SEG_WIDTH`]-wide segments (aligned to [`crate::Solution`] words) and a
//! per-segment `min`/`max` is kept:
//!
//! * a flip **marks** the segments it dirtied (CSR: tighten-or-mark per
//!   updated entry of the mirrored row, so a segment goes dirty only when
//!   its recorded extremum's holder moves; dense: every lane changes, so
//!   the whole array is marked and the first query re-reduces it in one
//!   branchless pass — fusing the reduction into the strip update measured
//!   slower, see the dense kernel's note),
//! * a **query** first re-reduces only the dirty segments with chunked,
//!   branchless, autovectorizable loops ([`SegmentAggregates::refresh`]),
//!   then answers from the `n / 64` aggregates.
//!
//! Strategies that never scan (simulated annealing's random proposals, the
//! Straight walk) pay only the marking cost — a shift and an `or` per
//! touched row entry — and never a refresh.

/// log2 of the segment width.
pub const SEG_SHIFT: usize = 6;

/// Segment width: 64 gains per segment, matching the 64-bit words of
/// [`crate::Solution`] and the strip width of [`crate::DenseStrips`].
pub const SEG_WIDTH: usize = 1 << SEG_SHIFT;

/// Segment index covering bit `i`.
#[inline(always)]
pub fn seg_of(i: usize) -> usize {
    i >> SEG_SHIFT
}

/// Number of segments covering `n` gains.
#[inline(always)]
pub fn seg_count(n: usize) -> usize {
    n.div_ceil(SEG_WIDTH)
}

/// Per-segment `min`/`max` of a Δ array, maintained incrementally with a
/// dirty bitset (one bit per segment) and lazy re-reduction.
#[derive(Debug, Clone)]
pub struct SegmentAggregates {
    n: usize,
    mins: Vec<i64>,
    /// Lowest index attaining each segment's min — kept alongside the min
    /// so argmin queries never rescan a segment's 64 lanes, and so an
    /// update only invalidates the segment when the *holder itself* moves
    /// up (another lane reaching the same value keeps the aggregates
    /// valid).
    argmins: Vec<u32>,
    maxs: Vec<i64>,
    /// Bit per segment: set = the segment's min/argmin is stale. Min and
    /// max staleness are tracked separately so min-only consumers (greedy
    /// argmin, `select_le`, window scans) never pay for max re-reduction.
    dirty_min: Vec<u64>,
    /// Bit per segment: set = the segment's max is stale.
    dirty_max: Vec<u64>,
    /// Fast path: false means no `dirty_min` bit can be set.
    any_dirty_min: bool,
    /// Fast path: false means no `dirty_max` bit can be set.
    any_dirty_max: bool,
    /// Lifetime count of segment re-reductions (one per segment side
    /// recomputed by [`SegmentAggregates::refresh_min`] /
    /// [`SegmentAggregates::refresh_max`]). A plain field, not an atomic:
    /// observability reads it at batch granularity through
    /// [`SegmentAggregates::reductions`], so the flip loop pays one
    /// register increment per O(64) re-reduction and nothing else.
    reductions: u64,
}

impl SegmentAggregates {
    /// Aggregates for an `n`-gain array, with every segment marked dirty so
    /// the first query reduces from whatever the Δ array then holds.
    pub fn all_dirty(n: usize) -> Self {
        let segs = seg_count(n);
        let mut s = Self {
            n,
            mins: vec![0; segs],
            argmins: vec![0; segs],
            maxs: vec![0; segs],
            dirty_min: vec![0u64; segs.div_ceil(64)],
            dirty_max: vec![0u64; segs.div_ceil(64)],
            any_dirty_min: false,
            any_dirty_max: false,
            reductions: 0,
        };
        s.mark_all();
        s
    }

    /// Number of segments.
    #[inline]
    pub fn segments(&self) -> usize {
        self.mins.len()
    }

    /// Index range `[lo, hi)` of gains covered by segment `seg`.
    #[inline]
    pub fn bounds(&self, seg: usize) -> (usize, usize) {
        let lo = seg << SEG_SHIFT;
        (lo, (lo + SEG_WIDTH).min(self.n))
    }

    /// Mark segment `seg`'s min/argmin stale.
    #[inline(always)]
    pub fn mark_min(&mut self, seg: usize) {
        self.dirty_min[seg >> 6] |= 1u64 << (seg & 63);
        self.any_dirty_min = true;
    }

    /// Mark segment `seg`'s max stale.
    #[inline(always)]
    pub fn mark_max(&mut self, seg: usize) {
        self.dirty_max[seg >> 6] |= 1u64 << (seg & 63);
        self.any_dirty_max = true;
    }

    /// Mark both sides of segment `seg` stale.
    #[inline(always)]
    pub fn mark(&mut self, seg: usize) {
        self.mark_min(seg);
        self.mark_max(seg);
    }

    /// Account for gain `j` changing from `old` to `new` — the incremental
    /// heart of the layer. A changed gain almost never invalidates its
    /// segment's aggregates:
    ///
    /// * `new` below the recorded min ⇒ the min *is* `new` at `j` (tighten,
    ///   no re-reduction; no other lane can tie it, because the recorded
    ///   min bounded every lane from below);
    /// * `new` equal to the min ⇒ the value stands; the holder moves to
    ///   `j` only if `j` is lower (lowest-index tie-break);
    /// * `new` above it ⇒ the min is unchanged **unless** `j` was the
    ///   recorded holder, in which case the true min is unknown and the
    ///   segment is marked for lazy re-reduction (probability ≈ 1/64 for a
    ///   random entry);
    ///
    /// and analogously for the max (value-based, no holder: any update
    /// from the max value marks). A segment that is already dirty
    /// tolerates any interleaving: tightening writes are overwritten by the
    /// eventual [`SegmentAggregates::refresh`], and stale-extremum
    /// comparisons can only add marks.
    #[inline(always)]
    pub fn update(&mut self, j: usize, old: i64, new: i64) {
        let s = j >> SEG_SHIFT;
        let mn = self.mins[s];
        if new < mn {
            self.mins[s] = new;
            self.argmins[s] = j as u32;
        } else if new == mn {
            if (j as u32) < self.argmins[s] {
                self.argmins[s] = j as u32;
            }
        } else if self.argmins[s] == j as u32 {
            self.mark_min(s);
        }
        if new >= self.maxs[s] {
            self.maxs[s] = new;
        } else if old == self.maxs[s] {
            self.mark_max(s);
        }
    }

    /// Mark the segment containing bit `i` stale.
    #[inline(always)]
    pub fn mark_bit(&mut self, i: usize) {
        self.mark(i >> SEG_SHIFT);
    }

    /// Mark every segment stale on both sides (wholesale Δ replacement).
    pub fn mark_all(&mut self) {
        let segs = self.segments();
        for w in 0..self.dirty_min.len() {
            let covered = segs.saturating_sub(w << 6).min(64);
            let word = if covered == 64 {
                u64::MAX
            } else {
                (1u64 << covered) - 1
            };
            self.dirty_min[w] = word;
            self.dirty_max[w] = word;
        }
        let stale = segs > 0;
        self.any_dirty_min = stale;
        self.any_dirty_max = stale;
    }

    /// Store freshly computed aggregates (min, its lowest attaining index,
    /// max) and clear the segment's dirty bits — the integration point for
    /// a backend that re-reduces inline during its update pass. No current
    /// kernel takes that route (the dense backend's fused variant measured
    /// slower than mark-all + one lazy refresh, see
    /// `DenseKernel::apply_flip_seg`'s note), so today only tests and the
    /// trait contract exercise it.
    #[inline(always)]
    pub fn set(&mut self, seg: usize, min: i64, argmin: usize, max: i64) {
        self.mins[seg] = min;
        self.argmins[seg] = argmin as u32;
        self.maxs[seg] = max;
        let clear = !(1u64 << (seg & 63));
        self.dirty_min[seg >> 6] &= clear;
        self.dirty_max[seg >> 6] &= clear;
    }

    /// Minimum gain in segment `seg`. Only meaningful after
    /// [`SegmentAggregates::refresh`].
    #[inline(always)]
    pub fn min_of(&self, seg: usize) -> i64 {
        self.mins[seg]
    }

    /// Lowest index attaining [`SegmentAggregates::min_of`]. Only
    /// meaningful after [`SegmentAggregates::refresh`].
    #[inline(always)]
    pub fn argmin_of(&self, seg: usize) -> usize {
        self.argmins[seg] as usize
    }

    /// Maximum gain in segment `seg`. Only meaningful after
    /// [`SegmentAggregates::refresh`].
    #[inline(always)]
    pub fn max_of(&self, seg: usize) -> i64 {
        self.maxs[seg]
    }

    /// Re-reduce every min-dirty segment's min/argmin from `delta` and
    /// clear the min-dirty set. `O(dirty × 64)` with branchless,
    /// autovectorizable inner loops.
    pub fn refresh_min(&mut self, delta: &[i64]) {
        debug_assert_eq!(delta.len(), self.n);
        if !self.any_dirty_min {
            return;
        }
        for w in 0..self.dirty_min.len() {
            let mut bits = self.dirty_min[w];
            self.dirty_min[w] = 0;
            while bits != 0 {
                let seg = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (lo, hi) = self.bounds(seg);
                let (mn, am) = reduce_min_argmin(lo, &delta[lo..hi]);
                self.mins[seg] = mn;
                self.argmins[seg] = am as u32;
                self.reductions += 1;
            }
        }
        self.any_dirty_min = false;
    }

    /// Re-reduce every max-dirty segment's max from `delta` and clear the
    /// max-dirty set.
    pub fn refresh_max(&mut self, delta: &[i64]) {
        debug_assert_eq!(delta.len(), self.n);
        if !self.any_dirty_max {
            return;
        }
        for w in 0..self.dirty_max.len() {
            let mut bits = self.dirty_max[w];
            self.dirty_max[w] = 0;
            while bits != 0 {
                let seg = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (lo, hi) = self.bounds(seg);
                let mut mx = i64::MIN;
                for &v in &delta[lo..hi] {
                    mx = if v > mx { v } else { mx };
                }
                self.maxs[seg] = mx;
                self.reductions += 1;
            }
        }
        self.any_dirty_max = false;
    }

    /// Lifetime segment re-reductions performed by the lazy refresh paths
    /// (the cost the Δ-segment layer exists to amortize; exported as a
    /// sampled solver counter).
    #[inline]
    pub fn reductions(&self) -> u64 {
        self.reductions
    }

    /// Bring both sides up to date.
    pub fn refresh(&mut self, delta: &[i64]) {
        self.refresh_min(delta);
        self.refresh_max(delta);
    }

    /// True when at least one segment may be stale on either side.
    #[inline]
    pub fn is_dirty(&self) -> bool {
        self.any_dirty_min || self.any_dirty_max
    }

    /// Test-support: assert every segment aggregate equals a fresh
    /// reduction of `delta`. Panics on divergence.
    pub fn assert_matches(&self, delta: &[i64]) {
        assert!(!self.is_dirty(), "aggregates queried while dirty");
        for seg in 0..self.segments() {
            let (lo, hi) = self.bounds(seg);
            let (mn, am, mx) = reduce_min_argmin_max(lo, &delta[lo..hi]);
            assert_eq!(self.mins[seg], mn, "segment {seg} min diverged");
            assert_eq!(
                self.argmins[seg] as usize, am,
                "segment {seg} argmin diverged"
            );
            assert_eq!(self.maxs[seg], mx, "segment {seg} max diverged");
        }
    }
}

/// Min with its lowest attaining absolute index (the chunk starts at
/// `base`) over a (non-empty) slice.
///
/// Two passes on purpose: the value fold compiles to branchless
/// conditional moves, and the index is recovered with one first-match scan
/// (a single well-predicted exit) — measurably faster than a fused
/// `if v < mn { mn = v; am = k }` loop, which mispredicts on every new
/// prefix minimum.
#[inline]
pub fn reduce_min_argmin(base: usize, chunk: &[i64]) -> (i64, usize) {
    debug_assert!(!chunk.is_empty());
    let mut mn = i64::MAX;
    for &v in chunk {
        mn = if v < mn { v } else { mn };
    }
    let mut am = 0usize;
    for (k, &v) in chunk.iter().enumerate() {
        if v == mn {
            am = k;
            break;
        }
    }
    (mn, base + am)
}

/// Min (with lowest attaining absolute index) and max fold over a
/// (non-empty) slice — see [`reduce_min_argmin`] for the two-pass shape.
#[inline]
pub fn reduce_min_argmin_max(base: usize, chunk: &[i64]) -> (i64, usize, i64) {
    let (mn, am) = reduce_min_argmin(base, chunk);
    let mut mx = i64::MIN;
    for &v in chunk {
        mx = if v > mx { v } else { mx };
    }
    (mn, am, mx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::{Rng64, Xorshift64Star};

    fn random_delta(n: usize, seed: u64) -> Vec<i64> {
        let mut rng = Xorshift64Star::new(seed);
        (0..n).map(|_| rng.next_range_i64(-500, 500)).collect()
    }

    #[test]
    fn seg_geometry() {
        assert_eq!(seg_count(1), 1);
        assert_eq!(seg_count(64), 1);
        assert_eq!(seg_count(65), 2);
        assert_eq!(seg_of(63), 0);
        assert_eq!(seg_of(64), 1);
        let s = SegmentAggregates::all_dirty(130);
        assert_eq!(s.segments(), 3);
        assert_eq!(s.bounds(2), (128, 130));
    }

    #[test]
    fn refresh_matches_full_reduction_at_word_boundaries() {
        for n in [1usize, 63, 64, 65, 128, 129, 300] {
            let delta = random_delta(n, n as u64);
            let mut s = SegmentAggregates::all_dirty(n);
            s.refresh(&delta);
            s.assert_matches(&delta);
        }
    }

    #[test]
    fn only_marked_segments_are_re_reduced() {
        let mut delta = random_delta(256, 9);
        let mut s = SegmentAggregates::all_dirty(256);
        s.refresh(&delta);
        // mutate two segments, mark only one: the unmarked one stays stale
        delta[0] = -9_999;
        delta[200] = -9_999;
        s.mark_bit(200);
        s.refresh(&delta);
        assert_eq!(s.min_of(3), -9_999);
        assert_ne!(s.min_of(0), -9_999, "unmarked segment must not refresh");
        // marking it catches up
        s.mark_bit(0);
        s.refresh(&delta);
        s.assert_matches(&delta);
    }

    #[test]
    fn set_clears_dirty_for_that_segment() {
        let delta = random_delta(128, 4);
        let mut s = SegmentAggregates::all_dirty(128);
        let (mn, am, mx) = reduce_min_argmin_max(64, &delta[64..128]);
        s.set(1, mn, am, mx);
        s.refresh(&delta);
        s.assert_matches(&delta);
    }

    #[test]
    fn mark_all_covers_partial_last_word() {
        // 70 segments → dirty words [64, 6]: the second word's high bits
        // must not be set (they would index past the segment arrays).
        let n = 70 * SEG_WIDTH;
        let delta = random_delta(n, 5);
        let mut s = SegmentAggregates::all_dirty(n);
        s.refresh(&delta);
        s.assert_matches(&delta);
    }

    #[test]
    fn reduce_handles_extremes_and_breaks_ties_low() {
        assert_eq!(
            reduce_min_argmin_max(0, &[i64::MAX]),
            (i64::MAX, 0, i64::MAX)
        );
        assert_eq!(reduce_min_argmin_max(5, &[i64::MIN, 0]), (i64::MIN, 5, 0));
        assert_eq!(reduce_min_argmin_max(10, &[3, -1, 7, -1]), (-1, 11, 7));
    }

    #[test]
    fn update_tracks_holder_moves_and_invalidation() {
        let mut delta = vec![5i64, 3, 9, 3];
        let mut s = SegmentAggregates::all_dirty(4);
        s.refresh(&delta);
        assert_eq!((s.min_of(0), s.argmin_of(0)), (3, 1));
        // a tie at a higher index leaves the holder alone
        delta[3] = 3;
        s.update(3, 3, 3);
        assert_eq!(s.argmin_of(0), 1);
        // the holder moving up marks the segment; refresh finds the tie
        delta[1] = 8;
        s.update(1, 3, 8);
        assert!(s.is_dirty());
        s.refresh(&delta);
        assert_eq!((s.min_of(0), s.argmin_of(0)), (3, 3));
        // an interior move (touching neither extremum) keeps aggregates
        // valid without any re-reduction
        delta[0] = 4;
        s.update(0, 5, 4);
        assert!(!s.is_dirty());
        s.assert_matches(&delta);
    }
}
