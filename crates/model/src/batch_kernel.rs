//! Bit-sliced batch kernel: B resident candidates advanced per weight sweep.
//!
//! The paper's bulk search amortises every weight load over many candidate
//! solutions per kernel launch. The scalar hot path ([`crate::IncrementalState`])
//! amortises each CSR/dense row load over exactly **one** candidate; this
//! module holds `B ∈ {64, 128, 192, 256}` candidates in structure-of-arrays
//! form and updates all `B` Δ-arrays in a single sweep over row `i`:
//!
//! * **bit-sliced x** — one `u64` *lane word* per 64 candidates per variable
//!   (`x[i·wpv + w]`, bit `ℓ` of word `w` = candidate `w·64 + ℓ`), the
//!   column-major transpose of `B` packed [`Solution`]s;
//! * **column-major Δ** — `delta[j·B + ℓ]`, so the `B` gains of one
//!   variable are contiguous and the inner lane loop vectorises;
//! * **branchless accumulate** — per weight `W_ij`, the lanes to negate are
//!   `x_i ^ x_j` (σ_iσ_j = +1 iff the bits agree) and the lanes to touch
//!   are the caller's accept mask, both applied with
//!   `sign_select`-style mask arithmetic: no branches in the lane loop.
//!
//! The execution model is deliberately SIMT-lockstep: every lane considers
//! the **same** variable `i` with per-lane predication (the accept mask),
//! exactly like a warp with divergence-free predicated flips. That is what
//! lets one `(cols, vals)` row walk serve the whole batch — and what makes
//! each lane's trajectory *bit-identical* to an independent scalar
//! [`crate::IncrementalState`] run replaying the same accept decisions,
//! the contract the parity tests at the bottom of this file pin for both
//! backends at word-boundary sizes.

use crate::kernel::sign_select;
use crate::{CsrKernel, DenseKernel, QuboKernel, Solution};

/// Smallest supported batch width: one lane word.
pub const MIN_BATCH_LANES: usize = 64;

/// Largest supported batch width: four lane words. Beyond this the Δ matrix
/// (`n·B × 8` bytes) stops fitting in L2 for the paper-scale instances and
/// per-sweep throughput regresses.
pub const MAX_BATCH_LANES: usize = 256;

/// Is `lanes` a legal batch width (multiple of 64 in `[64, 256]`)?
pub fn valid_lanes(lanes: usize) -> bool {
    lanes.is_multiple_of(64) && (MIN_BATCH_LANES..=MAX_BATCH_LANES).contains(&lanes)
}

/// A [`QuboKernel`] that can update all `B` Δ-arrays of a bit-sliced batch
/// in one sweep over the weights of row `i`.
pub trait BatchKernel: QuboKernel {
    /// Masked bulk neighbour update for flipping bit `i` in the accepting
    /// lanes: for every stored weight `W_ij` (`j ≠ i`) and every lane `ℓ`
    /// with `accept` bit `ℓ` set,
    /// `delta[j·B + ℓ] += W_ij · σ(x_i^ℓ) · σ(x_j^ℓ)`, evaluated on the
    /// **pre-flip** bit-sliced `x`. Must not touch row `i` of `delta` —
    /// [`BatchState::step`] negates the accepted lanes' `Δ_i` itself.
    ///
    /// `x` is the full `n·wpv` bit-sliced array, `accept` is `wpv` lane
    /// words, `delta` is the full `n·(wpv·64)` column-major gain matrix.
    fn batch_apply_flip(&self, x: &[u64], wpv: usize, i: usize, accept: &[u64], delta: &mut [i64]);
}

/// Per-word accepted-lane index lists, extracted once per flip so the
/// per-neighbour inner loop reads a flat `u8` stream instead of re-walking
/// the mask bits with a serial `trailing_zeros` chain for every weight.
struct AcceptLists {
    /// Lane indices (0..64) of the accepted bits, word-major.
    idx: [[u8; 64]; MAX_BATCH_LANES / 64],
    /// Accepted count per word.
    len: [usize; MAX_BATCH_LANES / 64],
}

impl AcceptLists {
    #[inline]
    fn build(accept: &[u64]) -> Self {
        let mut lists = AcceptLists {
            idx: [[0u8; 64]; MAX_BATCH_LANES / 64],
            len: [0; MAX_BATCH_LANES / 64],
        };
        for (wi, &acc) in accept.iter().enumerate() {
            let mut m = acc;
            let mut k = 0usize;
            while m != 0 {
                lists.idx[wi][k] = m.trailing_zeros() as u8;
                m &= m - 1;
                k += 1;
            }
            lists.len[wi] = k;
        }
        lists
    }
}

/// The shared inner lane loop: add `±w` into the accepted lanes of one
/// 64-lane gain word, sign from `sgn` (bit set ⇒ `x_i ≠ x_j` ⇒ `−w`). The
/// work tracks accepted lanes, not the lane width, and the `& 63` keeps
/// the array access provably in bounds without a checked index.
#[inline(always)]
fn accumulate_lane_word(dst: &mut [i64; 64], w: i64, sgn: u64, bits: &[u8]) {
    for &b in bits {
        let b = (b & 63) as usize;
        let neg = (((sgn >> b) & 1) as i64).wrapping_neg();
        dst[b] += sign_select(w, neg);
    }
}

/// Explicit AVX-512 lane loops, used when the CPU supports them. The batch
/// accumulate is exactly the predicated-SIMT model the module docs describe,
/// and AVX-512's masked ops express it directly: `vpmovm2q` expands eight
/// sign bits to per-lane all-ones (so `(w ^ neg) − neg` is the vector
/// [`sign_select`]) and `vpaddq {k}` adds only into accepted lanes — eight
/// gains per instruction with no gather/scatter, since Δ is column-major.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod simd {
    #[allow(clippy::wildcard_imports)]
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Runtime CPU check, resolved once: F for masked 64-bit add/compare,
    /// DQ for the `vpmovm2q` mask-to-vector expansion.
    pub(super) fn available() -> bool {
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512dq")
        })
    }

    /// AVX-512 body of [`super::apply_row`]: per neighbour `j` and lane
    /// word, eight masked 8×i64 `±w` adds. Callers must have verified
    /// [`available`] — hence the `unsafe fn`.
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn apply_row(
        x: &[u64],
        wpv: usize,
        xi: &[u64],
        accept: &[u64],
        delta: &mut [i64],
        row: impl Iterator<Item = (usize, i64)>,
    ) {
        let lanes = wpv << 6;
        for (j, w) in row {
            let xj = &x[j * wpv..(j + 1) * wpv];
            let dj = &mut delta[j * lanes..(j + 1) * lanes];
            let wv = _mm512_set1_epi64(w);
            for wi in 0..wpv {
                let acc = accept[wi];
                if acc == 0 {
                    continue;
                }
                // Lanes where x_i == x_j get +w (σ_iσ_j = +1), others −w.
                let sgn = xi[wi] ^ xj[wi];
                let word: &mut [i64] = &mut dj[wi << 6..(wi << 6) + 64];
                let p = word.as_mut_ptr();
                for c in 0..8 {
                    let a = ((acc >> (c * 8)) & 0xff) as __mmask8;
                    if a == 0 {
                        continue;
                    }
                    let neg = _mm512_movm_epi64(((sgn >> (c * 8)) & 0xff) as __mmask8);
                    // (w ^ neg) − neg = ±w per lane: the vector sign_select.
                    let addend = _mm512_sub_epi64(_mm512_xor_si512(wv, neg), neg);
                    // SAFETY: `p` points at a 64-element slice and
                    // `c·8 + 8 ≤ 64`, so the unaligned 8×i64 load and store
                    // stay in bounds.
                    unsafe {
                        let d = _mm512_loadu_epi64(p.add(c * 8));
                        _mm512_storeu_epi64(p.add(c * 8), _mm512_mask_add_epi64(d, a, d, addend));
                    }
                }
            }
        }
    }

    /// AVX-512 body of [`super::BatchState::accept_mask_le`]: build one
    /// 64-lane accept word from eight `vpcmpleq` mask compares. `d` and
    /// `thresholds` hold 64 gains/thresholds per output word. Callers must
    /// have verified [`available`].
    #[target_feature(enable = "avx512f,avx512dq")]
    pub(super) unsafe fn accept_mask_le(d: &[i64], thresholds: &[i64], out: &mut [u64]) {
        for (wi, o) in out.iter_mut().enumerate() {
            let base = wi << 6;
            let mut m = 0u64;
            for c in 0..8 {
                let off = base + c * 8;
                // SAFETY: the caller passes 64 gains and thresholds per
                // output word, so `off + 8 ≤ 64·out.len()` keeps both
                // unaligned 8×i64 loads in bounds.
                let (dv, tv) = unsafe {
                    (
                        _mm512_loadu_epi64(d.as_ptr().add(off)),
                        _mm512_loadu_epi64(thresholds.as_ptr().add(off)),
                    )
                };
                m |= (_mm512_cmple_epi64_mask(dv, tv) as u64) << (c * 8);
            }
            *o = m;
        }
    }
}

/// Walk one weight row: for every neighbour `j` with weight `w`, update the
/// accepted lanes of `delta[j·lanes..]` on the pre-flip bit-sliced `x`.
/// Dispatches to the AVX-512 loop when the CPU has it; the portable
/// accept-list path below is the fallback and the behavioural reference.
#[inline(always)]
fn apply_row(
    x: &[u64],
    wpv: usize,
    xi: &[u64],
    accept: &[u64],
    delta: &mut [i64],
    row: impl Iterator<Item = (usize, i64)>,
) {
    #[cfg(target_arch = "x86_64")]
    if simd::available() {
        // SAFETY: `simd::available()` just confirmed AVX-512F/DQ at runtime.
        #[allow(unsafe_code)]
        unsafe {
            simd::apply_row(x, wpv, xi, accept, delta, row)
        };
        return;
    }
    let lanes = wpv << 6;
    let lists = AcceptLists::build(accept);
    for (j, w) in row {
        let xj = &x[j * wpv..(j + 1) * wpv];
        let dj = &mut delta[j * lanes..(j + 1) * lanes];
        for wi in 0..wpv {
            let cnt = lists.len[wi];
            if cnt == 0 {
                continue;
            }
            // Lanes where x_i == x_j get +w (σ_iσ_j = +1), others −w.
            let sgn = xi[wi] ^ xj[wi];
            let dst: &mut [i64; 64] = (&mut dj[wi << 6..(wi << 6) + 64]).try_into().unwrap();
            accumulate_lane_word(dst, w, sgn, &lists.idx[wi][..cnt]);
        }
    }
}

impl BatchKernel for CsrKernel<'_> {
    fn batch_apply_flip(&self, x: &[u64], wpv: usize, i: usize, accept: &[u64], delta: &mut [i64]) {
        let (cols, vals) = self.adjacency().row(i);
        let xi = &x[i * wpv..(i + 1) * wpv];
        let row = cols.iter().zip(vals).map(|(&jc, &w)| (jc as usize, w));
        apply_row(x, wpv, xi, accept, delta, row);
    }
}

impl BatchKernel for DenseKernel<'_> {
    fn batch_apply_flip(&self, x: &[u64], wpv: usize, i: usize, accept: &[u64], delta: &mut [i64]) {
        let n = self.n();
        let row = self.strips().row(i);
        let xi = &x[i * wpv..(i + 1) * wpv];
        // The diagonal lane is stored as zero, so j == i contributes
        // nothing — same invariant the scalar dense kernel leans on.
        let row = (0..n).map(move |j| (j, row[j])).filter(|&(_, w)| w != 0);
        apply_row(x, wpv, xi, accept, delta, row);
    }
}

/// `B` resident candidates in SoA form: bit-sliced vectors, column-major
/// gains, per-lane energies and running bests. The batch analogue of `B`
/// independent [`crate::IncrementalState`]s — and contractually
/// bit-identical to them lane by lane (see module docs).
#[derive(Debug, Clone)]
pub struct BatchState<K: BatchKernel> {
    kernel: K,
    n: usize,
    lanes: usize,
    /// Lane words per variable (`lanes / 64`).
    wpv: usize,
    /// Bit-sliced candidates, `n·wpv` words; see module docs for layout.
    x: Vec<u64>,
    /// Column-major gains, `delta[j·lanes + ℓ]`.
    delta: Vec<i64>,
    /// Current energy per lane.
    energy: Vec<i64>,
    /// Best (minimum) energy each lane has visited since seeding.
    best_energy: Vec<i64>,
    /// Accepted flips per lane.
    lane_flips: Vec<u64>,
    /// Total accepted flips across lanes.
    flips: u64,
}

impl<K: BatchKernel> BatchState<K> {
    /// A batch of `lanes` all-zeros candidates: every lane starts at energy
    /// 0 with `Δ_j = W_jj`, matching `IncrementalState::with_kernel`.
    pub fn new(kernel: K, lanes: usize) -> Self {
        assert!(
            valid_lanes(lanes),
            "batch lanes {lanes} invalid (multiple of 64 in [{MIN_BATCH_LANES}, {MAX_BATCH_LANES}])"
        );
        let n = kernel.n();
        let wpv = lanes >> 6;
        let mut delta = vec![0i64; n * lanes];
        for (j, &d) in kernel.diag().iter().enumerate() {
            delta[j * lanes..(j + 1) * lanes].fill(d);
        }
        Self {
            kernel,
            n,
            lanes,
            wpv,
            x: vec![0u64; n * wpv],
            delta,
            energy: vec![0; lanes],
            best_energy: vec![0; lanes],
            lane_flips: vec![0; lanes],
            flips: 0,
        }
    }

    /// Number of variables.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of candidate lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of `u64` lane words (`lanes / 64`) — the length callers size
    /// accept masks to.
    pub fn lane_words(&self) -> usize {
        self.wpv
    }

    /// Re-seed lane `ℓ` from a packed solution: scatters its bits into the
    /// lane column and recomputes the lane's gains and energy with the
    /// scalar `kernel.init`, so the lane is exactly an `IncrementalState`
    /// built from `sol`. `O(n + m)` — seeding cost, not sweep cost.
    pub fn seed_lane(&mut self, lane: usize, sol: &Solution) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert_eq!(sol.len(), self.n, "solution size mismatch");
        let (word, bit) = (lane >> 6, (lane & 63) as u32);
        let mask = 1u64 << bit;
        for k in 0..self.n {
            let slot = &mut self.x[k * self.wpv + word];
            *slot = (*slot & !mask) | (u64::from(sol.get(k)) << bit);
        }
        let mut scratch = vec![0i64; self.n];
        let e = self.kernel.init(sol, &mut scratch);
        for (k, &d) in scratch.iter().enumerate() {
            self.delta[k * self.lanes + lane] = d;
        }
        self.energy[lane] = e;
        self.best_energy[lane] = e;
        self.lane_flips[lane] = 0;
    }

    /// The `B` gains of variable `i`, one per lane.
    pub fn deltas_of(&self, i: usize) -> &[i64] {
        &self.delta[i * self.lanes..(i + 1) * self.lanes]
    }

    /// Build the accept mask for variable `i`: bit `ℓ` set iff
    /// `Δ_i^ℓ ≤ thresholds[ℓ]`. Branchless per lane; `out` must hold
    /// [`Self::lane_words`] words.
    pub fn accept_mask_le(&self, i: usize, thresholds: &[i64], out: &mut [u64]) {
        debug_assert_eq!(thresholds.len(), self.lanes);
        debug_assert_eq!(out.len(), self.wpv);
        let d = self.deltas_of(i);
        #[cfg(target_arch = "x86_64")]
        if simd::available() {
            // SAFETY: `simd::available()` just confirmed AVX-512F/DQ at
            // runtime; `d` and `thresholds` hold 64 entries per out word.
            #[allow(unsafe_code)]
            unsafe {
                simd::accept_mask_le(d, thresholds, out)
            };
            return;
        }
        for (wi, o) in out.iter_mut().enumerate() {
            let base = wi << 6;
            let mut m = 0u64;
            for b in 0..64 {
                m |= u64::from(d[base + b] <= thresholds[base + b]) << b;
            }
            *o = m;
        }
    }

    /// Predicated lockstep flip of variable `i` on the lanes in `accept`:
    /// per accepted lane the exact scalar `flip` sequence — energy `+= Δ_i`,
    /// neighbour gains updated on pre-flip bits, `Δ_i` negated, bit
    /// toggled — all other lanes untouched. Returns the number of lanes
    /// that flipped. `O(deg(i) · wpv)` when any lane accepts, `O(wpv)`
    /// when none does.
    pub fn step(&mut self, i: usize, accept: &[u64]) -> u32 {
        debug_assert_eq!(accept.len(), self.wpv);
        let popcnt: u32 = accept.iter().map(|w| w.count_ones()).sum();
        if popcnt == 0 {
            return 0;
        }
        // Neighbour gains first: batch_apply_flip reads pre-flip x and
        // must not see Δ_i already negated.
        self.kernel
            .batch_apply_flip(&self.x, self.wpv, i, accept, &mut self.delta);
        let di = &mut self.delta[i * self.lanes..(i + 1) * self.lanes];
        for (wi, &acc) in accept.iter().enumerate() {
            if acc == 0 {
                continue;
            }
            let base = wi << 6;
            let mut m = acc;
            while m != 0 {
                let l = base + m.trailing_zeros() as usize;
                m &= m - 1;
                let d = di[l];
                // Accepted lanes: energy += Δ_i, Δ_i ← −Δ_i, flips += 1.
                self.energy[l] += d;
                di[l] = -d;
                self.best_energy[l] = self.best_energy[l].min(self.energy[l]);
                self.lane_flips[l] += 1;
            }
            self.x[i * self.wpv + wi] ^= acc;
        }
        self.flips += popcnt as u64;
        popcnt
    }

    /// Gather lane `ℓ`'s current candidate back into a packed solution.
    pub fn lane_solution(&self, lane: usize) -> Solution {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (word, bit) = (lane >> 6, (lane & 63) as u32);
        let mut sol = Solution::zeros(self.n);
        for k in 0..self.n {
            if (self.x[k * self.wpv + word] >> bit) & 1 == 1 {
                sol.set(k, true);
            }
        }
        sol
    }

    /// Lane `ℓ`'s current energy.
    pub fn lane_energy(&self, lane: usize) -> i64 {
        self.energy[lane]
    }

    /// Lane `ℓ`'s best energy since seeding.
    pub fn lane_best_energy(&self, lane: usize) -> i64 {
        self.best_energy[lane]
    }

    /// Current energies of all lanes.
    pub fn energies(&self) -> &[i64] {
        &self.energy
    }

    /// Best-seen energies of all lanes.
    pub fn best_energies(&self) -> &[i64] {
        &self.best_energy
    }

    /// Accepted flips per lane.
    pub fn lane_flip_counts(&self) -> &[u64] {
        &self.lane_flips
    }

    /// Total accepted flips across all lanes.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// The lane with the lowest **current** energy and that energy.
    /// Current (not best-seen) so the winner's extracted
    /// [`Self::lane_solution`] matches the reported value exactly.
    pub fn argmin_lane(&self) -> (usize, i64) {
        let mut best = (0usize, self.energy[0]);
        for (l, &e) in self.energy.iter().enumerate().skip(1) {
            if e < best.1 {
                best = (l, e);
            }
        }
        best
    }

    /// `max |Δ_i|` of lane `ℓ` — the threshold-schedule amplitude seed.
    pub fn max_abs_delta(&self, lane: usize) -> i64 {
        (0..self.n)
            .map(|i| self.delta[i * self.lanes + lane].abs())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IncrementalState, KernelChoice, QuboBuilder, QuboModel};
    use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};

    fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        b.kernel(KernelChoice::Dense);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn lane_width_validation() {
        for ok in [64, 128, 192, 256] {
            assert!(valid_lanes(ok), "{ok}");
        }
        for bad in [0, 1, 32, 63, 65, 96, 320, 512] {
            assert!(!valid_lanes(bad), "{bad}");
        }
    }

    #[test]
    #[should_panic(expected = "batch lanes")]
    fn constructor_rejects_bad_widths() {
        let q = random_model(8, 0.5, 1);
        let _ = BatchState::new(CsrKernel::new(&q), 96);
    }

    #[test]
    fn zero_seed_matches_scalar_zero_state() {
        let q = random_model(40, 0.4, 2);
        let bs = BatchState::new(CsrKernel::new(&q), 64);
        let st = IncrementalState::new(&q);
        for l in 0..64 {
            assert_eq!(bs.lane_energy(l), st.energy());
            assert_eq!(bs.lane_solution(l), *st.solution());
        }
        for i in 0..40 {
            assert!(bs.deltas_of(i).iter().all(|&d| d == st.delta(i)));
        }
    }

    #[test]
    fn seed_and_extract_round_trip() {
        let q = random_model(65, 0.3, 3);
        let mut bs = BatchState::new(CsrKernel::new(&q), 128);
        let mut rng = Xorshift64Star::new(11);
        for l in [0usize, 1, 63, 64, 65, 127] {
            let sol = Solution::random(65, &mut rng);
            bs.seed_lane(l, &sol);
            assert_eq!(bs.lane_solution(l), sol, "lane {l}");
            assert_eq!(bs.lane_energy(l), q.energy(&sol), "lane {l}");
        }
    }

    /// Satellite 4 grid — every lane of the batch kernel bit-identical to
    /// a scalar `IncrementalState` replaying the same accept decisions, at
    /// densities .05/.5/.95 and word-boundary sizes, both backends.
    #[test]
    fn cross_lane_parity_grid() {
        for &n in &[63usize, 64, 65, 129] {
            for &density in &[0.05f64, 0.5, 0.95] {
                let q = random_model(n, density, 7_700 + n as u64);
                cross_lane_parity_case(&q, CsrKernel::new(&q), n, density);
                cross_lane_parity_case(&q, DenseKernel::new(&q), n, density);
            }
        }
    }

    fn cross_lane_parity_case<K: BatchKernel>(q: &QuboModel, kernel: K, n: usize, density: f64) {
        const LANES: usize = 128;
        const STEPS: usize = 120;
        let tag = format!("n={n} density={density} kernel={}", kernel.kernel_name());
        let mut seeder = SplitMix64::new(0xBA7C4 + n as u64);
        let mut bs = BatchState::new(kernel, LANES);
        let mut scalars: Vec<_> = (0..LANES)
            .map(|l| {
                let mut rng = Xorshift64Star::new(seeder.next_u64());
                let sol = Solution::random(n, &mut rng);
                bs.seed_lane(l, &sol);
                IncrementalState::from_solution_with(q, kernel, sol)
            })
            .collect();
        let mut bests: Vec<i64> = scalars.iter().map(|s| s.energy()).collect();
        let mut mask_rng = Xorshift64Star::new(0xACCE57 + n as u64);
        let mut accept = vec![0u64; bs.lane_words()];
        for step in 0..STEPS {
            let i = mask_rng.next_index(n);
            for a in accept.iter_mut() {
                *a = mask_rng.next_u64();
            }
            bs.step(i, &accept);
            for (l, st) in scalars.iter_mut().enumerate() {
                if (accept[l >> 6] >> (l & 63)) & 1 == 1 {
                    st.flip(i);
                    bests[l] = bests[l].min(st.energy());
                }
            }
            if step % 40 == 39 || step == STEPS - 1 {
                for (l, st) in scalars.iter().enumerate() {
                    assert_eq!(bs.lane_energy(l), st.energy(), "{tag} lane {l} step {step}");
                    assert_eq!(
                        bs.lane_best_energy(l),
                        bests[l],
                        "{tag} lane {l} step {step}"
                    );
                    assert_eq!(
                        bs.lane_flip_counts()[l],
                        st.flips(),
                        "{tag} lane {l} step {step}"
                    );
                    for i in 0..n {
                        assert_eq!(
                            bs.deltas_of(i)[l],
                            st.delta(i),
                            "{tag} lane {l} var {i} step {step}"
                        );
                    }
                }
            }
        }
        // Final solutions and ground-truth energies.
        for (l, st) in scalars.iter().enumerate() {
            let sol = bs.lane_solution(l);
            assert_eq!(sol, *st.solution(), "{tag} lane {l} final");
            assert_eq!(
                q.energy(&sol),
                bs.lane_energy(l),
                "{tag} lane {l} ground truth"
            );
        }
    }

    #[test]
    fn empty_accept_mask_is_a_no_op() {
        let q = random_model(30, 0.5, 5);
        let mut bs = BatchState::new(CsrKernel::new(&q), 64);
        let before = bs.clone();
        assert_eq!(bs.step(7, &[0u64]), 0);
        assert_eq!(bs.energies(), before.energies());
        assert_eq!(bs.flips(), 0);
        for i in 0..30 {
            assert_eq!(bs.deltas_of(i), before.deltas_of(i));
        }
    }

    #[test]
    fn argmin_lane_tracks_current_energy() {
        let q = random_model(20, 0.6, 6);
        let mut bs = BatchState::new(CsrKernel::new(&q), 64);
        let mut rng = Xorshift64Star::new(17);
        let mut best = (0usize, i64::MAX);
        for l in 0..64 {
            let sol = Solution::random(20, &mut rng);
            bs.seed_lane(l, &sol);
            let e = q.energy(&sol);
            if e < best.1 {
                best = (l, e);
            }
        }
        assert_eq!(bs.argmin_lane(), best);
    }
}
