//! Plain-text instance I/O.
//!
//! A minimal interchange format compatible in spirit with the de-facto
//! `.qubo` conventions (qbsolv): comment lines start with `c`, a problem
//! line `p qubo 0 <n> <diag_count> <elem_count>` announces sizes, then one
//! line per non-zero term `i j w` (diagonal terms have `i == j`). Ising
//! models use `p ising <n> <bias_count> <coupling_count>` with the same
//! term syntax.
//!
//! ```
//! use dabs_model::{QuboBuilder, io};
//!
//! let mut b = QuboBuilder::new(3);
//! b.add_linear(0, -2).add_quadratic(0, 1, 5);
//! let q = b.build().unwrap();
//! let text = io::write_qubo(&q);
//! let back = io::parse_qubo(&text).unwrap();
//! assert_eq!(q, back);
//! ```

use crate::{IsingModel, QuboModel};
use std::fmt::Write as _;

/// Parse failure description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialise a QUBO model.
pub fn write_qubo(model: &QuboModel) -> String {
    let n = model.n();
    let diag_count = model.diag_slice().iter().filter(|&&d| d != 0).count();
    let mut out = String::new();
    let _ = writeln!(out, "c dabs-rs QUBO instance");
    let _ = writeln!(out, "p qubo 0 {n} {diag_count} {}", model.edge_count());
    for (i, &d) in model.diag_slice().iter().enumerate() {
        if d != 0 {
            let _ = writeln!(out, "{i} {i} {d}");
        }
    }
    for (i, j, w) in model.adjacency().iter_edges() {
        let _ = writeln!(out, "{i} {j} {w}");
    }
    out
}

/// Parse a QUBO model written by [`write_qubo`] (or hand-authored in the
/// same format).
pub fn parse_qubo(text: &str) -> Result<QuboModel, ParseError> {
    let (n, terms) = parse_body(text, "qubo")?;
    let mut diag = vec![0i64; n];
    let mut edges = Vec::new();
    for (line, (i, j, w)) in terms {
        if i >= n || j >= n {
            return Err(ParseError {
                line,
                message: format!("index out of range: {i} {j} (n = {n})"),
            });
        }
        if i == j {
            diag[i] += w;
        } else {
            edges.push((i, j, w));
        }
    }
    QuboModel::new(n, &edges, diag).map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

/// Serialise an Ising model.
pub fn write_ising(model: &IsingModel) -> String {
    let n = model.n();
    let bias_count = (0..n).filter(|&i| model.bias(i) != 0).count();
    let mut out = String::new();
    let _ = writeln!(out, "c dabs-rs Ising instance");
    let _ = writeln!(out, "p ising {n} {bias_count} {}", model.edge_count());
    for i in 0..n {
        let h = model.bias(i);
        if h != 0 {
            let _ = writeln!(out, "{i} {i} {h}");
        }
    }
    for (i, j, jij) in model.couplings().iter_edges() {
        let _ = writeln!(out, "{i} {j} {jij}");
    }
    out
}

/// Parse an Ising model written by [`write_ising`].
pub fn parse_ising(text: &str) -> Result<IsingModel, ParseError> {
    let (n, terms) = parse_body(text, "ising")?;
    let mut biases = vec![0i64; n];
    let mut edges = Vec::new();
    for (line, (i, j, w)) in terms {
        if i >= n || j >= n {
            return Err(ParseError {
                line,
                message: format!("index out of range: {i} {j} (n = {n})"),
            });
        }
        if i == j {
            biases[i] += w;
        } else {
            edges.push((i, j, w));
        }
    }
    IsingModel::new(n, &edges, biases).map_err(|e| ParseError {
        line: 0,
        message: e.to_string(),
    })
}

/// The variable count a document's `p` header line(s) declare, extracted
/// without parsing — or allocating — anything else. The full parsers let a
/// later `p` line overwrite an earlier one, so the maximum across all of
/// them is what bounds the eventual `vec![0; n]`. `None` when no
/// well-formed header exists (such a document fails in `parse_body`
/// before it allocates).
///
/// Kept next to `parse_body` so there is exactly one copy of the header
/// grammar: admission-control callers (the `dabs-server` job runtime) use
/// this to cap a client-declared `n` *before* handing the text to the real
/// parser, and the two must never drift.
pub fn declared_n(text: &str) -> Option<usize> {
    let mut declared: Option<usize> = None;
    for raw in text.lines() {
        let Some(rest) = raw.trim().strip_prefix('p') else {
            continue;
        };
        let fields: Vec<&str> = rest.split_whitespace().collect();
        let n_pos = match fields.first() {
            Some(&"qubo") => 2,  // p qubo 0 <n> <diag> <elems>
            Some(&"ising") => 1, // p ising <n> <biases> <couplings>
            _ => continue,
        };
        if let Some(n) = fields.get(n_pos).and_then(|f| f.parse().ok()) {
            declared = Some(declared.map_or(n, |d: usize| d.max(n)));
        }
    }
    declared
}

/// Shared scanner: returns `n` and the `(line_no, (i, j, w))` term list.
#[allow(clippy::type_complexity)]
fn parse_body(
    text: &str,
    kind: &str,
) -> Result<(usize, Vec<(usize, (usize, usize, i64))>), ParseError> {
    let mut n: Option<usize> = None;
    let mut terms = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.is_empty() || fields[0] != kind {
                return Err(ParseError {
                    line: line_no,
                    message: format!("expected 'p {kind} …' problem line, got {line:?}"),
                });
            }
            // qubo: p qubo 0 n dc ec ; ising: p ising n bc cc
            let n_pos = if kind == "qubo" { 2 } else { 1 };
            let parsed = fields
                .get(n_pos)
                .and_then(|f| f.parse::<usize>().ok())
                .ok_or_else(|| ParseError {
                    line: line_no,
                    message: "problem line missing variable count".into(),
                })?;
            n = Some(parsed);
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() != 3 {
            return Err(ParseError {
                line: line_no,
                message: format!("expected 'i j w', got {line:?}"),
            });
        }
        let parse_field = |f: &str, what: &str| -> Result<i64, ParseError> {
            f.parse().map_err(|_| ParseError {
                line: line_no,
                message: format!("cannot parse {what} {f:?}"),
            })
        };
        let i = parse_field(fields[0], "index")? as usize;
        let j = parse_field(fields[1], "index")? as usize;
        let w = parse_field(fields[2], "weight")?;
        terms.push((line_no, (i, j, w)));
    }
    let n = n.ok_or(ParseError {
        line: 0,
        message: "missing problem line".into(),
    })?;
    Ok((n, terms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{QuboBuilder, Solution};
    use dabs_rng::{Rng64, Xorshift64Star};

    #[test]
    fn declared_n_matches_what_the_parsers_allocate() {
        // Single headers, both dialects.
        assert_eq!(declared_n("p qubo 0 7 0 0\n"), Some(7));
        assert_eq!(declared_n("c comment\np ising 9 0 0\n"), Some(9));
        // The parsers let a later header overwrite an earlier one, so the
        // maximum is what bounds the allocation.
        assert_eq!(
            declared_n("p qubo 0 4 0 0\np qubo 0 1000 0 0\n"),
            Some(1000)
        );
        assert_eq!(
            declared_n("p qubo 0 1000 0 0\np qubo 0 4 0 0\n"),
            Some(1000)
        );
        // No well-formed header → None, and the real parser must also
        // reject the document (before allocating anything).
        for text in ["", "0 0 5\n", "p qubo 0 huge 0 0\n", "p graph 12\n"] {
            assert_eq!(declared_n(text), None, "{text:?}");
            assert!(parse_qubo(text).is_err(), "{text:?}");
        }
        // A document the parser accepts always has a declared n.
        let q = parse_qubo("p qubo 0 3 1 1\n0 0 -2\n0 1 5\n").unwrap();
        assert_eq!(declared_n("p qubo 0 3 1 1\n0 0 -2\n0 1 5\n"), Some(q.n()));
    }

    fn random_model(n: usize, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(0.3) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn qubo_roundtrip_exact() {
        let q = random_model(25, 401);
        let text = write_qubo(&q);
        let back = parse_qubo(&text).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn qubo_roundtrip_preserves_energies() {
        let q = random_model(30, 402);
        let back = parse_qubo(&write_qubo(&q)).unwrap();
        let mut rng = Xorshift64Star::new(403);
        for _ in 0..10 {
            let x = Solution::random(30, &mut rng);
            assert_eq!(q.energy(&x), back.energy(&x));
        }
    }

    #[test]
    fn ising_roundtrip_exact() {
        let q = random_model(20, 404);
        let (ising, _) = q.to_ising();
        let back = parse_ising(&write_ising(&ising)).unwrap();
        assert_eq!(ising, back);
    }

    #[test]
    fn parses_hand_authored_text() {
        let text = "c a comment\n\np qubo 0 3 1 2\n0 0 -5\n0 1 2\n1 2 -3\n";
        let q = parse_qubo(text).unwrap();
        assert_eq!(q.n(), 3);
        assert_eq!(q.diag(0), -5);
        assert_eq!(q.weight(0, 1), 2);
        assert_eq!(q.weight(1, 2), -3);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let text = "p qubo 0 2 0 1\n0 1 2\n1 0 3\n0 0 1\n0 0 4\n";
        let q = parse_qubo(text).unwrap();
        assert_eq!(q.weight(0, 1), 5);
        assert_eq!(q.diag(0), 5);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_qubo("p qubo 0 2 0 1\n0 oops 3\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));

        let e = parse_qubo("p qubo 0 2 0 1\n0 5 3\n").unwrap_err();
        assert!(e.message.contains("out of range"));

        let e = parse_qubo("0 1 2\n").unwrap_err();
        assert!(e.message.contains("missing problem line"));

        let e = parse_qubo("p ising 3 0 0\n").unwrap_err();
        assert!(e.message.contains("expected 'p qubo"));
    }

    #[test]
    fn rejects_malformed_term_lines() {
        let e = parse_qubo("p qubo 0 2 0 1\n0 1\n").unwrap_err();
        assert!(e.message.contains("expected 'i j w'"));
    }
}
