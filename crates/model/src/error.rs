//! Error type for model construction and validation.

use std::fmt;

/// Errors raised while building or validating binary quadratic models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A node index was at least `n`.
    NodeOutOfRange { node: usize, n: usize },
    /// A self-loop `(i, i)` was supplied where an off-diagonal edge was
    /// required (diagonal weights have their own channel).
    SelfLoop { node: usize },
    /// Two models or a model and a solution disagree on the number of bits.
    SizeMismatch { expected: usize, actual: usize },
    /// The model has no variables.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NodeOutOfRange { node, n } => {
                write!(f, "node index {node} out of range for model with {n} nodes")
            }
            ModelError::SelfLoop { node } => {
                write!(f, "self-loop on node {node}: use a diagonal weight instead")
            }
            ModelError::SizeMismatch { expected, actual } => {
                write!(f, "size mismatch: expected {expected} bits, got {actual}")
            }
            ModelError::Empty => write!(f, "model must have at least one variable"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::NodeOutOfRange { node: 9, n: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = ModelError::SelfLoop { node: 2 };
        assert!(e.to_string().contains("self-loop"));
        let e = ModelError::SizeMismatch {
            expected: 10,
            actual: 3,
        };
        assert!(e.to_string().contains("10"));
        assert!(ModelError::Empty.to_string().contains("at least one"));
    }
}
