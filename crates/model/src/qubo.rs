//! The QUBO model: `E(X) = Σ_{i<j} W_ij x_i x_j + Σ_i W_ii x_i`.

use crate::{
    DenseStrips, IsingModel, KernelChoice, KernelKind, ModelError, Solution, SymmetricCsr,
    DENSE_AUTO_MAX_N, DENSE_DENSITY_THRESHOLD,
};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A Quadratic Unconstrained Binary Optimization model.
///
/// Off-diagonal weights live in a mirrored [`SymmetricCsr`] — the canonical
/// storage every query API (weights, edge iteration, I/O, Ising conversion)
/// reads. The *energy kernel* run by [`crate::IncrementalState`] is selected
/// per model ([`Self::kernel_kind`]): dense instances additionally
/// materialize a [`DenseStrips`] matrix so the flip hot loop runs over
/// contiguous rows. The diagonal (linear) weights `W_ii` are a dense vector,
/// since most reductions assign a weight to every node.
#[derive(Debug, Clone, Eq, Serialize, Deserialize)]
pub struct QuboModel {
    adj: SymmetricCsr,
    diag: Vec<i64>,
    kind: KernelKind,
    /// Lazily-materialized strip matrix, populated on first
    /// [`Self::dense_strips`] access while `kind == KernelKind::Dense`.
    /// Laziness matters on construction paths that build with `Auto` and
    /// re-select afterwards (`ProblemSpec.kernel`, CLI `--kernel`): a
    /// `csr` override on an auto-dense instance must not pay a transient
    /// `n² × 8`-byte allocation it immediately throws away.
    dense: OnceLock<DenseStrips>,
}

/// Model identity is the weights, not the execution backend: two models with
/// the same terms compare equal even when one was forced onto a different
/// kernel (the parity suite depends on exactly that).
impl PartialEq for QuboModel {
    fn eq(&self, other: &Self) -> bool {
        self.adj == other.adj && self.diag == other.diag
    }
}

impl QuboModel {
    /// Build from an off-diagonal edge list and dense diagonal, selecting
    /// the energy kernel automatically ([`KernelChoice::Auto`]).
    pub fn new(
        n: usize,
        edges: &[(usize, usize, i64)],
        diag: Vec<i64>,
    ) -> Result<Self, ModelError> {
        Self::new_with_kernel(n, edges, diag, KernelChoice::Auto)
    }

    /// Build with an explicit kernel choice.
    pub fn new_with_kernel(
        n: usize,
        edges: &[(usize, usize, i64)],
        diag: Vec<i64>,
        kernel: KernelChoice,
    ) -> Result<Self, ModelError> {
        if diag.len() != n {
            return Err(ModelError::SizeMismatch {
                expected: n,
                actual: diag.len(),
            });
        }
        let mut model = Self {
            adj: SymmetricCsr::from_edges(n, edges)?,
            diag,
            kind: KernelKind::Csr,
            dense: OnceLock::new(),
        };
        model.select_kernel(kernel);
        Ok(model)
    }

    /// (Re)select the energy kernel. `Auto` applies the density policy:
    /// dense when `density() ≥` [`DENSE_DENSITY_THRESHOLD`] and
    /// `n ≤` [`DENSE_AUTO_MAX_N`]; explicit choices are always honored.
    ///
    /// Selection itself is O(1): the `n² × 8`-byte strip matrix is only
    /// materialized when a dense kernel view is actually taken (so forcing
    /// `Dense` far beyond the auto ceiling defers its memory bill to solve
    /// time — still a deliberate act). Selecting `Csr` drops any cached
    /// matrix.
    pub fn select_kernel(&mut self, choice: KernelChoice) {
        let dense = match choice {
            KernelChoice::Csr => false,
            KernelChoice::Dense => true,
            KernelChoice::Auto => {
                self.n() <= DENSE_AUTO_MAX_N && self.density() >= DENSE_DENSITY_THRESHOLD
            }
        };
        if dense {
            self.kind = KernelKind::Dense;
        } else {
            self.dense = OnceLock::new();
            self.kind = KernelKind::Csr;
        }
    }

    /// The backend this model selected.
    #[inline]
    pub fn kernel_kind(&self) -> KernelKind {
        self.kind
    }

    /// Dense strip storage, when the dense backend is selected —
    /// materialized on first access (thread-safe; concurrent block workers
    /// race benignly on the `OnceLock`).
    pub fn dense_strips(&self) -> Option<&DenseStrips> {
        (self.kind == KernelKind::Dense)
            .then(|| self.dense.get_or_init(|| DenseStrips::from_csr(&self.adj)))
    }

    /// Whether the dense strip matrix has actually been allocated (memory
    /// introspection; selection alone never materializes it).
    pub fn dense_materialized(&self) -> bool {
        self.dense.get().is_some()
    }

    /// Off-diagonal fill ratio `m / (n(n−1)/2)` ∈ [0, 1].
    pub fn density(&self) -> f64 {
        let n = self.n();
        if n < 2 {
            return 0.0;
        }
        let pairs = (n as f64) * ((n - 1) as f64) / 2.0;
        self.edge_count() as f64 / pairs
    }

    /// Number of binary variables.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.n()
    }

    /// Number of off-diagonal (quadratic) terms.
    pub fn edge_count(&self) -> usize {
        self.adj.edge_count()
    }

    /// Diagonal weight `W_ii`.
    #[inline]
    pub fn diag(&self, i: usize) -> i64 {
        self.diag[i]
    }

    /// All diagonal weights.
    #[inline]
    pub fn diag_slice(&self) -> &[i64] {
        &self.diag
    }

    /// Off-diagonal weight `W_ij` (0 when absent).
    pub fn weight(&self, i: usize, j: usize) -> i64 {
        assert_ne!(i, j, "use diag() for diagonal weights");
        self.adj.weight(i, j)
    }

    /// Sparse adjacency (mirrored).
    #[inline]
    pub fn adjacency(&self) -> &SymmetricCsr {
        &self.adj
    }

    /// Neighbors `(j, W_ij)` of node `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.adj.neighbors(i)
    }

    /// Direct energy evaluation, `O(n + m)`.
    ///
    /// This is the expensive computation the incremental state exists to
    /// avoid (the paper's `O(n²)` direct cost for dense models); it is used
    /// for initialisation and as the ground truth in consistency checks.
    pub fn energy(&self, x: &Solution) -> i64 {
        assert_eq!(x.len(), self.n(), "solution length mismatch");
        let mut linear = 0i64;
        let mut quad_twice = 0i64;
        for i in x.iter_ones() {
            linear += self.diag[i];
            let (cols, vals) = self.adj.row(i);
            for (k, &j) in cols.iter().enumerate() {
                if x.get(j as usize) {
                    quad_twice += vals[k];
                }
            }
        }
        linear + quad_twice / 2
    }

    /// Direct computation of the one-flip gain
    /// `Δ_i(X) = E(f_i(X)) − E(X)`, `O(deg(i))`.
    pub fn delta(&self, x: &Solution, i: usize) -> i64 {
        let (cols, vals) = self.adj.row(i);
        let mut s = self.diag[i];
        for (k, &j) in cols.iter().enumerate() {
            if x.get(j as usize) {
                s += vals[k];
            }
        }
        // flipping 0→1 adds s, flipping 1→0 removes it
        if x.get(i) {
            -s
        } else {
            s
        }
    }

    /// Convert to the equivalent Ising model.
    ///
    /// Returns `(ising, offset)` with `H(S) = 4·E(X) − offset`, where `S` is
    /// the spin vector `s_i = σ(x_i)`. The factor 4 keeps all coefficients
    /// integral (`J_ij = W_ij`, `h_i = 2 W_ii + Σ_j W_ij`).
    pub fn to_ising(&self) -> (IsingModel, i64) {
        let n = self.n();
        let mut h = vec![0i64; n];
        let mut edges = Vec::with_capacity(self.edge_count());
        for (i, hi) in h.iter_mut().enumerate() {
            *hi = 2 * self.diag[i];
            for (j, w) in self.neighbors(i) {
                *hi += w;
                if i < j {
                    edges.push((i, j, w));
                }
            }
        }
        // 4·E(X) = Σ_{i<j} W_ij (s_i s_j + s_i + s_j + 1) + Σ_i 2 W_ii (s_i + 1)
        //        = H(S) + C,  C = Σ_{i<j} W_ij + 2 Σ_i W_ii
        let c: i64 =
            edges.iter().map(|&(_, _, w)| w).sum::<i64>() + 2 * self.diag.iter().sum::<i64>();
        let ising = IsingModel::new(n, &edges, h).expect("valid by construction");
        (ising, c)
    }

    /// Largest absolute weight (diagonal or off-diagonal); useful for
    /// scaling penalties and annealing schedules.
    pub fn max_abs_weight(&self) -> i64 {
        self.adj
            .max_abs_weight()
            .max(self.diag.iter().map(|v| v.abs()).max().unwrap_or(0))
    }

    /// A crude lower bound on the energy: the sum of every negative term.
    /// `E(X) ≥ lower_bound()` for all `X`; used by branch-and-bound and as a
    /// sanity check in tests.
    pub fn lower_bound(&self) -> i64 {
        let neg_edges: i64 = self.adj.iter_edges().map(|(_, _, w)| w.min(0)).sum();
        let neg_diag: i64 = self.diag.iter().map(|&v| v.min(0)).sum();
        neg_edges + neg_diag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::{Rng64, Xorshift64Star};

    /// The QUBO model of the paper's Fig. 1(2):
    /// 5 nodes, edges (0,1)=4, (0,3)=-6, (0,4)=-6(?), … — we use our own toy
    /// models here; the Fig. 1 Ising/QUBO equivalence is covered by the
    /// conversion round-trip tests in `ising.rs`.
    fn toy() -> QuboModel {
        // E(X) = 2 x0 x1 - 3 x1 x2 + x0 - 2 x2
        QuboModel::new(3, &[(0, 1, 2), (1, 2, -3)], vec![1, 0, -2]).unwrap()
    }

    #[test]
    fn energy_enumerated_by_hand() {
        let q = toy();
        let cases = [
            ("000", 0),
            ("100", 1),
            ("010", 0),
            ("001", -2),
            ("110", 3),
            ("011", -5),
            ("101", -1),
            ("111", -2),
        ];
        for (bits, expect) in cases {
            assert_eq!(
                q.energy(&Solution::from_bitstring(bits)),
                expect,
                "E({bits})"
            );
        }
    }

    #[test]
    fn delta_matches_energy_difference() {
        let q = toy();
        for bits in ["000", "100", "010", "001", "110", "011", "101", "111"] {
            let x = Solution::from_bitstring(bits);
            for i in 0..3 {
                let mut y = x.clone();
                y.flip(i);
                assert_eq!(q.delta(&x, i), q.energy(&y) - q.energy(&x), "Δ_{i}({bits})");
            }
        }
    }

    #[test]
    fn zero_vector_energy_and_deltas() {
        // Paper: X = 0 ⇒ E = 0 and Δ_k = W_kk.
        let q = toy();
        let z = Solution::zeros(3);
        assert_eq!(q.energy(&z), 0);
        for i in 0..3 {
            assert_eq!(q.delta(&z, i), q.diag(i));
        }
    }

    #[test]
    fn random_delta_consistency() {
        let mut rng = Xorshift64Star::new(11);
        let n = 40;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(0.2) {
                    edges.push((i, j, rng.next_range_i64(-9, 9)));
                }
            }
        }
        let diag: Vec<i64> = (0..n).map(|_| rng.next_range_i64(-9, 9)).collect();
        let q = QuboModel::new(n, &edges, diag).unwrap();
        for _ in 0..20 {
            let x = Solution::random(n, &mut rng);
            let e = q.energy(&x);
            for i in 0..n {
                let mut y = x.clone();
                y.flip(i);
                assert_eq!(q.delta(&x, i), q.energy(&y) - e);
            }
        }
    }

    #[test]
    fn lower_bound_holds_exhaustively() {
        let q = toy();
        let lb = q.lower_bound();
        for v in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            assert!(q.energy(&Solution::from_bits(&bits)) >= lb);
        }
    }

    #[test]
    fn rejects_mismatched_diag() {
        assert!(QuboModel::new(3, &[], vec![0, 0]).is_err());
    }

    #[test]
    fn weight_accessors() {
        let q = toy();
        assert_eq!(q.weight(0, 1), 2);
        assert_eq!(q.weight(1, 0), 2);
        assert_eq!(q.weight(0, 2), 0);
        assert_eq!(q.diag(2), -2);
        assert_eq!(q.max_abs_weight(), 3);
        assert_eq!(q.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "use diag()")]
    fn weight_panics_on_diagonal_query() {
        toy().weight(1, 1);
    }

    #[test]
    fn kernel_selection_is_lazy_about_dense_storage() {
        // A complete triangle auto-selects dense, but the strip matrix must
        // not exist until a dense kernel view is actually taken — so a CSR
        // override after an Auto build never pays a transient n² allocation.
        let mut q = QuboModel::new(3, &[(0, 1, 1), (1, 2, 1), (0, 2, 1)], vec![0; 3]).unwrap();
        assert_eq!(q.kernel_kind(), crate::KernelKind::Dense);
        assert!(!q.dense_materialized(), "selection alone must not allocate");
        q.select_kernel(crate::KernelChoice::Csr);
        assert_eq!(q.kernel_kind(), crate::KernelKind::Csr);
        assert!(q.dense_strips().is_none());
        assert!(!q.dense_materialized());
        // Back to dense: still lazy until first access, then cached.
        q.select_kernel(crate::KernelChoice::Dense);
        assert!(!q.dense_materialized());
        assert!(q.dense_strips().is_some());
        assert!(q.dense_materialized());
    }
}
