//! The QUBO model: `E(X) = Σ_{i<j} W_ij x_i x_j + Σ_i W_ii x_i`.

use crate::{IsingModel, ModelError, Solution, SymmetricCsr};
use serde::{Deserialize, Serialize};

/// A Quadratic Unconstrained Binary Optimization model.
///
/// Off-diagonal weights live in a mirrored [`SymmetricCsr`]; the diagonal
/// (linear) weights `W_ii` are a dense vector, since most reductions assign a
/// weight to every node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuboModel {
    adj: SymmetricCsr,
    diag: Vec<i64>,
}

impl QuboModel {
    /// Build from an off-diagonal edge list and dense diagonal.
    pub fn new(
        n: usize,
        edges: &[(usize, usize, i64)],
        diag: Vec<i64>,
    ) -> Result<Self, ModelError> {
        if diag.len() != n {
            return Err(ModelError::SizeMismatch {
                expected: n,
                actual: diag.len(),
            });
        }
        Ok(Self {
            adj: SymmetricCsr::from_edges(n, edges)?,
            diag,
        })
    }

    /// Number of binary variables.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.n()
    }

    /// Number of off-diagonal (quadratic) terms.
    pub fn edge_count(&self) -> usize {
        self.adj.edge_count()
    }

    /// Diagonal weight `W_ii`.
    #[inline]
    pub fn diag(&self, i: usize) -> i64 {
        self.diag[i]
    }

    /// All diagonal weights.
    #[inline]
    pub fn diag_slice(&self) -> &[i64] {
        &self.diag
    }

    /// Off-diagonal weight `W_ij` (0 when absent).
    pub fn weight(&self, i: usize, j: usize) -> i64 {
        assert_ne!(i, j, "use diag() for diagonal weights");
        self.adj.weight(i, j)
    }

    /// Sparse adjacency (mirrored).
    #[inline]
    pub fn adjacency(&self) -> &SymmetricCsr {
        &self.adj
    }

    /// Neighbors `(j, W_ij)` of node `i`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        self.adj.neighbors(i)
    }

    /// Direct energy evaluation, `O(n + m)`.
    ///
    /// This is the expensive computation the incremental state exists to
    /// avoid (the paper's `O(n²)` direct cost for dense models); it is used
    /// for initialisation and as the ground truth in consistency checks.
    pub fn energy(&self, x: &Solution) -> i64 {
        assert_eq!(x.len(), self.n(), "solution length mismatch");
        let mut linear = 0i64;
        let mut quad_twice = 0i64;
        for i in x.iter_ones() {
            linear += self.diag[i];
            let (cols, vals) = self.adj.row(i);
            for (k, &j) in cols.iter().enumerate() {
                if x.get(j as usize) {
                    quad_twice += vals[k];
                }
            }
        }
        linear + quad_twice / 2
    }

    /// Direct computation of the one-flip gain
    /// `Δ_i(X) = E(f_i(X)) − E(X)`, `O(deg(i))`.
    pub fn delta(&self, x: &Solution, i: usize) -> i64 {
        let (cols, vals) = self.adj.row(i);
        let mut s = self.diag[i];
        for (k, &j) in cols.iter().enumerate() {
            if x.get(j as usize) {
                s += vals[k];
            }
        }
        // flipping 0→1 adds s, flipping 1→0 removes it
        if x.get(i) {
            -s
        } else {
            s
        }
    }

    /// Convert to the equivalent Ising model.
    ///
    /// Returns `(ising, offset)` with `H(S) = 4·E(X) − offset`, where `S` is
    /// the spin vector `s_i = σ(x_i)`. The factor 4 keeps all coefficients
    /// integral (`J_ij = W_ij`, `h_i = 2 W_ii + Σ_j W_ij`).
    pub fn to_ising(&self) -> (IsingModel, i64) {
        let n = self.n();
        let mut h = vec![0i64; n];
        let mut edges = Vec::with_capacity(self.edge_count());
        for (i, hi) in h.iter_mut().enumerate() {
            *hi = 2 * self.diag[i];
            for (j, w) in self.neighbors(i) {
                *hi += w;
                if i < j {
                    edges.push((i, j, w));
                }
            }
        }
        // 4·E(X) = Σ_{i<j} W_ij (s_i s_j + s_i + s_j + 1) + Σ_i 2 W_ii (s_i + 1)
        //        = H(S) + C,  C = Σ_{i<j} W_ij + 2 Σ_i W_ii
        let c: i64 =
            edges.iter().map(|&(_, _, w)| w).sum::<i64>() + 2 * self.diag.iter().sum::<i64>();
        let ising = IsingModel::new(n, &edges, h).expect("valid by construction");
        (ising, c)
    }

    /// Largest absolute weight (diagonal or off-diagonal); useful for
    /// scaling penalties and annealing schedules.
    pub fn max_abs_weight(&self) -> i64 {
        self.adj
            .max_abs_weight()
            .max(self.diag.iter().map(|v| v.abs()).max().unwrap_or(0))
    }

    /// A crude lower bound on the energy: the sum of every negative term.
    /// `E(X) ≥ lower_bound()` for all `X`; used by branch-and-bound and as a
    /// sanity check in tests.
    pub fn lower_bound(&self) -> i64 {
        let neg_edges: i64 = self.adj.iter_edges().map(|(_, _, w)| w.min(0)).sum();
        let neg_diag: i64 = self.diag.iter().map(|&v| v.min(0)).sum();
        neg_edges + neg_diag
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::{Rng64, Xorshift64Star};

    /// The QUBO model of the paper's Fig. 1(2):
    /// 5 nodes, edges (0,1)=4, (0,3)=-6, (0,4)=-6(?), … — we use our own toy
    /// models here; the Fig. 1 Ising/QUBO equivalence is covered by the
    /// conversion round-trip tests in `ising.rs`.
    fn toy() -> QuboModel {
        // E(X) = 2 x0 x1 - 3 x1 x2 + x0 - 2 x2
        QuboModel::new(3, &[(0, 1, 2), (1, 2, -3)], vec![1, 0, -2]).unwrap()
    }

    #[test]
    fn energy_enumerated_by_hand() {
        let q = toy();
        let cases = [
            ("000", 0),
            ("100", 1),
            ("010", 0),
            ("001", -2),
            ("110", 3),
            ("011", -5),
            ("101", -1),
            ("111", -2),
        ];
        for (bits, expect) in cases {
            assert_eq!(
                q.energy(&Solution::from_bitstring(bits)),
                expect,
                "E({bits})"
            );
        }
    }

    #[test]
    fn delta_matches_energy_difference() {
        let q = toy();
        for bits in ["000", "100", "010", "001", "110", "011", "101", "111"] {
            let x = Solution::from_bitstring(bits);
            for i in 0..3 {
                let mut y = x.clone();
                y.flip(i);
                assert_eq!(q.delta(&x, i), q.energy(&y) - q.energy(&x), "Δ_{i}({bits})");
            }
        }
    }

    #[test]
    fn zero_vector_energy_and_deltas() {
        // Paper: X = 0 ⇒ E = 0 and Δ_k = W_kk.
        let q = toy();
        let z = Solution::zeros(3);
        assert_eq!(q.energy(&z), 0);
        for i in 0..3 {
            assert_eq!(q.delta(&z, i), q.diag(i));
        }
    }

    #[test]
    fn random_delta_consistency() {
        let mut rng = Xorshift64Star::new(11);
        let n = 40;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(0.2) {
                    edges.push((i, j, rng.next_range_i64(-9, 9)));
                }
            }
        }
        let diag: Vec<i64> = (0..n).map(|_| rng.next_range_i64(-9, 9)).collect();
        let q = QuboModel::new(n, &edges, diag).unwrap();
        for _ in 0..20 {
            let x = Solution::random(n, &mut rng);
            let e = q.energy(&x);
            for i in 0..n {
                let mut y = x.clone();
                y.flip(i);
                assert_eq!(q.delta(&x, i), q.energy(&y) - e);
            }
        }
    }

    #[test]
    fn lower_bound_holds_exhaustively() {
        let q = toy();
        let lb = q.lower_bound();
        for v in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|i| (v >> i) & 1 == 1).collect();
            assert!(q.energy(&Solution::from_bits(&bits)) >= lb);
        }
    }

    #[test]
    fn rejects_mismatched_diag() {
        assert!(QuboModel::new(3, &[], vec![0, 0]).is_err());
    }

    #[test]
    fn weight_accessors() {
        let q = toy();
        assert_eq!(q.weight(0, 1), 2);
        assert_eq!(q.weight(1, 0), 2);
        assert_eq!(q.weight(0, 2), 0);
        assert_eq!(q.diag(2), -2);
        assert_eq!(q.max_abs_weight(), 3);
        assert_eq!(q.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "use diag()")]
    fn weight_panics_on_diagonal_query() {
        toy().weight(1, 1);
    }
}
