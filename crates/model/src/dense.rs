//! Dense bit-packed weight storage for the dense energy kernel.
//!
//! [`DenseStrips`] holds the off-diagonal matrix `W` row-major, with every
//! row padded to a whole number of 64-column *strips* aligned to the
//! [`crate::Solution`] word layout: strip `s` of row `i` covers columns
//! `64s … 64s+63`, exactly the bits of solution word `s`. A one-flip delta
//! update then walks one contiguous row while reading the solution one
//! machine word at a time — a strided multiply-accumulate with no index
//! chasing, branchless sign application, and a delta write pattern that is
//! itself contiguous. This is what the paper's GPU kernel does with `W` in
//! global memory; on CPUs it is what lets high-density instances beat the
//! CSR kernel's per-edge column lookups.
//!
//! The diagonal is stored as zero inside the strips (so the `j == i` lane of
//! a flip update contributes nothing) and the padding lanes beyond `n` are
//! zero too, so whole-strip arithmetic never needs a tail mask for the
//! weights — only the delta vector, whose length is exactly `n`, bounds the
//! final partial strip.

use crate::SymmetricCsr;
use serde::{Deserialize, Serialize};

/// Row-major dense `W` with rows padded to 64-column strips.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenseStrips {
    n: usize,
    /// Columns per row after padding: `n.div_ceil(64) * 64`.
    stride: usize,
    /// `n * stride` weights; `w[i * stride + j] = W_ij`, diagonal and
    /// padding lanes zero.
    w: Vec<i64>,
}

impl DenseStrips {
    /// Materialize the mirrored CSR adjacency as padded dense rows.
    pub fn from_csr(adj: &SymmetricCsr) -> Self {
        let n = adj.n();
        let stride = n.div_ceil(64) * 64;
        let mut w = vec![0i64; n * stride];
        for i in 0..n {
            let row = &mut w[i * stride..(i + 1) * stride];
            for (j, weight) in adj.neighbors(i) {
                row[j] = weight;
            }
        }
        Self { n, stride, w }
    }

    /// Number of variables (unpadded logical columns).
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Padded row width — a multiple of 64.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Heap footprint of the weight matrix in bytes.
    pub fn bytes(&self) -> usize {
        self.w.len() * std::mem::size_of::<i64>()
    }

    /// Full padded row `i` (length [`Self::stride`]).
    #[inline]
    pub fn row(&self, i: usize) -> &[i64] {
        &self.w[i * self.stride..(i + 1) * self.stride]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_mirror_csr_and_pad_with_zeros() {
        let adj = SymmetricCsr::from_edges(5, &[(0, 1, 7), (1, 4, -3), (2, 3, 2)]).unwrap();
        let d = DenseStrips::from_csr(&adj);
        assert_eq!(d.n(), 5);
        assert_eq!(d.stride(), 64);
        assert_eq!(d.row(0)[1], 7);
        assert_eq!(d.row(1)[0], 7);
        assert_eq!(d.row(1)[4], -3);
        assert_eq!(d.row(4)[1], -3);
        // diagonal and padding stay zero
        for i in 0..5 {
            assert_eq!(d.row(i)[i], 0);
            assert!(d.row(i)[5..].iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn stride_rounds_up_to_word_multiples() {
        for (n, expect) in [(1, 64), (64, 64), (65, 128), (130, 192)] {
            let edges = [(0usize, n.max(2) - 1, 1i64)];
            let adj = SymmetricCsr::from_edges(n.max(2), &edges).unwrap();
            let d = DenseStrips::from_csr(&adj);
            if n >= 2 {
                assert_eq!(d.stride(), expect, "n = {n}");
            }
        }
    }

    #[test]
    fn bytes_accounts_padded_rows() {
        let adj = SymmetricCsr::from_edges(3, &[(0, 1, 1)]).unwrap();
        let d = DenseStrips::from_csr(&adj);
        assert_eq!(d.bytes(), 3 * 64 * 8);
    }
}
