//! Incremental one-flip search state (the paper's §III-A).
//!
//! [`IncrementalState`] maintains, for a current vector `X`:
//!
//! * the energy `E(X)`,
//! * every one-flip gain `Δ_k(X) = E(f_k(X)) − E(X)`.
//!
//! After flipping bit `i`, the update rules are (paper Eqs. 4–5):
//!
//! ```text
//! Δ_k ← Δ_k + W_ik · σ(x_i) · σ(x_k)   for k ≠ i   (σ of the pre-flip x_i)
//! Δ_i ← −Δ_i
//! E   ← E + Δ_i(old)
//! ```
//!
//! so a flip costs `O(deg(i))` instead of the `O(n²)` direct evaluation.
//! Every search algorithm in `dabs-search` and every annealing baseline runs
//! on this state.
//!
//! The state is generic over a [`QuboKernel`] backend so the flip loop
//! monomorphizes per weight layout: [`CsrKernel`] (the default, and the only
//! choice before the backend layer existed) chases the mirrored CSR row of
//! the flipped bit, while [`crate::DenseKernel`] streams a padded dense row
//! in 64-column strips. Both produce bit-identical energies and deltas; the
//! backend only changes how fast they appear.
//!
//! On top of the Δ array the state maintains a lazy
//! [`SegmentAggregates`] layer (per-64-gain `min`/`max`, dirty-tracked by
//! the kernels — see [`crate::segments`]), which turns the selection
//! primitives every search strategy uses ([`IncrementalState::min_delta`],
//! [`IncrementalState::min_max_argmin`], [`IncrementalState::select_le`],
//! [`IncrementalState::window_argmin`], …) from `O(n)` re-scans into
//! `O(n/64 + dirty)` reductions, while keeping their results **bit-identical**
//! to a sequential scan (same tie-breaks, same reservoir-sampling RNG
//! stream — the parity suite in `tests/solver_parity.rs` enforces this
//! against the reference scan path in `dabs_search::reference`).

use crate::segments::{seg_of, SegmentAggregates, SEG_SHIFT};
use crate::{CsrKernel, DenseKernel, QuboKernel, QuboModel, Solution};
use dabs_rng::Rng64;

/// Current solution, its energy, and all one-flip gains.
#[derive(Debug, Clone)]
pub struct IncrementalState<'m, K: QuboKernel = CsrKernel<'m>> {
    model: &'m QuboModel,
    kernel: K,
    x: Solution,
    energy: i64,
    delta: Vec<i64>,
    segs: SegmentAggregates,
    flips: u64,
}

impl<'m> IncrementalState<'m, CsrKernel<'m>> {
    /// CSR-backed state from the all-zeros vector: `E = 0`, `Δ_k = W_kk`.
    pub fn new(model: &'m QuboModel) -> Self {
        Self::with_kernel(model, CsrKernel::new(model))
    }

    /// CSR-backed state from an arbitrary vector (`O(n + m)` single-pass
    /// initialisation).
    pub fn from_solution(model: &'m QuboModel, x: Solution) -> Self {
        Self::from_solution_with(model, CsrKernel::new(model), x)
    }
}

impl<'m> IncrementalState<'m, DenseKernel<'m>> {
    /// Dense-backed state from the all-zeros vector. Panics when `model`
    /// did not build dense storage (`KernelChoice::Dense`, or `Auto` on a
    /// dense instance).
    pub fn new_dense(model: &'m QuboModel) -> Self {
        Self::with_kernel(model, DenseKernel::new(model))
    }

    /// Dense-backed state from an arbitrary vector.
    pub fn from_solution_dense(model: &'m QuboModel, x: Solution) -> Self {
        Self::from_solution_with(model, DenseKernel::new(model), x)
    }
}

impl<'m, K: QuboKernel> IncrementalState<'m, K> {
    /// Start from the all-zeros vector on an explicit kernel:
    /// `E = 0`, `Δ_k = W_kk` — no weight pass needed.
    pub fn with_kernel(model: &'m QuboModel, kernel: K) -> Self {
        assert_eq!(kernel.n(), model.n(), "kernel/model size mismatch");
        Self {
            x: Solution::zeros(model.n()),
            energy: 0,
            delta: kernel.diag().to_vec(),
            segs: SegmentAggregates::all_dirty(model.n()),
            model,
            kernel,
            flips: 0,
        }
    }

    /// Start from an arbitrary vector on an explicit kernel. Uses the
    /// kernel's single-pass `O(n + m)` initialisation: energy and all `n`
    /// gains come out of one sweep over the stored weights (the old path
    /// swept them twice — once for `E(X)`, once more for the `Δ_k`).
    pub fn from_solution_with(model: &'m QuboModel, kernel: K, x: Solution) -> Self {
        assert_eq!(kernel.n(), model.n(), "kernel/model size mismatch");
        assert_eq!(x.len(), model.n(), "solution length mismatch");
        let mut delta = vec![0i64; model.n()];
        let energy = kernel.init(&x, &mut delta);
        Self {
            segs: SegmentAggregates::all_dirty(model.n()),
            model,
            kernel,
            x,
            energy,
            delta,
            flips: 0,
        }
    }

    /// The model this state evaluates.
    #[inline]
    pub fn model(&self) -> &'m QuboModel {
        self.model
    }

    /// Name of the kernel backend driving the flips.
    #[inline]
    pub fn kernel_name(&self) -> &'static str {
        self.kernel.kernel_name()
    }

    /// Number of bits.
    #[inline]
    pub fn n(&self) -> usize {
        self.delta.len()
    }

    /// Current energy `E(X)`.
    #[inline]
    pub fn energy(&self) -> i64 {
        self.energy
    }

    /// Current vector.
    #[inline]
    pub fn solution(&self) -> &Solution {
        &self.x
    }

    /// Gain of flipping bit `k`.
    #[inline]
    pub fn delta(&self, k: usize) -> i64 {
        self.delta[k]
    }

    /// All gains (hot-path accessor for the scan-style algorithms).
    #[inline]
    pub fn deltas(&self) -> &[i64] {
        &self.delta
    }

    /// Value of bit `i`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        self.x.get(i)
    }

    /// Total flips applied to this state since creation (the paper counts
    /// search effort in flips; batch termination is `≥ b·n` flips).
    #[inline]
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Lifetime lazy segment re-reductions performed by this state's
    /// aggregates (see [`SegmentAggregates::reductions`]).
    #[inline]
    pub fn seg_reductions(&self) -> u64 {
        self.segs.reductions()
    }

    /// Flip bit `i`, updating the energy, all gains, and the dirtied
    /// segment aggregates. Returns the new energy. `O(deg(i))` (dense
    /// backend: `O(n)` cheap contiguous lanes).
    pub fn flip(&mut self, i: usize) -> i64 {
        let d_i = self.delta[i];
        self.energy += d_i;
        // Δ_j += W_ij σ(x_i_pre) σ(x_j) for all j ≠ i — the backend's job,
        // which also reports (or inline-repairs) the segments it dirtied.
        self.kernel
            .apply_flip_seg(&self.x, i, &mut self.delta, &mut self.segs);
        self.delta[i] = -d_i;
        self.segs.update(i, d_i, -d_i);
        self.x.flip(i);
        self.flips += 1;
        self.energy
    }

    /// Bring both sides of the segment aggregates up to date
    /// (`O(dirty × 64)`, no-op when clean).
    #[inline]
    fn refresh(&mut self) {
        self.segs.refresh(&self.delta);
    }

    /// Bring only the min/argmin side up to date — what every min-bound
    /// primitive needs; max staleness is left for the (rarer) max readers.
    #[inline]
    fn refresh_min(&mut self) {
        self.segs.refresh_min(&self.delta);
    }

    /// Index of a minimum-gain bit and its gain (`argmin_k Δ_k`). Ties break
    /// to the lowest index, matching a sequential scan. `O(n/64 + dirty)`
    /// via the segment aggregates.
    pub fn min_delta(&mut self) -> (usize, i64) {
        self.refresh_min();
        let mut seg = 0usize;
        let mut mn = self.segs.min_of(0);
        for s in 1..self.segs.segments() {
            let m = self.segs.min_of(s);
            if m < mn {
                mn = m;
                seg = s;
            }
        }
        (self.segs.argmin_of(seg), mn)
    }

    /// `(min Δ, max Δ)` over all bits — used by MaxMin's threshold schedule.
    pub fn min_max_delta(&mut self) -> (i64, i64) {
        let (_, lo, hi) = self.min_max_argmin();
        (lo, hi)
    }

    /// `(argmin, min Δ, max Δ)` in one aggregate pass — the fused "pass 1"
    /// of the MaxMin-style strategies. The argmin ties break to the lowest
    /// index, exactly like the sequential scan it replaces.
    pub fn min_max_argmin(&mut self) -> (usize, i64, i64) {
        self.refresh();
        let mut seg = 0usize;
        let mut lo = self.segs.min_of(0);
        let mut hi = self.segs.max_of(0);
        for s in 1..self.segs.segments() {
            let m = self.segs.min_of(s);
            if m < lo {
                lo = m;
                seg = s;
            }
            let x = self.segs.max_of(s);
            hi = if x > hi { x } else { hi };
        }
        (self.segs.argmin_of(seg), lo, hi)
    }

    /// Smallest strictly positive gain, or `i64::MAX` when no gain is
    /// positive — PositiveMin's threshold. A segment whose min is positive
    /// resolves from the aggregate alone (its min *is* its smallest
    /// positive); only segments holding non-positive gains are scanned.
    /// Near a local minimum nearly all gains are positive, so this is
    /// `O(n/64)` exactly where PositiveMin spends its time.
    pub fn positive_min_delta(&mut self) -> i64 {
        self.refresh_min();
        let mut posmin = i64::MAX;
        for s in 0..self.segs.segments() {
            let mn = self.segs.min_of(s);
            if mn > 0 {
                posmin = posmin.min(mn);
                continue;
            }
            let (lo, hi) = self.segs.bounds(s);
            for &d in &self.delta[lo..hi] {
                if d > 0 && d < posmin {
                    posmin = d;
                }
            }
        }
        posmin
    }

    /// Reservoir-sample uniformly among `{k : Δ_k ≤ bound ∧ allowed(k)}` in
    /// index order, skipping whole segments whose min exceeds the bound.
    /// Draws exactly the same RNG stream as a full sequential scan — skipped
    /// segments contain no candidates, so no draw is elided — making the
    /// choice bit-identical to the pre-segment code. Returns `None` when no
    /// candidate survives `allowed`.
    pub fn select_le<R: Rng64 + ?Sized>(
        &mut self,
        bound: i64,
        rng: &mut R,
        allowed: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        self.select_le_by(|mn| mn <= bound, |d| d <= bound, rng, allowed)
    }

    /// [`IncrementalState::select_le`] against a floating-point threshold
    /// (MaxMin's `d ~ Uniform[minΔ, D(t)]`), with the candidate test
    /// `(Δ_k as f64) ≤ bound` evaluated exactly as the scan did.
    pub fn select_le_f64<R: Rng64 + ?Sized>(
        &mut self,
        bound: f64,
        rng: &mut R,
        allowed: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        // `(d as f64) ≤ bound ⟺ d ≤ ⌊bound⌋` in exact arithmetic, and the
        // i64→f64 rounding error (≤ |d|·2⁻⁵³) cannot flip the comparison
        // while |bound| < 2⁵²: any `d` on the wrong side of ⌊bound⌋ is
        // separated from it by ≥ 2⁵² − 2⁵² ≫ the error once |d| leaves the
        // exactly-representable range. Integer compares drop a per-lane
        // int→float conversion from the hot loop.
        const EXACT: f64 = (1u64 << 52) as f64;
        if bound.abs() < EXACT {
            return self.select_le(bound.floor() as i64, rng, allowed);
        }
        self.select_le_by(
            |mn| (mn as f64) <= bound,
            |d| (d as f64) <= bound,
            rng,
            allowed,
        )
    }

    fn select_le_by<R: Rng64 + ?Sized>(
        &mut self,
        seg_may_hold: impl Fn(i64) -> bool,
        candidate: impl Fn(i64) -> bool,
        rng: &mut R,
        allowed: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        self.refresh_min();
        let mut chosen = None;
        let mut count = 0u64;
        for s in 0..self.segs.segments() {
            if !seg_may_hold(self.segs.min_of(s)) {
                continue;
            }
            let (lo, hi) = self.segs.bounds(s);
            for k in lo..hi {
                if candidate(self.delta[k]) && allowed(k) {
                    count += 1;
                    if rng.next_below(count) == 0 {
                        chosen = Some(k);
                    }
                }
            }
        }
        chosen
    }

    /// Argmin over the cyclic window `[start, start + width)` (mod `n`),
    /// visited in window order — CyclicMin's selection. Returns
    /// `(allowed_argmin, unrestricted_argmin)`; the first is `usize::MAX`
    /// when `allowed` rejects the whole window. Both argmins break ties to
    /// the earliest window position, exactly like the element-wise sweep;
    /// whole segments inside the window are skipped when their aggregate
    /// min cannot improve either running minimum.
    pub fn window_argmin(
        &mut self,
        start: usize,
        width: usize,
        allowed: impl Fn(usize) -> bool,
    ) -> (usize, usize) {
        let n = self.n();
        debug_assert!(start < n && width >= 1 && width <= n);
        self.refresh_min();
        let mut arg = usize::MAX;
        let mut min_d = i64::MAX;
        let mut arg_any = usize::MAX;
        let mut min_any = i64::MAX;
        let scan_range = |lo: usize,
                          hi: usize,
                          arg: &mut usize,
                          min_d: &mut i64,
                          arg_any: &mut usize,
                          min_any: &mut i64| {
            let mut k = lo;
            while k < hi {
                let seg = seg_of(k);
                let (_, seg_hi) = self.segs.bounds(seg);
                let chunk_hi = seg_hi.min(hi);
                // A whole in-window segment whose min cannot beat the
                // allowed minimum cannot beat the unrestricted one either
                // (min_any ≤ min_d always) — skip it outright.
                if k == seg << SEG_SHIFT && chunk_hi == seg_hi && self.segs.min_of(seg) >= *min_d {
                    k = chunk_hi;
                    continue;
                }
                for j in k..chunk_hi {
                    let d = self.delta[j];
                    if d < *min_any {
                        *min_any = d;
                        *arg_any = j;
                    }
                    if d < *min_d && allowed(j) {
                        *min_d = d;
                        *arg = j;
                    }
                }
                k = chunk_hi;
            }
        };
        let end = start + width;
        if end <= n {
            scan_range(start, end, &mut arg, &mut min_d, &mut arg_any, &mut min_any);
        } else {
            scan_range(start, n, &mut arg, &mut min_d, &mut arg_any, &mut min_any);
            scan_range(0, end - n, &mut arg, &mut min_d, &mut arg_any, &mut min_any);
        }
        (arg, arg_any)
    }

    /// The best energy among all one-bit neighbours: `E(X) + min_k Δ_k`
    /// (Step 1 of the paper's incremental search algorithm). Returns
    /// `(bit, neighbour_energy)`.
    pub fn best_neighbor(&mut self) -> (usize, i64) {
        let (k, d) = self.min_delta();
        (k, self.energy + d)
    }

    /// Replace the current vector wholesale (`O(n + m)` single-pass
    /// re-init). Keeps the flip counter.
    pub fn reset_to(&mut self, x: Solution) {
        assert_eq!(x.len(), self.model.n());
        self.energy = self.kernel.init(&x, &mut self.delta);
        self.segs.mark_all();
        self.x = x;
    }

    /// Debug-build consistency check: recompute energy, all gains, and the
    /// segment aggregates from scratch — via the model's direct CSR
    /// evaluation, which is independent of the active kernel backend — and
    /// compare. Test helper; panics on divergence.
    pub fn assert_consistent(&mut self) {
        let e = self.model.energy(&self.x);
        assert_eq!(e, self.energy, "incremental energy diverged");
        assert_eq!(
            self.kernel.energy(&self.x),
            self.energy,
            "kernel energy diverged"
        );
        for i in 0..self.n() {
            assert_eq!(
                self.model.delta(&self.x, i),
                self.delta[i],
                "Δ_{i} diverged"
            );
        }
        self.refresh();
        self.segs.assert_matches(&self.delta);
    }
}

/// Tracks the best (lowest-energy) solution observed during a search,
/// including one-bit neighbours (the paper's `BEST` / `E(BEST)` registers
/// kept in shared memory, updated via `atomicMin`).
#[derive(Debug, Clone)]
pub struct BestTracker {
    best: Solution,
    best_energy: i64,
}

impl BestTracker {
    /// Start from an explicit solution/energy pair.
    pub fn new(solution: Solution, energy: i64) -> Self {
        Self {
            best: solution,
            best_energy: energy,
        }
    }

    /// Start "empty": any observation will replace it.
    pub fn unbounded(n: usize) -> Self {
        Self {
            best: Solution::zeros(n),
            best_energy: i64::MAX,
        }
    }

    /// Record the state's current vector if it improves the best.
    #[inline]
    pub fn observe<K: QuboKernel>(&mut self, state: &IncrementalState<'_, K>) {
        if state.energy() < self.best_energy {
            self.best_energy = state.energy();
            self.best = state.solution().clone();
        }
    }

    /// Record the state's best one-bit neighbour if it improves the best
    /// (Step 1 of the incremental search algorithm). Costs `O(n/64 + dirty)`
    /// for the aggregate argmin plus `O(n)` for the clone only when an
    /// improvement is found — the same "atomicMin rarely fires" argument as
    /// the paper's §V. Takes the state mutably because the argmin may
    /// refresh dirty segment aggregates.
    pub fn observe_neighborhood<K: QuboKernel>(&mut self, state: &mut IncrementalState<'_, K>) {
        let (k, e) = state.best_neighbor();
        if e < self.best_energy {
            let mut sol = state.solution().clone();
            sol.flip(k);
            self.best_energy = e;
            self.best = sol;
        }
        // the current point itself also counts
        self.observe(state);
    }

    /// Record the one-bit neighbour `f_k(X)` if it improves the best.
    /// Used by algorithms that already know their argmin bit, so the `O(n)`
    /// rescan of [`Self::observe_neighborhood`] is skipped.
    #[inline]
    pub fn observe_neighbor<K: QuboKernel>(&mut self, state: &IncrementalState<'_, K>, k: usize) {
        let e = state.energy() + state.delta(k);
        if e < self.best_energy {
            let mut sol = state.solution().clone();
            sol.flip(k);
            self.best_energy = e;
            self.best = sol;
        }
    }

    /// Record an explicit solution/energy pair (e.g. from another worker).
    #[inline]
    pub fn observe_value(&mut self, solution: &Solution, energy: i64) {
        if energy < self.best_energy {
            self.best_energy = energy;
            self.best = solution.clone();
        }
    }

    /// Best energy so far.
    #[inline]
    pub fn energy(&self) -> i64 {
        self.best_energy
    }

    /// Best solution so far.
    #[inline]
    pub fn solution(&self) -> &Solution {
        &self.best
    }

    /// Consume into `(solution, energy)`.
    pub fn into_parts(self) -> (Solution, i64) {
        (self.best, self.best_energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuboBuilder;
    use dabs_rng::{Rng64, Xorshift64Star};

    fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn initial_state_matches_paper() {
        let q = random_model(20, 0.3, 1);
        let mut st = IncrementalState::new(&q);
        assert_eq!(st.energy(), 0);
        for i in 0..20 {
            assert_eq!(st.delta(i), q.diag(i));
        }
        st.assert_consistent();
    }

    #[test]
    fn flips_stay_consistent() {
        let q = random_model(30, 0.25, 2);
        let mut st = IncrementalState::new(&q);
        let mut rng = Xorshift64Star::new(3);
        for _ in 0..200 {
            st.flip(rng.next_index(30));
        }
        st.assert_consistent();
        assert_eq!(st.flips(), 200);
    }

    #[test]
    fn double_flip_is_identity() {
        let q = random_model(15, 0.4, 4);
        let mut st = IncrementalState::new(&q);
        let before_e = st.energy();
        let before_d: Vec<i64> = st.deltas().to_vec();
        st.flip(7);
        st.flip(7);
        assert_eq!(st.energy(), before_e);
        assert_eq!(st.deltas(), &before_d[..]);
    }

    #[test]
    fn flip_returns_new_energy() {
        let q = random_model(10, 0.5, 5);
        let mut st = IncrementalState::new(&q);
        let expect = st.energy() + st.delta(3);
        assert_eq!(st.flip(3), expect);
    }

    #[test]
    fn from_solution_matches_fresh_flips() {
        let q = random_model(25, 0.3, 6);
        let mut rng = Xorshift64Star::new(7);
        let x = Solution::random(25, &mut rng);
        let mut st = IncrementalState::from_solution(&q, x.clone());
        st.assert_consistent();
        assert_eq!(st.energy(), q.energy(&x));
    }

    #[test]
    fn min_delta_and_minmax() {
        let q = random_model(40, 0.2, 8);
        let mut rng = Xorshift64Star::new(9);
        let mut st = IncrementalState::from_solution(&q, Solution::random(40, &mut rng));
        let (k, d) = st.min_delta();
        assert_eq!(d, *st.deltas().iter().min().unwrap());
        assert_eq!(st.delta(k), d);
        let (lo, hi) = st.min_max_delta();
        assert_eq!(lo, d);
        assert_eq!(hi, *st.deltas().iter().max().unwrap());
    }

    #[test]
    fn best_neighbor_energy() {
        let q = random_model(12, 0.5, 10);
        let mut rng = Xorshift64Star::new(11);
        let mut st = IncrementalState::from_solution(&q, Solution::random(12, &mut rng));
        let (k, e) = st.best_neighbor();
        let mut y = st.solution().clone();
        y.flip(k);
        assert_eq!(q.energy(&y), e);
        // no neighbour beats it
        for i in 0..12 {
            let mut z = st.solution().clone();
            z.flip(i);
            assert!(q.energy(&z) >= e);
        }
    }

    #[test]
    fn reset_to_reinitialises() {
        let q = random_model(16, 0.4, 12);
        let mut rng = Xorshift64Star::new(13);
        let mut st = IncrementalState::new(&q);
        st.flip(0);
        st.flip(5);
        let y = Solution::random(16, &mut rng);
        st.reset_to(y.clone());
        assert_eq!(st.energy(), q.energy(&y));
        st.assert_consistent();
    }

    #[test]
    fn best_tracker_observes_improvements() {
        let q = random_model(10, 0.5, 14);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(10);
        best.observe(&st);
        assert_eq!(best.energy(), 0);
        let mut rng = Xorshift64Star::new(15);
        let mut lowest = 0i64;
        for _ in 0..100 {
            st.flip(rng.next_index(10));
            best.observe(&st);
            lowest = lowest.min(st.energy());
        }
        assert_eq!(best.energy(), lowest);
        assert_eq!(q.energy(best.solution()), best.energy());
    }

    #[test]
    fn best_tracker_sees_one_bit_neighbours() {
        let q = random_model(10, 0.5, 16);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(10);
        best.observe_neighborhood(&mut st);
        let (_, e) = st.best_neighbor();
        assert_eq!(best.energy(), e.min(st.energy()));
        assert_eq!(q.energy(best.solution()), best.energy());
    }

    #[test]
    fn dense_model_consistency_walk() {
        let q = random_model(50, 1.0, 17);
        let mut st = IncrementalState::new(&q);
        let mut rng = Xorshift64Star::new(18);
        for step in 0..500 {
            st.flip(rng.next_index(50));
            if step % 97 == 0 {
                st.assert_consistent();
            }
        }
        st.assert_consistent();
    }

    #[test]
    fn single_pass_init_matches_the_old_two_pass_path() {
        // Regression for the `from_solution` rewrite: the single-pass
        // kernel init must equal the old reference computation — a full
        // `model.energy(&x)` sweep followed by n independent
        // `model.delta(&x, i)` evaluations — on both backends, across
        // densities and word-boundary sizes.
        for (n, density) in [(25, 0.05), (63, 0.3), (64, 0.95), (65, 0.5), (100, 1.0)] {
            let mut q = random_model(n, density, 600 + n as u64);
            q.select_kernel(crate::KernelChoice::Dense);
            let mut rng = Xorshift64Star::new(700 + n as u64);
            for _ in 0..5 {
                let x = Solution::random(n, &mut rng);
                let old_energy = q.energy(&x);
                let old_delta: Vec<i64> = (0..n).map(|i| q.delta(&x, i)).collect();
                let csr = IncrementalState::from_solution(&q, x.clone());
                assert_eq!(csr.energy(), old_energy, "csr energy n={n}");
                assert_eq!(csr.deltas(), &old_delta[..], "csr deltas n={n}");
                let dense = IncrementalState::from_solution_dense(&q, x.clone());
                assert_eq!(dense.energy(), old_energy, "dense energy n={n}");
                assert_eq!(dense.deltas(), &old_delta[..], "dense deltas n={n}");
            }
        }
    }

    #[test]
    fn dense_backed_state_walks_consistently() {
        let mut q = random_model(70, 0.8, 19);
        q.select_kernel(crate::KernelChoice::Dense);
        assert_eq!(q.kernel_kind(), crate::KernelKind::Dense);
        let mut st = IncrementalState::new_dense(&q);
        assert_eq!(st.kernel_name(), "dense");
        let mut rng = Xorshift64Star::new(20);
        for step in 0..400 {
            st.flip(rng.next_index(70));
            if step % 89 == 0 {
                st.assert_consistent();
            }
        }
        st.assert_consistent();
    }

    #[test]
    fn reset_to_reinitialises_dense_state() {
        let mut q = random_model(33, 0.7, 21);
        q.select_kernel(crate::KernelChoice::Dense);
        let mut rng = Xorshift64Star::new(22);
        let mut st = IncrementalState::new_dense(&q);
        st.flip(3);
        st.flip(17);
        let y = Solution::random(33, &mut rng);
        st.reset_to(y.clone());
        assert_eq!(st.energy(), q.energy(&y));
        st.assert_consistent();
    }
}
