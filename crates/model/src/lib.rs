//! Binary Quadratic Models (BQMs): QUBO and Ising representations.
//!
//! A **QUBO** (Quadratic Unconstrained Binary Optimization) problem asks for
//! the binary vector `X = x_0 x_1 … x_{n-1}` (each `x_i ∈ {0,1}`) minimising
//!
//! ```text
//! E(X) = Σ_{(i,j) ∈ E} W_ij · x_i · x_j  +  Σ_i W_ii · x_i
//! ```
//!
//! An **Ising** model is the ±1-spin equivalent; the two are interconvertible
//! with a constant energy offset (see [`IsingModel::to_qubo`]).
//!
//! This crate provides:
//!
//! * [`Solution`] — a packed bit vector with O(1) flips and fast Hamming ops,
//! * [`QuboModel`] / [`IsingModel`] — CSR-backed sparse symmetric models,
//! * [`QuboBuilder`] — incremental construction with term accumulation,
//! * [`QuboKernel`] — pluggable energy backends: [`CsrKernel`] for sparse
//!   instances, [`DenseKernel`] (bit-packed strips) for dense ones,
//!   auto-selected per model by density and overridable via
//!   [`KernelChoice`],
//! * [`IncrementalState`] — current vector + energy + all one-flip gains
//!   `Δ_k(X) = E(f_k(X)) − E(X)`, maintained in `O(deg(k))` per flip (the
//!   paper's Eqs. 3–5), generic over the kernel. Every DABS search
//!   algorithm runs on this state.
//! * [`SegmentAggregates`] ([`segments`]) — incrementally maintained
//!   per-64-gain min/argmin/max over the Δ array, turning the selection
//!   primitives every strategy uses ([`IncrementalState::min_delta`],
//!   [`IncrementalState::select_le`], …) from `O(n)` re-scans into
//!   `O(n/64 + dirty)` reductions with bit-identical results.
//!
//! Weights and energies are `i64` throughout: every benchmark in the paper is
//! integral, and integer energies make optimality assertions exact.

pub mod batch_kernel;
mod builder;
mod csr;
mod dense;
mod error;
mod incremental;
pub mod io;
mod ising;
mod kernel;
mod qubo;
pub mod segments;
mod solution;

pub use batch_kernel::{valid_lanes, BatchKernel, BatchState, MAX_BATCH_LANES, MIN_BATCH_LANES};
pub use builder::QuboBuilder;
pub use csr::SymmetricCsr;
pub use dense::DenseStrips;
pub use error::ModelError;
pub use incremental::{BestTracker, IncrementalState};
pub use ising::IsingModel;
pub use kernel::{
    CsrKernel, DenseKernel, KernelChoice, KernelKind, QuboKernel, DENSE_AUTO_MAX_N,
    DENSE_DENSITY_THRESHOLD,
};
pub use qubo::QuboModel;
pub use segments::{SegmentAggregates, SEG_WIDTH};
pub use solution::Solution;

/// The spin map `σ(x) = 2x − 1`, i.e. `σ(0) = −1`, `σ(1) = +1`.
#[inline(always)]
pub fn sigma(bit: bool) -> i64 {
    if bit {
        1
    } else {
        -1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_maps_bits_to_spins() {
        assert_eq!(sigma(false), -1);
        assert_eq!(sigma(true), 1);
    }
}
