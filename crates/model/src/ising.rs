//! The Ising model: `H(S) = Σ_{(i,j)∈E} J_ij s_i s_j + Σ_i h_i s_i`.
//!
//! Spins are stored as bits with the map `σ(x) = 2x − 1` (bit 0 → spin −1,
//! bit 1 → spin +1), so [`Solution`] doubles as a spin vector.

use crate::{sigma, ModelError, QuboModel, Solution, SymmetricCsr};
use serde::{Deserialize, Serialize};

/// An Ising model over ±1 spins.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IsingModel {
    couplings: SymmetricCsr,
    biases: Vec<i64>,
}

impl IsingModel {
    /// Build from an interaction edge list and dense biases.
    pub fn new(
        n: usize,
        interactions: &[(usize, usize, i64)],
        biases: Vec<i64>,
    ) -> Result<Self, ModelError> {
        if biases.len() != n {
            return Err(ModelError::SizeMismatch {
                expected: n,
                actual: biases.len(),
            });
        }
        Ok(Self {
            couplings: SymmetricCsr::from_edges(n, interactions)?,
            biases,
        })
    }

    /// Number of spins.
    #[inline]
    pub fn n(&self) -> usize {
        self.couplings.n()
    }

    /// Number of interactions.
    pub fn edge_count(&self) -> usize {
        self.couplings.edge_count()
    }

    /// Bias `h_i`.
    #[inline]
    pub fn bias(&self, i: usize) -> i64 {
        self.biases[i]
    }

    /// Interaction `J_ij` (0 when absent).
    pub fn coupling(&self, i: usize, j: usize) -> i64 {
        self.couplings.weight(i, j)
    }

    /// Sparse coupling structure.
    #[inline]
    pub fn couplings(&self) -> &SymmetricCsr {
        &self.couplings
    }

    /// The Hamiltonian `H(S)` of a spin assignment encoded as bits.
    pub fn hamiltonian(&self, spins: &Solution) -> i64 {
        assert_eq!(spins.len(), self.n(), "spin vector length mismatch");
        let mut h = 0i64;
        for (i, j, jij) in self.couplings.iter_edges() {
            h += jij * sigma(spins.get(i)) * sigma(spins.get(j));
        }
        for (i, &hi) in self.biases.iter().enumerate() {
            h += hi * sigma(spins.get(i));
        }
        h
    }

    /// Convert to the equivalent QUBO model.
    ///
    /// Returns `(qubo, offset)` such that `H(S) = E(X) + offset` for every
    /// assignment, where `x_i = (s_i + 1)/2`. This is the conversion used to
    /// feed QASP (random Ising on an annealer topology) to the QUBO solver.
    ///
    /// Derivation: substituting `s = 2x − 1`:
    /// `J s_i s_j = 4J x_i x_j − 2J x_i − 2J x_j + J`,
    /// `h s_i = 2h x_i − h`, so
    /// `W_ij = 4 J_ij`, `W_ii = 2 h_i − 2 Σ_j J_ij`,
    /// `offset = Σ J_ij − Σ h_i`.
    pub fn to_qubo(&self) -> (QuboModel, i64) {
        let n = self.n();
        let mut diag = vec![0i64; n];
        let mut edges = Vec::with_capacity(self.edge_count());
        for (i, d) in diag.iter_mut().enumerate() {
            *d = 2 * self.biases[i];
            for (j, jij) in self.couplings.neighbors(i) {
                *d -= 2 * jij;
                if i < j {
                    edges.push((i, j, 4 * jij));
                }
            }
        }
        let offset: i64 = self.couplings.iter_edges().map(|(_, _, j)| j).sum::<i64>()
            - self.biases.iter().sum::<i64>();
        let qubo = QuboModel::new(n, &edges, diag).expect("valid by construction");
        (qubo, offset)
    }

    /// The resolution of the model: the largest `r ≥ 1` such that every
    /// coupling is a multiple of … — for integer models we instead report
    /// the maximum absolute coupling, which equals the paper's resolution
    /// `r` for QASP instances generated with couplings in `[−r, r]`.
    pub fn max_abs_coupling(&self) -> i64 {
        self.couplings.max_abs_weight()
    }

    /// Maximum absolute bias.
    pub fn max_abs_bias(&self) -> i64 {
        self.biases.iter().map(|v| v.abs()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::{Rng64, Xorshift64Star};

    /// Random sparse Ising model for round-trip tests.
    fn random_ising(n: usize, seed: u64) -> IsingModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(0.3) {
                    let mut j_w = rng.next_range_i64(-3, 3);
                    if j_w == 0 {
                        j_w = 1;
                    }
                    edges.push((i, j, j_w));
                }
            }
        }
        let biases: Vec<i64> = (0..n).map(|_| rng.next_range_i64(-4, 4)).collect();
        IsingModel::new(n, &edges, biases).unwrap()
    }

    #[test]
    fn hamiltonian_by_hand() {
        // H = 2 s0 s1 − s1 s2 + 3 s0 − s2
        let m = IsingModel::new(3, &[(0, 1, 2), (1, 2, -1)], vec![3, 0, -1]).unwrap();
        // S = (+1, −1, +1): 2(−1) − (−1) + 3 − 1 = 1
        let s = Solution::from_bitstring("101");
        assert_eq!(m.hamiltonian(&s), 1);
        // S = (−1, −1, −1): 2 − 1 − 3 + 1 = −1
        let s = Solution::from_bitstring("000");
        assert_eq!(m.hamiltonian(&s), -1);
    }

    #[test]
    fn ising_to_qubo_preserves_energies() {
        // H(S) = E(X) + offset for *every* assignment; spins and bits share
        // the encoding so the same Solution works on both sides.
        let m = random_ising(10, 42);
        let (q, offset) = m.to_qubo();
        let mut rng = Xorshift64Star::new(7);
        for _ in 0..50 {
            let x = Solution::random(10, &mut rng);
            assert_eq!(m.hamiltonian(&x), q.energy(&x) + offset);
        }
    }

    #[test]
    fn qubo_to_ising_preserves_energies() {
        // H(S) = 4 E(X) − C from QuboModel::to_ising.
        let m = random_ising(8, 5);
        let (q, _) = m.to_qubo();
        let (back, c) = q.to_ising();
        let mut rng = Xorshift64Star::new(9);
        for _ in 0..50 {
            let x = Solution::random(8, &mut rng);
            assert_eq!(back.hamiltonian(&x), 4 * q.energy(&x) - c);
        }
    }

    #[test]
    fn optimum_is_preserved_by_conversion() {
        // Exhaustively check that argmin H == argmin E on a small model.
        let m = random_ising(12, 123);
        let (q, offset) = m.to_qubo();
        let n = 12;
        let mut best_h = i64::MAX;
        let mut best_e = i64::MAX;
        for v in 0..(1u32 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            let s = Solution::from_bits(&bits);
            best_h = best_h.min(m.hamiltonian(&s));
            best_e = best_e.min(q.energy(&s));
        }
        assert_eq!(best_h, best_e + offset);
    }

    #[test]
    fn conversion_shapes() {
        let m = random_ising(20, 77);
        let (q, _) = m.to_qubo();
        assert_eq!(q.n(), 20);
        assert_eq!(q.edge_count(), m.edge_count());
    }

    #[test]
    fn bias_and_coupling_accessors() {
        let m = IsingModel::new(3, &[(0, 2, -5)], vec![1, -2, 0]).unwrap();
        assert_eq!(m.bias(1), -2);
        assert_eq!(m.coupling(2, 0), -5);
        assert_eq!(m.coupling(0, 1), 0);
        assert_eq!(m.max_abs_coupling(), 5);
        assert_eq!(m.max_abs_bias(), 2);
    }

    #[test]
    fn rejects_mismatched_biases() {
        assert!(IsingModel::new(4, &[], vec![0; 3]).is_err());
    }
}
