//! Packed binary solution vectors.
//!
//! Solutions are the unit of traffic in DABS: they travel host→device as
//! target vectors and device→host as best-found vectors, they populate the
//! solution pools, and the genetic operations manipulate them bitwise. The
//! representation is a word-packed bitset so crossover/mutation/Hamming
//! operations run at 64 bits per instruction.

use dabs_rng::Rng64;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-length binary vector `x_0 x_1 … x_{n-1}`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Solution {
    n: usize,
    words: Vec<u64>,
}

impl Solution {
    /// The all-zeros vector of length `n` (the paper's initial state: with
    /// `X = 0`, `E(X) = 0` and `Δ_k(X) = W_kk`).
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            words: vec![0u64; n.div_ceil(64)],
        }
    }

    /// The all-ones vector of length `n`.
    pub fn ones(n: usize) -> Self {
        let mut s = Self::zeros(n);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.mask_tail();
        s
    }

    /// A uniformly random vector of length `n`.
    pub fn random<R: Rng64 + ?Sized>(n: usize, rng: &mut R) -> Self {
        let mut s = Self::zeros(n);
        for w in &mut s.words {
            *w = rng.next_u64();
        }
        s.mask_tail();
        s
    }

    /// Build from a slice of booleans.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut s = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                s.set(i, true);
            }
        }
        s
    }

    /// Build from a `&str` of `'0'`/`'1'` characters (test convenience;
    /// other characters are rejected with a panic).
    pub fn from_bitstring(bits: &str) -> Self {
        Self::from_bits(
            &bits
                .chars()
                .map(|c| match c {
                    '0' => false,
                    '1' => true,
                    other => panic!("invalid bit character {other:?}"),
                })
                .collect::<Vec<_>>(),
        )
    }

    /// Render as a `'0'`/`'1'` string, `x_0` first — the inverse of
    /// [`Solution::from_bitstring`] and the wire representation used by the
    /// JSON protocol.
    pub fn to_bitstring(&self) -> String {
        (0..self.n)
            .map(|i| if self.get(i) { '1' } else { '0' })
            .collect()
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Value of bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.n);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Set bit `i` to `value`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.n);
        let mask = 1u64 << (i & 63);
        if value {
            self.words[i >> 6] |= mask;
        } else {
            self.words[i >> 6] &= !mask;
        }
    }

    /// Flip bit `i`, returning its new value.
    #[inline]
    pub fn flip(&mut self, i: usize) -> bool {
        debug_assert!(i < self.n);
        self.words[i >> 6] ^= 1u64 << (i & 63);
        self.get(i)
    }

    /// Spin value `σ(x_i) ∈ {−1, +1}`.
    #[inline]
    pub fn spin(&self, i: usize) -> i64 {
        crate::sigma(self.get(i))
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Hamming distance to another solution of the same length.
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(self.n, other.n, "hamming distance requires equal lengths");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Iterate over the indices whose bits differ from `other`.
    pub fn diff_indices<'a>(&'a self, other: &'a Self) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(self.n, other.n);
        self.words
            .iter()
            .zip(&other.words)
            .enumerate()
            .flat_map(|(wi, (a, b))| {
                let mut diff = a ^ b;
                std::iter::from_fn(move || {
                    if diff == 0 {
                        None
                    } else {
                        let bit = diff.trailing_zeros() as usize;
                        diff &= diff - 1;
                        Some((wi << 6) | bit)
                    }
                })
            })
    }

    /// Iterate over indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some((wi << 6) | bit)
                }
            })
        })
    }

    /// Expand to a `Vec<bool>`.
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.n).map(|i| self.get(i)).collect()
    }

    /// Uniform crossover: each bit taken from `self` or `other` according to
    /// a fresh random bit (the paper's Crossover / Xrossover primitive).
    pub fn crossover<R: Rng64 + ?Sized>(&self, other: &Self, rng: &mut R) -> Self {
        assert_eq!(self.n, other.n, "crossover requires equal lengths");
        let mut out = Self::zeros(self.n);
        for ((o, &a), &b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            let pick = rng.next_u64(); // 1 bit = take from `other`
            *o = (a & !pick) | (b & pick);
        }
        out.mask_tail();
        out
    }

    /// Access to the raw words (read-only; used by energy kernels).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Clear any bits beyond `n` in the last word so that whole-word
    /// operations (crossover, popcount) never leak phantom bits.
    fn mask_tail(&mut self) {
        let rem = self.n & 63;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }
}

impl fmt::Debug for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Solution[{}](", self.n)?;
        let limit = self.n.min(96);
        for i in 0..limit {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.n > limit {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_rng::Xorshift64Star;

    #[test]
    fn zeros_and_ones_counts() {
        let z = Solution::zeros(130);
        assert_eq!(z.count_ones(), 0);
        let o = Solution::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert_eq!(o.len(), 130);
    }

    #[test]
    fn ones_masks_tail_bits() {
        let o = Solution::ones(65);
        assert_eq!(o.count_ones(), 65);
        // Hamming against zeros must equal n, not 128.
        assert_eq!(o.hamming(&Solution::zeros(65)), 65);
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut s = Solution::zeros(100);
        s.set(63, true);
        s.set(64, true);
        assert!(s.get(63));
        assert!(s.get(64));
        assert!(!s.get(62));
        assert!(!s.flip(63));
        assert!(!s.get(63));
        assert_eq!(s.count_ones(), 1);
    }

    #[test]
    fn spin_values() {
        let mut s = Solution::zeros(2);
        s.set(1, true);
        assert_eq!(s.spin(0), -1);
        assert_eq!(s.spin(1), 1);
    }

    #[test]
    fn from_bitstring_parses() {
        let s = Solution::from_bitstring("10110");
        assert_eq!(s.to_bits(), vec![true, false, true, true, false]);
        assert_eq!(s.count_ones(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid bit character")]
    fn from_bitstring_rejects_garbage() {
        Solution::from_bitstring("10x");
    }

    #[test]
    fn hamming_distance_examples() {
        let a = Solution::from_bitstring("1100");
        let b = Solution::from_bitstring("1010");
        assert_eq!(a.hamming(&b), 2);
        assert_eq!(a.hamming(&a), 0);
    }

    #[test]
    fn diff_indices_matches_hamming() {
        let mut rng = Xorshift64Star::new(8);
        let a = Solution::random(300, &mut rng);
        let b = Solution::random(300, &mut rng);
        let diffs: Vec<usize> = a.diff_indices(&b).collect();
        assert_eq!(diffs.len(), a.hamming(&b));
        for &i in &diffs {
            assert_ne!(a.get(i), b.get(i));
        }
        // diff_indices must be sorted ascending
        assert!(diffs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn iter_ones_matches_count() {
        let mut rng = Xorshift64Star::new(9);
        let s = Solution::random(200, &mut rng);
        let ones: Vec<usize> = s.iter_ones().collect();
        assert_eq!(ones.len(), s.count_ones());
        assert!(ones.iter().all(|&i| s.get(i)));
    }

    #[test]
    fn random_is_roughly_balanced() {
        let mut rng = Xorshift64Star::new(77);
        let s = Solution::random(10_000, &mut rng);
        let ones = s.count_ones();
        assert!((4_000..6_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn crossover_takes_bits_from_parents() {
        let mut rng = Xorshift64Star::new(3);
        let a = Solution::zeros(500);
        let b = Solution::ones(500);
        let c = a.crossover(&b, &mut rng);
        // every bit of c matches one of the parents trivially; the mix must
        // be non-degenerate
        let ones = c.count_ones();
        assert!((100..400).contains(&ones), "crossover too biased: {ones}");
        // where parents agree, child must agree
        let d = a.crossover(&a, &mut rng);
        assert_eq!(d, a);
    }

    #[test]
    fn crossover_tail_stays_masked() {
        let mut rng = Xorshift64Star::new(4);
        let a = Solution::zeros(65);
        let b = Solution::ones(65);
        let c = a.crossover(&b, &mut rng);
        assert!(c.count_ones() <= 65);
        assert_eq!(c.hamming(&a) + c.hamming(&b), 65);
    }

    #[test]
    fn debug_format_truncates() {
        let s = Solution::zeros(200);
        let dbg = format!("{s:?}");
        assert!(dbg.contains('…'));
        assert!(dbg.starts_with("Solution[200]"));
    }
}
