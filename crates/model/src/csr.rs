//! Compressed sparse row storage for symmetric weighted graphs.
//!
//! The QUBO matrix `W` is symmetric with a zero-free diagonal channel kept
//! separately; off-diagonal weights are stored CSR-style with every edge
//! mirrored `(i→j, j→i)` so that the one-flip update `Δ_k ± W_ik` can walk
//! `adj(i)` contiguously. This mirrors the GPU layout in the paper, where
//! `W` lives in global memory and each thread reads its own row.

use crate::ModelError;
use serde::{Deserialize, Serialize};

/// Symmetric sparse matrix with mirrored adjacency.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SymmetricCsr {
    n: usize,
    /// Row start offsets; `offsets[n]` is the total mirrored entry count.
    offsets: Vec<u32>,
    /// Column indices, mirrored.
    cols: Vec<u32>,
    /// Edge weights, mirrored (the weight appears once per direction).
    vals: Vec<i64>,
}

impl SymmetricCsr {
    /// Build from an undirected edge list. Duplicate `(i, j)` entries (in
    /// either orientation) are accumulated. Self-loops are rejected.
    pub fn from_edges(n: usize, edges: &[(usize, usize, i64)]) -> Result<Self, ModelError> {
        if n == 0 {
            return Err(ModelError::Empty);
        }
        for &(i, j, _) in edges {
            if i >= n {
                return Err(ModelError::NodeOutOfRange { node: i, n });
            }
            if j >= n {
                return Err(ModelError::NodeOutOfRange { node: j, n });
            }
            if i == j {
                return Err(ModelError::SelfLoop { node: i });
            }
        }

        // Two-pass counting sort into mirrored CSR, accumulating duplicates
        // per row afterwards.
        let mut degree = vec![0u32; n];
        for &(i, j, _) in edges {
            degree[i] += 1;
            degree[j] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let total = offsets[n] as usize;
        let mut cols = vec![0u32; total];
        let mut vals = vec![0i64; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(i, j, w) in edges {
            let ci = cursor[i] as usize;
            cols[ci] = j as u32;
            vals[ci] = w;
            cursor[i] += 1;
            let cj = cursor[j] as usize;
            cols[cj] = i as u32;
            vals[cj] = w;
            cursor[j] += 1;
        }

        let mut csr = Self {
            n,
            offsets,
            cols,
            vals,
        };
        csr.sort_and_merge_rows();
        Ok(csr)
    }

    /// Sort each row by column and merge duplicate columns by summing.
    fn sort_and_merge_rows(&mut self) {
        let mut new_offsets = vec![0u32; self.n + 1];
        let mut new_cols = Vec::with_capacity(self.cols.len());
        let mut new_vals = Vec::with_capacity(self.vals.len());
        let mut row: Vec<(u32, i64)> = Vec::new();
        for i in 0..self.n {
            let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
            row.clear();
            row.extend(
                self.cols[s..e]
                    .iter()
                    .copied()
                    .zip(self.vals[s..e].iter().copied()),
            );
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < row.len() {
                let col = row[k].0;
                let mut sum = 0i64;
                while k < row.len() && row[k].0 == col {
                    sum += row[k].1;
                    k += 1;
                }
                if sum != 0 {
                    new_cols.push(col);
                    new_vals.push(sum);
                }
            }
            new_offsets[i + 1] = new_cols.len() as u32;
        }
        self.offsets = new_offsets;
        self.cols = new_cols;
        self.vals = new_vals;
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges (mirrored entries / 2).
    pub fn edge_count(&self) -> usize {
        self.cols.len() / 2
    }

    /// Degree of node `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterate over `(neighbor, weight)` pairs of node `i`, ascending by
    /// neighbor index.
    #[inline]
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, i64)> + '_ {
        let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        self.cols[s..e]
            .iter()
            .copied()
            .map(|c| c as usize)
            .zip(self.vals[s..e].iter().copied())
    }

    /// Raw row slices `(cols, vals)` for node `i` — the hot-path accessor
    /// used by the flip kernel.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[i64]) {
        let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        (&self.cols[s..e], &self.vals[s..e])
    }

    /// Weight of edge `(i, j)`, or 0 when absent. `O(log deg(i))`.
    pub fn weight(&self, i: usize, j: usize) -> i64 {
        let (s, e) = (self.offsets[i] as usize, self.offsets[i + 1] as usize);
        match self.cols[s..e].binary_search(&(j as u32)) {
            Ok(pos) => self.vals[s + pos],
            Err(_) => 0,
        }
    }

    /// Sum of `|w|` over all undirected edges — used for penalty sizing.
    pub fn total_abs_weight(&self) -> i64 {
        self.vals.iter().map(|v| v.abs()).sum::<i64>() / 2
    }

    /// Largest absolute edge weight.
    pub fn max_abs_weight(&self) -> i64 {
        self.vals.iter().map(|v| v.abs()).max().unwrap_or(0)
    }

    /// Iterate every undirected edge once as `(i, j, w)` with `i < j`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        (0..self.n).flat_map(move |i| {
            self.neighbors(i)
                .filter(move |&(j, _)| i < j)
                .map(move |(j, w)| (i, j, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> SymmetricCsr {
        SymmetricCsr::from_edges(4, &[(0, 1, 5), (1, 2, -3), (0, 3, 2)]).unwrap()
    }

    #[test]
    fn mirrors_edges_both_directions() {
        let m = toy();
        assert_eq!(m.weight(0, 1), 5);
        assert_eq!(m.weight(1, 0), 5);
        assert_eq!(m.weight(2, 1), -3);
        assert_eq!(m.weight(0, 2), 0);
        assert_eq!(m.edge_count(), 3);
    }

    #[test]
    fn degrees() {
        let m = toy();
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.degree(1), 2);
        assert_eq!(m.degree(2), 1);
        assert_eq!(m.degree(3), 1);
    }

    #[test]
    fn duplicate_edges_accumulate() {
        let m = SymmetricCsr::from_edges(3, &[(0, 1, 2), (1, 0, 3), (0, 1, -1)]).unwrap();
        assert_eq!(m.weight(0, 1), 4);
        assert_eq!(m.edge_count(), 1);
    }

    #[test]
    fn cancelling_duplicates_drop_out() {
        let m = SymmetricCsr::from_edges(2, &[(0, 1, 2), (0, 1, -2)]).unwrap();
        assert_eq!(m.weight(0, 1), 0);
        assert_eq!(m.edge_count(), 0);
        assert_eq!(m.degree(0), 0);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            SymmetricCsr::from_edges(2, &[(1, 1, 3)]),
            Err(ModelError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            SymmetricCsr::from_edges(2, &[(0, 5, 3)]),
            Err(ModelError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn rejects_empty_model() {
        assert_eq!(SymmetricCsr::from_edges(0, &[]), Err(ModelError::Empty));
    }

    #[test]
    fn neighbors_sorted_ascending() {
        let m = SymmetricCsr::from_edges(5, &[(2, 4, 1), (2, 0, 1), (2, 3, 1), (2, 1, 1)]).unwrap();
        let cols: Vec<usize> = m.neighbors(2).map(|(j, _)| j).collect();
        assert_eq!(cols, vec![0, 1, 3, 4]);
    }

    #[test]
    fn iter_edges_yields_each_once() {
        let m = toy();
        let mut edges: Vec<(usize, usize, i64)> = m.iter_edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1, 5), (0, 3, 2), (1, 2, -3)]);
    }

    #[test]
    fn weight_stats() {
        let m = toy();
        assert_eq!(m.total_abs_weight(), 10);
        assert_eq!(m.max_abs_weight(), 5);
    }

    #[test]
    fn row_matches_neighbors() {
        let m = toy();
        let (cols, vals) = m.row(1);
        let pairs: Vec<(usize, i64)> = m.neighbors(1).collect();
        assert_eq!(cols.len(), pairs.len());
        for (k, &(j, w)) in pairs.iter().enumerate() {
            assert_eq!(cols[k] as usize, j);
            assert_eq!(vals[k], w);
        }
    }
}
