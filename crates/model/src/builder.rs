//! Incremental QUBO construction.
//!
//! Problem reductions (MaxCut, QAP one-hot penalties, …) produce a stream of
//! quadratic and linear terms, often hitting the same variable pair many
//! times. [`QuboBuilder`] accumulates terms and assembles the final
//! [`QuboModel`] in one pass.

use crate::{KernelChoice, ModelError, QuboModel};

/// Accumulates linear and quadratic terms into a QUBO model.
#[derive(Debug, Clone)]
pub struct QuboBuilder {
    n: usize,
    diag: Vec<i64>,
    edges: Vec<(usize, usize, i64)>,
    kernel: KernelChoice,
}

impl QuboBuilder {
    /// A builder for `n` binary variables, all weights zero, automatic
    /// kernel selection.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            diag: vec![0; n],
            edges: Vec::new(),
            kernel: KernelChoice::Auto,
        }
    }

    /// Override the energy-kernel backend the built model will run on
    /// (default [`KernelChoice::Auto`]: pick by density at build time).
    pub fn kernel(&mut self, choice: KernelChoice) -> &mut Self {
        self.kernel = choice;
        self
    }

    /// Number of variables.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add `w · x_i` (accumulates onto `W_ii`).
    pub fn add_linear(&mut self, i: usize, w: i64) -> &mut Self {
        assert!(i < self.n, "variable {i} out of range (n = {})", self.n);
        self.diag[i] += w;
        self
    }

    /// Add `w · x_i · x_j`. `i == j` folds onto the diagonal (since
    /// `x_i² = x_i` for binaries). Duplicate pairs accumulate.
    pub fn add_quadratic(&mut self, i: usize, j: usize, w: i64) -> &mut Self {
        assert!(i < self.n && j < self.n, "pair ({i},{j}) out of range");
        if i == j {
            self.diag[i] += w;
        } else {
            self.edges.push((i.min(j), i.max(j), w));
        }
        self
    }

    /// Add the MaxCut gadget for an edge `{i, j}` of weight `w`:
    /// `w·(2 x_i x_j − x_i − x_j)`, which contributes `−w` exactly when the
    /// edge is cut (paper §II-A).
    pub fn add_maxcut_edge(&mut self, i: usize, j: usize, w: i64) -> &mut Self {
        self.add_quadratic(i, j, 2 * w);
        self.add_linear(i, -w);
        self.add_linear(j, -w);
        self
    }

    /// Add a one-hot penalty over the variable set `group`: contributes `0`
    /// when exactly one variable is 1 and `≥ p` otherwise (for p > 0).
    ///
    /// Uses the standard expansion `p·(Σ x − 1)² = p·(Σ_i x_i − 2 Σ_{i<j} … )`
    /// minus the constant `p` (constants are dropped; callers track offsets).
    /// Concretely: `−p` on each diagonal and `+2p` on each pair, matching the
    /// paper's QAP penalty rows/columns (`−p` if `i=i', j=j'`; `+p` per
    /// conflicting pair counted once each direction = `2p` per unordered
    /// pair).
    pub fn add_one_hot_penalty(&mut self, group: &[usize], p: i64) -> &mut Self {
        for (a, &i) in group.iter().enumerate() {
            self.add_linear(i, -p);
            for &j in &group[a + 1..] {
                self.add_quadratic(i, j, 2 * p);
            }
        }
        self
    }

    /// Number of quadratic terms added so far (before merging duplicates).
    pub fn pending_terms(&self) -> usize {
        self.edges.len()
    }

    /// Assemble the final model, merging duplicate pairs.
    pub fn build(self) -> Result<QuboModel, ModelError> {
        QuboModel::new_with_kernel(self.n, &self.edges, self.diag, self.kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Solution;

    #[test]
    fn linear_and_quadratic_accumulate() {
        let mut b = QuboBuilder::new(3);
        b.add_linear(0, 2).add_linear(0, 3).add_quadratic(0, 1, 1);
        b.add_quadratic(1, 0, 4); // reversed orientation merges
        let q = b.build().unwrap();
        assert_eq!(q.diag(0), 5);
        assert_eq!(q.weight(0, 1), 5);
    }

    #[test]
    fn diagonal_quadratic_folds() {
        let mut b = QuboBuilder::new(2);
        b.add_quadratic(1, 1, 7);
        let q = b.build().unwrap();
        assert_eq!(q.diag(1), 7);
        assert_eq!(q.edge_count(), 0);
    }

    #[test]
    fn maxcut_gadget_counts_cut_edges() {
        // Triangle with unit weights: cut of any 1-vs-2 split is 2.
        let mut b = QuboBuilder::new(3);
        b.add_maxcut_edge(0, 1, 1);
        b.add_maxcut_edge(1, 2, 1);
        b.add_maxcut_edge(0, 2, 1);
        let q = b.build().unwrap();
        assert_eq!(q.energy(&Solution::from_bitstring("000")), 0);
        assert_eq!(q.energy(&Solution::from_bitstring("100")), -2);
        assert_eq!(q.energy(&Solution::from_bitstring("110")), -2);
        assert_eq!(q.energy(&Solution::from_bitstring("111")), 0);
    }

    #[test]
    fn one_hot_penalty_is_zero_only_when_one_hot() {
        let mut b = QuboBuilder::new(4);
        b.add_one_hot_penalty(&[0, 1, 2, 3], 10);
        let q = b.build().unwrap();
        // Energy = p((Σx)² − 2Σx) = p(Σx − 1)² − p; with constant −p dropped,
        // one-hot assignments give −p and everything else gives more.
        let one_hot = q.energy(&Solution::from_bitstring("0100"));
        assert_eq!(one_hot, -10);
        assert_eq!(q.energy(&Solution::from_bitstring("0000")), 0);
        assert_eq!(q.energy(&Solution::from_bitstring("1100")), 0);
        assert_eq!(q.energy(&Solution::from_bitstring("1110")), 30);
        // one-hot strictly best
        for v in 0..16u32 {
            let bits: Vec<bool> = (0..4).map(|i| (v >> i) & 1 == 1).collect();
            let e = q.energy(&Solution::from_bits(&bits));
            if bits.iter().filter(|&&b| b).count() == 1 {
                assert_eq!(e, -10);
            } else {
                assert!(e > -10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_linear() {
        QuboBuilder::new(2).add_linear(5, 1);
    }

    #[test]
    fn pending_terms_counts() {
        let mut b = QuboBuilder::new(3);
        b.add_quadratic(0, 1, 1).add_quadratic(0, 2, 1);
        assert_eq!(b.pending_terms(), 2);
    }
}
