//! Pluggable energy-kernel backends (the hot path behind
//! [`crate::IncrementalState`]).
//!
//! The paper's §III-A one-flip update `Δ_k ← Δ_k + W_ik σ(x_i) σ(x_k)` costs
//! `O(deg(i))` — but *how* those `deg(i)` terms are visited decides the
//! constant factor. Two backends implement [`QuboKernel`]:
//!
//! * [`CsrKernel`] — walks the mirrored CSR row of `i`: optimal for sparse
//!   instances where `deg(i) ≪ n`, but every entry costs a column-index
//!   load and a scattered `Δ_j` write.
//! * [`DenseKernel`] — walks a padded dense row in 64-column strips aligned
//!   to the solution words ([`crate::DenseStrips`]): every lane is a
//!   branchless sign-select + add over contiguous memory, so high-density
//!   instances (QAP one-hot squares, dense MaxCut) trade `n` cheap lanes
//!   for `deg(i)` expensive ones.
//!
//! [`QuboModel`] auto-selects a backend at build time from the instance
//! density ([`DENSE_DENSITY_THRESHOLD`], bounded by [`DENSE_AUTO_MAX_N`]);
//! [`KernelChoice`] overrides it from `QuboBuilder::kernel`, the server's
//! `ProblemSpec`, or the CLI's `--kernel` flag. Both kernels compute
//! *identical* `i64` energies and deltas — the cross-backend parity suite
//! (`tests/props_model.rs`, `tests/solver_parity.rs`) holds them to
//! bit-identical trajectories.

use crate::segments::SegmentAggregates;
use crate::{DenseStrips, QuboModel, Solution, SymmetricCsr};
use serde::{Deserialize, Serialize};

/// Auto-selection density threshold: models with
/// `nnz / (n(n−1)/2) ≥ threshold` get the dense kernel.
pub const DENSE_DENSITY_THRESHOLD: f64 = 0.25;

/// Auto-selection size ceiling: beyond this the dense matrix
/// (`n² × 8` bytes, ≈ 134 MiB at 4096) is only built on explicit request.
pub const DENSE_AUTO_MAX_N: usize = 4096;

/// Caller-facing backend selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelChoice {
    /// Pick by density at model build ([`DENSE_DENSITY_THRESHOLD`]).
    #[default]
    Auto,
    /// Force the CSR sparse kernel.
    Csr,
    /// Force the dense bit-packed kernel. Costs `n² × 8` bytes of weights —
    /// callers going far beyond n ≈ [`DENSE_AUTO_MAX_N`] should know why.
    Dense,
}

impl KernelChoice {
    /// Wire/CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Auto => "auto",
            KernelChoice::Csr => "csr",
            KernelChoice::Dense => "dense",
        }
    }

    /// Parse the wire/CLI spelling.
    pub fn from_name(s: &str) -> Result<Self, String> {
        match s {
            "auto" => Ok(KernelChoice::Auto),
            "csr" => Ok(KernelChoice::Csr),
            "dense" => Ok(KernelChoice::Dense),
            other => Err(format!("unknown kernel {other:?} (auto|csr|dense)")),
        }
    }
}

/// The backend a model actually selected (no `Auto` left at this point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    Csr,
    Dense,
}

impl KernelKind {
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Csr => "csr",
            KernelKind::Dense => "dense",
        }
    }
}

/// An energy kernel: everything [`crate::IncrementalState`] needs from the
/// weight matrix, exposed so the flip hot loop monomorphizes per backend.
///
/// Implementors are cheap `Copy` views borrowing storage owned by the
/// [`QuboModel`]; cloning one hands an independent handle to another
/// resident state (block worker, inline device) without touching weights.
pub trait QuboKernel: Copy {
    /// Number of binary variables.
    fn n(&self) -> usize;

    /// Diagonal (linear) weights `W_ii`.
    fn diag(&self) -> &[i64];

    /// Backend name for logs and benches.
    fn kernel_name(&self) -> &'static str;

    /// Direct energy evaluation `E(X)`, `O(n + m)` — initialisation and
    /// ground truth only; never on the flip path.
    fn energy(&self, x: &Solution) -> i64;

    /// Single-pass initialisation: fill `delta[k] = Δ_k(X)` for every bit
    /// and return `E(X)`, touching each stored weight exactly once
    /// (`O(n + m)`; the dense backend's `m` is `n²`).
    fn init(&self, x: &Solution, delta: &mut [i64]) -> i64;

    /// Neighbour update for flipping bit `i` (paper Eq. 4):
    /// `delta[j] += W_ij · σ(x_i) · σ(x_j)` for all `j ≠ i`, evaluated on
    /// the **pre-flip** vector `x`. Does not touch `delta[i]`, the energy,
    /// or `x` itself — [`crate::IncrementalState::flip`] owns those.
    fn apply_flip(&self, x: &Solution, i: usize, delta: &mut [i64]);

    /// [`QuboKernel::apply_flip`] plus segment-aggregate maintenance: the
    /// backend reports exactly the Δ-segments it dirtied so selection never
    /// has to re-derive state globally.
    ///
    /// * CSR runs tighten-or-mark maintenance per updated entry of the
    ///   mirrored row ([`SegmentAggregates::update`]): a segment goes dirty
    ///   only when an update destroys its recorded extremum, so a flip
    ///   dirties ≈ `deg(i)/32` segments in expectation, not `deg(i)`;
    /// * dense keeps this default (update, then mark all): every lane
    ///   changes anyway, and the first selection query re-reduces the
    ///   whole array in one branchless pass — fusing the reduction into
    ///   the strip update was measured ~30 % slower per flip and taxed
    ///   selection-free consumers (see the note on the dense impl);
    /// * the default is correct for any backend.
    ///
    /// Like `apply_flip`, this must not touch `delta[i]` — the caller
    /// negates it and updates `i`'s aggregates afterwards.
    fn apply_flip_seg(
        &self,
        x: &Solution,
        i: usize,
        delta: &mut [i64],
        segs: &mut SegmentAggregates,
    ) {
        self.apply_flip(x, i, delta);
        segs.mark_all();
    }
}

/// CSR sparse backend: a view over the model's mirrored adjacency.
#[derive(Debug, Clone, Copy)]
pub struct CsrKernel<'m> {
    adj: &'m SymmetricCsr,
    diag: &'m [i64],
}

impl<'m> CsrKernel<'m> {
    /// View over `model`'s CSR storage (always available).
    pub fn new(model: &'m QuboModel) -> Self {
        Self {
            adj: model.adjacency(),
            diag: model.diag_slice(),
        }
    }

    /// The mirrored adjacency this kernel walks — shared with the batch
    /// kernel so both visit identical rows.
    pub(crate) fn adjacency(&self) -> &'m SymmetricCsr {
        self.adj
    }
}

impl QuboKernel for CsrKernel<'_> {
    #[inline]
    fn n(&self) -> usize {
        self.adj.n()
    }

    #[inline]
    fn diag(&self) -> &[i64] {
        self.diag
    }

    fn kernel_name(&self) -> &'static str {
        "csr"
    }

    fn energy(&self, x: &Solution) -> i64 {
        let mut linear = 0i64;
        let mut quad_twice = 0i64;
        for i in x.iter_ones() {
            linear += self.diag[i];
            let (cols, vals) = self.adj.row(i);
            for (k, &j) in cols.iter().enumerate() {
                if x.get(j as usize) {
                    quad_twice += vals[k];
                }
            }
        }
        linear + quad_twice / 2
    }

    fn init(&self, x: &Solution, delta: &mut [i64]) -> i64 {
        let mut linear = 0i64;
        let mut quad_twice = 0i64;
        for (i, d) in delta.iter_mut().enumerate() {
            let (cols, vals) = self.adj.row(i);
            let mut s = 0i64;
            for (k, &j) in cols.iter().enumerate() {
                if x.get(j as usize) {
                    s += vals[k];
                }
            }
            if x.get(i) {
                *d = -(self.diag[i] + s);
                linear += self.diag[i];
                quad_twice += s;
            } else {
                *d = self.diag[i] + s;
            }
        }
        linear + quad_twice / 2
    }

    #[inline]
    fn apply_flip(&self, x: &Solution, i: usize, delta: &mut [i64]) {
        let sig_i = x.spin(i);
        let (cols, vals) = self.adj.row(i);
        // Explicit load/compute/store instead of `delta[j] += …`: breaking
        // the read-modify-write lets the scattered loads issue ahead of the
        // dependent stores, and measures ~2× the flip throughput of the
        // fused form on random sparse rows.
        for (k, &jc) in cols.iter().enumerate() {
            let j = jc as usize;
            let old = delta[j];
            delta[j] = old + vals[k] * sig_i * x.spin(j);
        }
    }

    #[inline]
    fn apply_flip_seg(
        &self,
        x: &Solution,
        i: usize,
        delta: &mut [i64],
        segs: &mut SegmentAggregates,
    ) {
        let sig_i = x.spin(i);
        let (cols, vals) = self.adj.row(i);
        // Per-entry tighten-or-mark aggregate maintenance: a segment goes
        // dirty only when an update destroys its recorded extremum
        // (≈ deg(i)/32 expected segments per flip, not deg(i)).
        for (k, &jc) in cols.iter().enumerate() {
            let j = jc as usize;
            let old = delta[j];
            let new = old + vals[k] * sig_i * x.spin(j);
            delta[j] = new;
            segs.update(j, old, new);
        }
    }
}

/// Dense bit-packed backend: a view over the model's padded strip matrix.
#[derive(Debug, Clone, Copy)]
pub struct DenseKernel<'m> {
    dense: &'m DenseStrips,
    diag: &'m [i64],
}

impl<'m> DenseKernel<'m> {
    /// View over `model`'s dense storage, if it selected the dense backend.
    pub fn try_new(model: &'m QuboModel) -> Option<Self> {
        model.dense_strips().map(|dense| Self {
            dense,
            diag: model.diag_slice(),
        })
    }

    /// Like [`Self::try_new`], panicking when the model holds no dense
    /// storage. Use after checking `model.kernel_kind()`, or force the
    /// backend with `KernelChoice::Dense` at build time.
    pub fn new(model: &'m QuboModel) -> Self {
        Self::try_new(model)
            .expect("model has no dense kernel storage (build it with KernelChoice::Dense)")
    }

    /// The padded strip matrix this kernel walks — shared with the batch
    /// kernel so both visit identical rows.
    pub(crate) fn strips(&self) -> &'m DenseStrips {
        self.dense
    }
}

/// Branchless conditional negate: `w` when mask bit is 0, `−w` when 1.
#[inline(always)]
pub(crate) fn sign_select(w: i64, neg: i64) -> i64 {
    // neg ∈ {0, −1}: (w ^ 0) − 0 = w; (w ^ −1) − (−1) = !w + 1 = −w.
    (w ^ neg) - neg
}

impl QuboKernel for DenseKernel<'_> {
    #[inline]
    fn n(&self) -> usize {
        self.dense.n()
    }

    #[inline]
    fn diag(&self) -> &[i64] {
        self.diag
    }

    fn kernel_name(&self) -> &'static str {
        "dense"
    }

    fn energy(&self, x: &Solution) -> i64 {
        let mut linear = 0i64;
        let mut quad_twice = 0i64;
        for i in x.iter_ones() {
            linear += self.diag[i];
            let row = self.dense.row(i);
            for (wi, &word) in x.words().iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    quad_twice += row[(wi << 6) | b];
                    bits &= bits - 1;
                }
            }
        }
        linear + quad_twice / 2
    }

    fn init(&self, x: &Solution, delta: &mut [i64]) -> i64 {
        let mut linear = 0i64;
        let mut quad_twice = 0i64;
        for (i, d) in delta.iter_mut().enumerate() {
            let row = self.dense.row(i);
            let mut s = 0i64;
            for (wi, &word) in x.words().iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let b = bits.trailing_zeros() as usize;
                    s += row[(wi << 6) | b];
                    bits &= bits - 1;
                }
            }
            if x.get(i) {
                *d = -(self.diag[i] + s);
                linear += self.diag[i];
                quad_twice += s;
            } else {
                *d = self.diag[i] + s;
            }
        }
        linear + quad_twice / 2
    }

    #[inline]
    fn apply_flip(&self, x: &Solution, i: usize, delta: &mut [i64]) {
        let n = self.dense.n();
        let row = self.dense.row(i);
        let words = x.words();
        // σ(x_i)σ(x_j) = +1 iff x_i == x_j, so the lanes to negate are
        // `word ^ broadcast(x_i)`. The diagonal lane is stored as zero, so
        // `j == i` safely contributes nothing.
        let flip_mask = if x.get(i) { !0u64 } else { 0u64 };
        let full = n >> 6;
        for (wi, &word) in words.iter().enumerate().take(full) {
            let m = word ^ flip_mask;
            let base = wi << 6;
            let strip = &row[base..base + 64];
            let dst = &mut delta[base..base + 64];
            for b in 0..64 {
                let neg = (((m >> b) & 1) as i64).wrapping_neg();
                dst[b] += sign_select(strip[b], neg);
            }
        }
        let rem = n & 63;
        if rem != 0 {
            let m = words[full] ^ flip_mask;
            let base = full << 6;
            for b in 0..rem {
                let neg = (((m >> b) & 1) as i64).wrapping_neg();
                delta[base + b] += sign_select(row[base + b], neg);
            }
        }
    }

    // `apply_flip_seg` deliberately stays on the default
    // (update-then-mark-all) path. A fused variant that re-reduced each
    // 64-lane strip inside the update pass measured ~30 % slower per dense
    // flip — the extra compares break the tight sign-select/add pipeline —
    // which taxed every dense flip (including selection-free consumers
    // like SA and the kernel throughput sweep) and tripped the
    // `kernel_sweep` dense ≥ 2× CSR contract. Marking everything and
    // letting the first selection query run one branchless `O(n)` refresh
    // keeps the flip at full speed and still replaces the strategies' two
    // branchy scans with aggregate reductions.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuboBuilder;
    use dabs_rng::{Rng64, Xorshift64Star};

    fn random_model(n: usize, density: f64, seed: u64, choice: KernelChoice) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        b.kernel(choice);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn choice_names_round_trip() {
        for c in [KernelChoice::Auto, KernelChoice::Csr, KernelChoice::Dense] {
            assert_eq!(KernelChoice::from_name(c.name()).unwrap(), c);
        }
        assert!(KernelChoice::from_name("gpu").is_err());
        assert_eq!(KernelChoice::default(), KernelChoice::Auto);
    }

    #[test]
    fn sign_select_is_a_conditional_negate() {
        for w in [-5i64, 0, 7, i64::MAX, i64::MIN + 1] {
            assert_eq!(sign_select(w, 0), w);
            assert_eq!(sign_select(w, -1), -w);
        }
    }

    #[test]
    fn kernels_agree_on_energy_and_init() {
        for (n, density) in [(3, 1.0), (30, 0.1), (64, 0.5), (65, 0.9), (130, 0.5)] {
            let q = random_model(n, density, 9_000 + n as u64, KernelChoice::Dense);
            let csr = CsrKernel::new(&q);
            let dense = DenseKernel::new(&q);
            let mut rng = Xorshift64Star::new(7_000 + n as u64);
            for _ in 0..8 {
                let x = Solution::random(n, &mut rng);
                assert_eq!(csr.energy(&x), dense.energy(&x), "energy n={n}");
                assert_eq!(csr.energy(&x), q.energy(&x), "vs model n={n}");
                let mut da = vec![0i64; n];
                let mut db = vec![0i64; n];
                let ea = csr.init(&x, &mut da);
                let eb = dense.init(&x, &mut db);
                assert_eq!(ea, eb, "init energy n={n}");
                assert_eq!(da, db, "init deltas n={n}");
            }
        }
    }

    #[test]
    fn kernels_agree_on_flip_updates() {
        // Word-boundary sizes stress the strip tail handling.
        for n in [5usize, 63, 64, 65, 128, 129] {
            let q = random_model(n, 0.6, 400 + n as u64, KernelChoice::Dense);
            let csr = CsrKernel::new(&q);
            let dense = DenseKernel::new(&q);
            let mut rng = Xorshift64Star::new(500 + n as u64);
            let mut x = Solution::random(n, &mut rng);
            let mut da = vec![0i64; n];
            let mut db = vec![0i64; n];
            csr.init(&x, &mut da);
            dense.init(&x, &mut db);
            for _ in 0..200 {
                let i = rng.next_index(n);
                csr.apply_flip(&x, i, &mut da);
                dense.apply_flip(&x, i, &mut db);
                da[i] = -da[i];
                db[i] = -db[i];
                x.flip(i);
                assert_eq!(da, db, "n={n}");
            }
            // ground truth after the walk
            for (i, &d) in da.iter().enumerate() {
                assert_eq!(d, q.delta(&x, i), "n={n} bit {i}");
            }
        }
    }

    #[test]
    fn dense_kernel_requires_dense_storage() {
        let q = random_model(10, 0.1, 1, KernelChoice::Csr);
        assert!(DenseKernel::try_new(&q).is_none());
        assert!(CsrKernel::new(&q).n() == 10);
    }
}
