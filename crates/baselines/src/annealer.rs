//! Analog annealer simulator — the D-Wave Advantage stand-in (paper §VI-C).
//!
//! A quantum annealer receives couplings scaled into its analog ranges
//! (`J ∈ [−1, 1]`, `h ∈ [−4, 4]`) and realises them with a fixed physical
//! noise floor; a resolution-`r` model therefore loses the distinctions
//! between adjacent coupling levels once `1/r` approaches the noise. This
//! simulator reproduces that mechanism:
//!
//! 1. scale the integer model by `1/max|J|` into the analog range,
//! 2. corrupt every coupling and bias with Gaussian noise of fixed σ
//!    (σ ≈ 0.02 matches the flux-noise scale reported for D-Wave \[10\]),
//! 3. run `num_reads` *independent short anneals on the corrupted model*,
//! 4. return the best read — evaluated on the **true** model.
//!
//! Because the anneal optimises the corrupted Hamiltonian, its best read
//! drifts away from the true optimum as `r` grows — the Table IV gap trend.

use crate::sa::{SaConfig, SimulatedAnnealing};
use crate::BaselineResult;
use dabs_model::{IsingModel, Solution};
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};
use std::time::Instant;

/// Analog sampling parameters.
#[derive(Debug, Clone, Copy)]
pub struct AnnealerConfig {
    /// Independent anneal reads (the paper runs 10⁶ total, 10⁴ per call).
    pub num_reads: u32,
    /// Sweeps of each (short) anneal — annealers run ~20 µs schedules, so
    /// each read is fast but shallow.
    pub sweeps_per_read: u64,
    /// Analog noise, in units of the full-scale coupling range.
    pub noise_sigma: f64,
    /// Fixed-point scale used to re-integerise the corrupted model.
    pub quantization: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealerConfig {
    fn default() -> Self {
        Self {
            num_reads: 100,
            sweeps_per_read: 10,
            noise_sigma: 0.02,
            quantization: 1_000_000,
            seed: 1,
        }
    }
}

/// The simulator.
#[derive(Debug, Clone)]
pub struct AnalogAnnealer {
    pub config: AnnealerConfig,
}

impl AnalogAnnealer {
    pub fn new(config: AnnealerConfig) -> Self {
        assert!(config.num_reads >= 1 && config.sweeps_per_read >= 1);
        assert!(config.noise_sigma >= 0.0);
        assert!(config.quantization >= 1);
        Self { config }
    }

    /// Sample the Ising model; returns the best read scored on the true
    /// model (as spin bits — convert through the instance's offset to
    /// compare with QUBO energies).
    pub fn sample(&self, ising: &IsingModel) -> BaselineResult {
        let started = Instant::now();
        let corrupted = self.corrupt(ising);
        let (qubo_corrupted, _) = corrupted.to_qubo();
        let mut seeder = SplitMix64::new(self.config.seed ^ 0xA11EA);

        let mut best = Solution::zeros(ising.n());
        let mut best_h = i64::MAX;
        for _ in 0..self.config.num_reads {
            let sa = SimulatedAnnealing::new(SaConfig::scaled_to(
                &qubo_corrupted,
                self.config.sweeps_per_read,
                seeder.next_u64(),
            ));
            let read = sa.solve(&qubo_corrupted);
            // score on the TRUE model — the annealer can only optimise what
            // its analog hardware actually realised
            let h = ising.hamiltonian(&read.best);
            if h < best_h {
                best_h = h;
                best = read.best;
            }
        }
        BaselineResult {
            best,
            energy: best_h,
            elapsed: started.elapsed(),
            work: self.config.num_reads as u64,
            proven_optimal: false,
        }
    }

    /// The corrupted analog realisation of `ising`, re-integerised at
    /// `quantization` steps per unit.
    fn corrupt(&self, ising: &IsingModel) -> IsingModel {
        let scale = ising.max_abs_coupling().max(1) as f64;
        let q = self.config.quantization as f64;
        let mut rng = Xorshift64Star::new(SplitMix64::new(self.config.seed).next_u64());
        let edges: Vec<(usize, usize, i64)> = ising
            .couplings()
            .iter_edges()
            .map(|(i, j, jij)| {
                let analog = jij as f64 / scale + self.config.noise_sigma * gaussian(&mut rng);
                (i, j, (analog * q).round() as i64)
            })
            .collect();
        let biases: Vec<i64> = (0..ising.n())
            .map(|i| {
                // biases use the 4× range; noise floor applies on the same
                // absolute analog scale
                let analog =
                    ising.bias(i) as f64 / scale + self.config.noise_sigma * gaussian(&mut rng);
                (analog * q).round() as i64
            })
            .collect();
        IsingModel::new(ising.n(), &edges, biases).expect("same topology")
    }
}

/// Standard normal via Box–Muller.
fn gaussian<R: Rng64 + ?Sized>(rng: &mut R) -> f64 {
    let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_ising(n: usize, density: f64, resolution: i64, seed: u64) -> IsingModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    let mut w = rng.next_range_i64(-resolution, resolution);
                    if w == 0 {
                        w = 1;
                    }
                    edges.push((i, j, w));
                }
            }
        }
        let biases: Vec<i64> = (0..n)
            .map(|_| {
                let mut v = rng.next_range_i64(-4 * resolution, 4 * resolution);
                if v == 0 {
                    v = 1;
                }
                v
            })
            .collect();
        IsingModel::new(n, &edges, biases).unwrap()
    }

    fn brute_force_h(m: &IsingModel) -> i64 {
        let n = m.n();
        let mut best = i64::MAX;
        for v in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            best = best.min(m.hamiltonian(&Solution::from_bits(&bits)));
        }
        best
    }

    #[test]
    fn noiseless_sampler_finds_small_optimum() {
        let m = random_ising(12, 0.5, 1, 351);
        let opt = brute_force_h(&m);
        let r = AnalogAnnealer::new(AnnealerConfig {
            num_reads: 50,
            sweeps_per_read: 50,
            noise_sigma: 0.0,
            ..AnnealerConfig::default()
        })
        .sample(&m);
        assert_eq!(r.energy, opt, "noise-free annealer should be exact here");
        assert_eq!(m.hamiltonian(&r.best), r.energy);
    }

    #[test]
    fn corruption_preserves_topology() {
        let m = random_ising(15, 0.4, 16, 352);
        let annealer = AnalogAnnealer::new(AnnealerConfig::default());
        let c = annealer.corrupt(&m);
        assert_eq!(c.n(), m.n());
        assert_eq!(c.edge_count(), m.edge_count());
    }

    #[test]
    fn higher_resolution_suffers_more_from_noise() {
        // Measure the *relative corruption* of the realised couplings: at
        // fixed analog σ the relative error of the smallest nonzero coupling
        // grows with resolution.
        let annealer = AnalogAnnealer::new(AnnealerConfig {
            noise_sigma: 0.02,
            seed: 353,
            ..AnnealerConfig::default()
        });
        let rel_err = |r: i64| {
            let m = random_ising(20, 0.4, r, 354);
            let c = annealer.corrupt(&m);
            let scale = m.max_abs_coupling() as f64;
            let q = annealer.config.quantization as f64;
            let mut total = 0.0;
            let mut count = 0.0;
            for (i, j, jij) in m.couplings().iter_edges() {
                let realised = c.coupling(i, j) as f64 / q * scale;
                total += ((realised - jij as f64) / jij.abs().max(1) as f64).abs();
                count += 1.0;
            }
            total / count
        };
        let low = rel_err(1);
        let high = rel_err(256);
        assert!(
            high > 5.0 * low,
            "relative corruption should grow with resolution: r=1 → {low}, r=256 → {high}"
        );
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xorshift64Star::new(355);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn more_reads_never_worse() {
        let m = random_ising(14, 0.5, 4, 356);
        let mk = |reads| {
            AnalogAnnealer::new(AnnealerConfig {
                num_reads: reads,
                sweeps_per_read: 5,
                noise_sigma: 0.05,
                seed: 357,
                ..AnnealerConfig::default()
            })
            .sample(&m)
            .energy
        };
        // same seed ⇒ the first `k` reads coincide; more reads only add
        assert!(mk(40) <= mk(5));
    }
}
