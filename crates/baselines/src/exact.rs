//! Exhaustive optimisation by Gray-code enumeration.
//!
//! Visits all `2^n` assignments changing exactly one bit per step (the
//! binary-reflected Gray code), so each step costs `O(deg)` on the
//! incremental state instead of `O(n²)` per assignment. Practical to
//! n ≈ 26; used to *prove* the optima that the small-instance tests and the
//! QAP penalty checks rely on.

use crate::BaselineResult;
use dabs_model::{BestTracker, IncrementalState, QuboModel};
use std::time::Instant;

/// Hard cap: beyond this the enumeration would take hours.
pub const MAX_EXHAUSTIVE_BITS: usize = 30;

/// Enumerate every assignment and return the proven optimum.
pub fn exhaustive(model: &QuboModel) -> BaselineResult {
    let n = model.n();
    assert!(
        n <= MAX_EXHAUSTIVE_BITS,
        "exhaustive search limited to {MAX_EXHAUSTIVE_BITS} bits, got {n}"
    );
    let started = Instant::now();
    let mut state = IncrementalState::new(model);
    let mut best = BestTracker::new(state.solution().clone(), state.energy());
    let total: u64 = 1u64 << n;
    // Gray code: between step k-1 and k the changed bit is trailing_zeros(k).
    for k in 1..total {
        let bit = k.trailing_zeros() as usize;
        state.flip(bit);
        best.observe(&state);
    }
    let (best, energy) = best.into_parts();
    BaselineResult {
        best,
        energy,
        elapsed: started.elapsed(),
        work: total,
        proven_optimal: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_model::{QuboBuilder, Solution};
    use dabs_rng::{Rng64, Xorshift64Star};

    fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn matches_naive_enumeration() {
        let q = random_model(12, 0.4, 311);
        let naive = {
            let mut best = i64::MAX;
            for v in 0..(1u32 << 12) {
                let bits: Vec<bool> = (0..12).map(|i| (v >> i) & 1 == 1).collect();
                best = best.min(q.energy(&Solution::from_bits(&bits)));
            }
            best
        };
        let r = exhaustive(&q);
        assert_eq!(r.energy, naive);
        assert!(r.proven_optimal);
        assert_eq!(r.work, 1 << 12);
        assert_eq!(q.energy(&r.best), r.energy);
    }

    #[test]
    fn gray_walk_covers_all_assignments() {
        // Count distinct visited vectors on a tiny model.
        let q = random_model(4, 0.5, 312);
        let mut state = IncrementalState::new(&q);
        let mut seen = std::collections::HashSet::new();
        seen.insert(state.solution().clone());
        for k in 1u64..16 {
            state.flip(k.trailing_zeros() as usize);
            seen.insert(state.solution().clone());
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn single_bit_model() {
        let mut b = QuboBuilder::new(1);
        b.add_linear(0, -5);
        let q = b.build().unwrap();
        let r = exhaustive(&q);
        assert_eq!(r.energy, -5);
        assert!(r.best.get(0));
    }

    #[test]
    #[should_panic(expected = "exhaustive search limited")]
    fn rejects_large_models() {
        let q = random_model(10, 0.1, 313);
        let _ = q; // silence unused warning path
        let big = QuboBuilder::new(31).build().unwrap();
        exhaustive(&big);
    }
}
