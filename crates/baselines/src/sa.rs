//! Simulated annealing on QUBO models.
//!
//! The reference Metropolis annealer: geometric temperature schedule from
//! `t_hot` to `t_cold`, one *sweep* = `n` proposed single-bit flips at
//! uniformly random positions, acceptance `min(1, exp(−Δ/T))`. Runs on the
//! same incremental Δ state as every other solver in the repo.

use crate::BaselineResult;
use dabs_model::{BestTracker, IncrementalState, QuboModel, Solution};
use dabs_rng::{Rng64, Xorshift64Star};
use std::time::Instant;

/// Annealing schedule and budget.
#[derive(Debug, Clone, Copy)]
pub struct SaConfig {
    /// Number of sweeps (each `n` proposals).
    pub sweeps: u64,
    /// Starting temperature.
    pub t_hot: f64,
    /// Final temperature.
    pub t_cold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaConfig {
    fn default() -> Self {
        Self {
            sweeps: 100,
            t_hot: 10.0,
            t_cold: 0.1,
            seed: 1,
        }
    }
}

impl SaConfig {
    /// A schedule scaled to the model's weight magnitude: hot enough to
    /// accept typical uphill moves, cold enough to freeze.
    pub fn scaled_to(model: &QuboModel, sweeps: u64, seed: u64) -> Self {
        let w = model.max_abs_weight().max(1) as f64;
        Self {
            sweeps,
            t_hot: 2.0 * w,
            t_cold: 0.05 * w.clamp(1.0, 20.0),
            seed,
        }
    }
}

/// The annealer.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    pub config: SaConfig,
}

impl SimulatedAnnealing {
    pub fn new(config: SaConfig) -> Self {
        assert!(config.sweeps >= 1);
        assert!(config.t_hot > 0.0 && config.t_cold > 0.0);
        assert!(config.t_hot >= config.t_cold, "schedule must cool");
        Self { config }
    }

    /// Anneal from a random start.
    pub fn solve(&self, model: &QuboModel) -> BaselineResult {
        let mut rng = Xorshift64Star::new(self.config.seed);
        let start_vec = Solution::random(model.n(), &mut rng);
        self.solve_from(model, start_vec, &mut rng)
    }

    /// Anneal from a given start vector with a caller-supplied RNG (used by
    /// the hybrid portfolio to chain restarts).
    pub fn solve_from<R: Rng64 + ?Sized>(
        &self,
        model: &QuboModel,
        start_vec: Solution,
        rng: &mut R,
    ) -> BaselineResult {
        let started = Instant::now();
        let n = model.n();
        let mut state = IncrementalState::from_solution(model, start_vec);
        let mut best = BestTracker::new(state.solution().clone(), state.energy());

        let sweeps = self.config.sweeps;
        let ratio = (self.config.t_cold / self.config.t_hot).max(f64::MIN_POSITIVE);
        for sweep in 0..sweeps {
            let frac = if sweeps <= 1 {
                1.0
            } else {
                sweep as f64 / (sweeps - 1) as f64
            };
            let temp = self.config.t_hot * ratio.powf(frac);
            for _ in 0..n {
                let i = rng.next_index(n);
                let d = state.delta(i);
                if d <= 0 || rng.next_f64() < (-(d as f64) / temp).exp() {
                    state.flip(i);
                    best.observe(&state);
                }
            }
        }
        let (best, energy) = best.into_parts();
        BaselineResult {
            best,
            energy,
            elapsed: started.elapsed(),
            work: sweeps,
            proven_optimal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_model::QuboBuilder;

    fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    fn brute_force(q: &QuboModel) -> i64 {
        let n = q.n();
        let mut best = i64::MAX;
        for v in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            best = best.min(q.energy(&Solution::from_bits(&bits)));
        }
        best
    }

    #[test]
    fn finds_small_optimum() {
        let q = random_model(16, 0.4, 301);
        let opt = brute_force(&q);
        let sa = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 400, 302));
        let r = sa.solve(&q);
        assert_eq!(r.energy, opt, "SA should solve 16-bit models");
        assert_eq!(q.energy(&r.best), r.energy);
    }

    #[test]
    fn deterministic_per_seed() {
        let q = random_model(30, 0.3, 303);
        let sa = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 50, 7));
        assert_eq!(sa.solve(&q).energy, sa.solve(&q).energy);
    }

    #[test]
    fn more_sweeps_do_not_hurt() {
        let q = random_model(40, 0.3, 304);
        let short = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 5, 9)).solve(&q);
        let long = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 500, 9)).solve(&q);
        assert!(
            long.energy <= short.energy,
            "long anneal {} worse than short {}",
            long.energy,
            short.energy
        );
    }

    #[test]
    fn result_energy_matches_model() {
        let q = random_model(25, 0.4, 305);
        let r = SimulatedAnnealing::new(SaConfig::scaled_to(&q, 30, 11)).solve(&q);
        assert_eq!(q.energy(&r.best), r.energy);
        assert_eq!(r.work, 30);
    }

    #[test]
    #[should_panic(expected = "schedule must cool")]
    fn rejects_heating_schedule() {
        SimulatedAnnealing::new(SaConfig {
            sweeps: 10,
            t_hot: 1.0,
            t_cold: 5.0,
            seed: 1,
        });
    }
}
