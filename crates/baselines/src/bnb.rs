//! Branch-and-bound QUBO solver with a time limit — the repo's stand-in for
//! the paper's Gurobi runs (MIPFocus=1, TimeLimit=3600 s).
//!
//! Depth-first over variables `0..n` in index order. At depth `d`, variables
//! `< d` are fixed; the bound is
//!
//! ```text
//! E_fixed + Σ_{j ≥ d} min(0, W_jj + link_j) + suffix_neg[d]
//! ```
//!
//! where `link_j = Σ_{i < d, x_i = 1} W_ij` (incrementally maintained) and
//! `suffix_neg[d] = Σ_{d ≤ i < j} min(0, W_ij)` (precomputed). Like Gurobi
//! with `MIPFocus = 1`, an initial heuristic phase (greedy multi-start)
//! seeds the incumbent so the search reports a useful best-at-deadline even
//! when the tree is hopeless (2000-bit MaxCut). Optimality is proven only
//! when the whole tree is exhausted within the limit.

use crate::BaselineResult;
use dabs_model::{BestTracker, IncrementalState, QuboModel, Solution};
use dabs_rng::Xorshift64Star;
use dabs_search::{greedy, TabuList};
use std::time::{Duration, Instant};

/// Configuration of a branch-and-bound run.
#[derive(Debug, Clone, Copy)]
pub struct BnbConfig {
    /// Wall-clock limit for the whole run (heuristics + tree).
    pub time_limit: Duration,
    /// Random restarts of the incumbent heuristic.
    pub heuristic_restarts: u32,
    /// RNG seed for the heuristic phase.
    pub seed: u64,
}

impl Default for BnbConfig {
    fn default() -> Self {
        Self {
            time_limit: Duration::from_secs(10),
            heuristic_restarts: 16,
            seed: 1,
        }
    }
}

/// The solver.
#[derive(Debug, Clone)]
pub struct BranchAndBound {
    pub config: BnbConfig,
}

impl BranchAndBound {
    pub fn new(config: BnbConfig) -> Self {
        Self { config }
    }

    /// Solve (or run out of time trying).
    pub fn solve(&self, model: &QuboModel) -> BaselineResult {
        let started = Instant::now();
        let n = model.n();
        let deadline = started + self.config.time_limit;

        // ---- heuristic incumbent (greedy multi-start) -------------------
        let mut rng = Xorshift64Star::new(self.config.seed);
        let mut incumbent = BestTracker::unbounded(n);
        for restart in 0..self.config.heuristic_restarts.max(1) {
            if Instant::now() >= deadline {
                break;
            }
            let start_vec = if restart == 0 {
                Solution::zeros(n)
            } else {
                Solution::random(n, &mut rng)
            };
            let mut state = IncrementalState::from_solution(model, start_vec);
            let mut tabu = TabuList::new(n, 0);
            greedy(&mut state, &mut incumbent, &mut tabu, u64::MAX);
        }

        // ---- exact tree search ------------------------------------------
        let mut searcher = TreeSearch::new(model, deadline);
        let completed = searcher.run(&mut incumbent);

        let (best, energy) = incumbent.into_parts();
        BaselineResult {
            best,
            energy,
            elapsed: started.elapsed(),
            work: searcher.nodes,
            proven_optimal: completed,
        }
    }
}

/// Iterative DFS state for the exact phase.
struct TreeSearch<'m> {
    model: &'m QuboModel,
    deadline: Instant,
    /// `suffix_neg[d]` = Σ of negative off-diagonal weights with both
    /// endpoints ≥ d.
    suffix_neg: Vec<i64>,
    /// `link[j]` = Σ over fixed `i` with `x_i = 1` of `W_ij`.
    link: Vec<i64>,
    assignment: Vec<bool>,
    nodes: u64,
}

impl<'m> TreeSearch<'m> {
    fn new(model: &'m QuboModel, deadline: Instant) -> Self {
        let n = model.n();
        let mut suffix_neg = vec![0i64; n + 1];
        for d in (0..n).rev() {
            // edges (d, j) with j > d
            let row_neg: i64 = model
                .neighbors(d)
                .filter(|&(j, _)| j > d)
                .map(|(_, w)| w.min(0))
                .sum();
            suffix_neg[d] = suffix_neg[d + 1] + row_neg;
        }
        Self {
            model,
            deadline,
            suffix_neg,
            link: vec![0; n],
            assignment: vec![false; n],
            nodes: 0,
        }
    }

    /// Run DFS; returns `true` if the tree was exhausted (optimum proven).
    fn run(&mut self, incumbent: &mut BestTracker) -> bool {
        self.dfs(0, 0, incumbent)
    }

    fn dfs(&mut self, depth: usize, e_fixed: i64, incumbent: &mut BestTracker) -> bool {
        self.nodes += 1;
        if self.nodes.is_multiple_of(4096) && Instant::now() >= self.deadline {
            return false;
        }
        let n = self.model.n();
        if depth == n {
            if e_fixed < incumbent.energy() {
                let sol = Solution::from_bits(&self.assignment);
                debug_assert_eq!(self.model.energy(&sol), e_fixed);
                incumbent.observe_value(&sol, e_fixed);
            }
            return true;
        }
        // bound
        let mut bound = e_fixed + self.suffix_neg[depth];
        for j in depth..n {
            bound += (self.model.diag(j) + self.link[j]).min(0);
        }
        if bound >= incumbent.energy() {
            return true; // pruned, but subtree fully accounted for
        }

        // branch: try x_depth = 1 first when its immediate gain is negative
        let gain_one = self.model.diag(depth) + self.link[depth];
        let order = if gain_one < 0 {
            [true, false]
        } else {
            [false, true]
        };
        let mut complete = true;
        for value in order {
            self.assignment[depth] = value;
            if value {
                for (j, w) in self.model.neighbors(depth) {
                    if j > depth {
                        self.link[j] += w;
                    }
                }
                complete &= self.dfs(depth + 1, e_fixed + gain_one, incumbent);
                for (j, w) in self.model.neighbors(depth) {
                    if j > depth {
                        self.link[j] -= w;
                    }
                }
            } else {
                complete &= self.dfs(depth + 1, e_fixed, incumbent);
            }
            if !complete && Instant::now() >= self.deadline {
                self.assignment[depth] = false;
                return false;
            }
        }
        self.assignment[depth] = false;
        complete
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive;
    use dabs_model::QuboBuilder;
    use dabs_rng::Rng64;

    fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn proves_small_optima() {
        for seed in [321u64, 322, 323] {
            let q = random_model(16, 0.4, seed);
            let truth = exhaustive(&q);
            let r = BranchAndBound::new(BnbConfig::default()).solve(&q);
            assert!(r.proven_optimal, "16-bit tree must finish");
            assert_eq!(r.energy, truth.energy, "seed {seed}");
            assert_eq!(q.energy(&r.best), r.energy);
        }
    }

    #[test]
    fn prunes_against_naive_node_count() {
        // With pruning, nodes visited must be well under the full 2^{n+1}.
        let q = random_model(18, 0.3, 324);
        let r = BranchAndBound::new(BnbConfig::default()).solve(&q);
        assert!(r.proven_optimal);
        assert!(
            r.work < (1u64 << 19),
            "no pruning happened: {} nodes",
            r.work
        );
    }

    #[test]
    fn deadline_returns_incumbent_without_proof() {
        let q = random_model(40, 0.5, 325);
        let r = BranchAndBound::new(BnbConfig {
            time_limit: Duration::from_millis(50),
            heuristic_restarts: 4,
            seed: 2,
        })
        .solve(&q);
        assert!(!r.proven_optimal, "40-bit tree cannot finish in 50 ms");
        // incumbent must still be a locally-decent solution
        assert_eq!(q.energy(&r.best), r.energy);
        assert!(r.energy < 0, "heuristic incumbent should find negatives");
    }

    #[test]
    fn incumbent_heuristic_alone_is_reasonable() {
        // compare against pure greedy-from-zero: multi-start must not lose
        let q = random_model(30, 0.4, 326);
        let r = BranchAndBound::new(BnbConfig {
            time_limit: Duration::from_millis(200),
            heuristic_restarts: 8,
            seed: 3,
        })
        .solve(&q);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(30);
        let mut tabu = TabuList::new(30, 0);
        greedy(&mut st, &mut best, &mut tabu, u64::MAX);
        assert!(r.energy <= best.energy());
    }
}
