//! Comparator solvers standing in for the paper's commercial/hardware
//! baselines (see DESIGN.md's substitution table).
//!
//! | Paper baseline | This crate |
//! |---|---|
//! | Gurobi 9.5.1 (MIP, 3 600 s) | [`bnb::BranchAndBound`] — exact with time limit, incumbent heuristics |
//! | (optimality proofs) | [`exact::exhaustive`] — Gray-code enumeration for small `n` |
//! | D-Wave Advantage 4.1 | [`annealer::AnalogAnnealer`] — resolution-quantised, noise-corrupted sampler |
//! | D-Wave Hybrid solver | [`hybrid::HybridSolver`] — time-boxed SA/greedy portfolio |
//! | CIM / SBM / dSB | [`sb::SimulatedBifurcation`] — ballistic and discrete SB dynamics |
//! | (generic reference) | [`sa::SimulatedAnnealing`] — Metropolis annealing on the QUBO |
//!
//! All solvers consume the same [`dabs_model::QuboModel`] /
//! [`dabs_model::IsingModel`] types as DABS, so every Table II–IV row runs
//! on identical instances.

pub mod annealer;
pub mod bnb;
pub mod exact;
pub mod hybrid;
pub mod sa;
pub mod sb;

use dabs_model::Solution;
use std::time::Duration;

/// Common result shape for every baseline.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Best solution found.
    pub best: Solution,
    /// Its energy under the *true* model.
    pub energy: i64,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// Solver-specific work counter (sweeps, nodes, reads, steps).
    pub work: u64,
    /// For exact solvers: whether optimality was proven.
    pub proven_optimal: bool,
}
