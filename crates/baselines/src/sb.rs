//! Simulated Bifurcation (SB) — the CIM/SBM-class comparator (paper
//! Table II rows "CIM" and the dSB discussion of §VI-A).
//!
//! SB simulates the classical adiabatic dynamics of Kerr-nonlinear
//! oscillators (Goto et al., Science Advances 2019/2021):
//!
//! ```text
//! ẏ_i = −(a0 − a(t))·x_i − c0·(Σ_j J_ij f(x_j) + h_i)
//! ẋ_i = a0·y_i
//! ```
//!
//! integrated with the symplectic Euler method while the pump `a(t)` ramps
//! from 0 to `a0`. The **ballistic** variant (bSB) uses `f(x) = x` with
//! inelastic walls at `|x| = 1`; the **discrete** variant (dSB) uses
//! `f(x) = sign(x)`, which suppresses analog error and is the stronger
//! combinatorial solver (the FPGA dSB of \[14\] is the paper's fastest
//! external competitor on K2000).
//!
//! Signs: we minimise `H(S) = Σ J s s + Σ h s`, so the coupling force
//! pushes `x_i` opposite to its local field.

use crate::BaselineResult;
use dabs_model::{IsingModel, Solution};
use dabs_rng::{Rng64, Xorshift64Star};
use std::time::Instant;

/// Which SB variant to integrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SbVariant {
    /// Ballistic: continuous positions in the coupling term.
    Ballistic,
    /// Discrete: sign-binarised positions in the coupling term.
    Discrete,
}

/// Integration parameters.
#[derive(Debug, Clone, Copy)]
pub struct SbConfig {
    pub variant: SbVariant,
    /// Number of time steps.
    pub steps: u32,
    /// Time step.
    pub dt: f64,
    /// Detuning `a0`.
    pub a0: f64,
    /// Evaluate the Hamiltonian of the sign snapshot every `k` steps.
    pub eval_every: u32,
    /// RNG seed for the initial perturbation.
    pub seed: u64,
}

impl Default for SbConfig {
    fn default() -> Self {
        Self {
            variant: SbVariant::Discrete,
            steps: 1000,
            dt: 0.5,
            a0: 1.0,
            eval_every: 10,
            seed: 1,
        }
    }
}

/// The SB integrator.
#[derive(Debug, Clone)]
pub struct SimulatedBifurcation {
    pub config: SbConfig,
}

impl SimulatedBifurcation {
    pub fn new(config: SbConfig) -> Self {
        assert!(config.steps >= 1 && config.dt > 0.0 && config.a0 > 0.0);
        assert!(config.eval_every >= 1);
        Self { config }
    }

    /// Minimise the Hamiltonian of `ising`; returns the best sign snapshot.
    pub fn solve(&self, ising: &IsingModel) -> BaselineResult {
        let started = Instant::now();
        let n = ising.n();
        let cfg = &self.config;
        let mut rng = Xorshift64Star::new(cfg.seed);

        // c0 = 0.5 / (√⟨J²⟩ · √n), the standard coupling normalisation.
        let mean_sq: f64 = {
            let m = ising.edge_count().max(1) as f64;
            let sum: f64 = ising
                .couplings()
                .iter_edges()
                .map(|(_, _, j)| (j * j) as f64)
                .sum();
            (sum / m).max(f64::MIN_POSITIVE)
        };
        let c0 = 0.5 / (mean_sq.sqrt() * (n as f64).sqrt());

        // tiny random initial positions break symmetry
        let mut x: Vec<f64> = (0..n).map(|_| (rng.next_f64() - 0.5) * 0.1).collect();
        let mut y: Vec<f64> = vec![0.0; n];
        let mut force: Vec<f64> = vec![0.0; n];

        let mut best_energy = i64::MAX;
        let mut best = Solution::zeros(n);
        let mut evals = 0u64;

        for step in 0..cfg.steps {
            let a = cfg.a0 * (step as f64 / cfg.steps as f64);
            // forces from the (possibly binarised) neighbour positions
            for i in 0..n {
                let mut field = ising.bias(i) as f64;
                for (j, jij) in ising.couplings().neighbors(i) {
                    let xj = match cfg.variant {
                        SbVariant::Ballistic => x[j],
                        SbVariant::Discrete => {
                            if x[j] >= 0.0 {
                                1.0
                            } else {
                                -1.0
                            }
                        }
                    };
                    field += jij as f64 * xj;
                }
                force[i] = -(cfg.a0 - a) * x[i] - c0 * field;
            }
            for i in 0..n {
                y[i] += force[i] * cfg.dt;
                x[i] += cfg.a0 * y[i] * cfg.dt;
                // inelastic walls
                if x[i].abs() > 1.0 {
                    x[i] = x[i].signum();
                    y[i] = 0.0;
                }
            }
            if step % cfg.eval_every == 0 || step + 1 == cfg.steps {
                let snapshot = sign_snapshot(&x);
                let h = ising.hamiltonian(&snapshot);
                evals += 1;
                if h < best_energy {
                    best_energy = h;
                    best = snapshot;
                }
            }
        }
        BaselineResult {
            best,
            energy: best_energy,
            elapsed: started.elapsed(),
            work: evals,
            proven_optimal: false,
        }
    }
}

/// Positions → spin bits (`x ≥ 0` ⇒ spin +1 ⇒ bit 1).
fn sign_snapshot(x: &[f64]) -> Solution {
    let mut s = Solution::zeros(x.len());
    for (i, &xi) in x.iter().enumerate() {
        if xi >= 0.0 {
            s.set(i, true);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dabs_model::IsingModel;

    fn random_ising(n: usize, density: f64, seed: u64) -> IsingModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    let mut w = rng.next_range_i64(-3, 3);
                    if w == 0 {
                        w = 1;
                    }
                    edges.push((i, j, w));
                }
            }
        }
        let biases: Vec<i64> = (0..n).map(|_| rng.next_range_i64(-2, 2)).collect();
        IsingModel::new(n, &edges, biases).unwrap()
    }

    fn brute_force_h(m: &IsingModel) -> i64 {
        let n = m.n();
        let mut best = i64::MAX;
        for v in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            best = best.min(m.hamiltonian(&Solution::from_bits(&bits)));
        }
        best
    }

    #[test]
    fn dsb_solves_ferromagnet() {
        // All J = −1 on a cycle: ground state is all-aligned, H = −n.
        let n = 12;
        let edges: Vec<(usize, usize, i64)> = (0..n).map(|i| (i, (i + 1) % n, -1)).collect();
        let m = IsingModel::new(n, &edges, vec![0; n]).unwrap();
        let r = SimulatedBifurcation::new(SbConfig::default()).solve(&m);
        assert_eq!(r.energy, -(n as i64), "ferromagnetic ground state");
    }

    #[test]
    fn dsb_near_optimal_on_random_instances() {
        let m = random_ising(14, 0.5, 331);
        let opt = brute_force_h(&m);
        let r = SimulatedBifurcation::new(SbConfig {
            steps: 3000,
            seed: 332,
            ..SbConfig::default()
        })
        .solve(&m);
        assert_eq!(m.hamiltonian(&r.best), r.energy);
        // dSB should land within 10 % of optimum on a 14-spin instance
        let gap = (r.energy - opt).abs() as f64 / opt.abs().max(1) as f64;
        assert!(gap <= 0.10, "dSB energy {} vs optimum {opt}", r.energy);
    }

    #[test]
    fn ballistic_variant_runs_and_reports_consistent_energy() {
        let m = random_ising(20, 0.3, 333);
        let r = SimulatedBifurcation::new(SbConfig {
            variant: SbVariant::Ballistic,
            steps: 500,
            seed: 334,
            ..SbConfig::default()
        })
        .solve(&m);
        assert_eq!(m.hamiltonian(&r.best), r.energy);
        assert!(r.work > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = random_ising(16, 0.4, 335);
        let run = |seed| {
            SimulatedBifurcation::new(SbConfig {
                seed,
                ..SbConfig::default()
            })
            .solve(&m)
            .energy
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn positions_stay_in_walls() {
        // indirectly: energies must be finite and snapshot length right
        let m = random_ising(10, 0.5, 336);
        let r = SimulatedBifurcation::new(SbConfig {
            steps: 200,
            dt: 1.0, // aggressive step to stress the walls
            ..SbConfig::default()
        })
        .solve(&m);
        assert_eq!(r.best.len(), 10);
        assert!(r.energy.abs() < 1_000_000);
    }
}
