//! Time-boxed hybrid portfolio — the D-Wave Hybrid solver stand-in
//! (paper §VI-A/B: runs for a fixed limit `T` and returns its best).
//!
//! Like the real hybrid service, it interleaves global exploration with
//! local refinement until the deadline:
//!
//! 1. an SA restart from a random vector (exploration),
//! 2. greedy polish of the SA result,
//! 3. a *kick* phase: perturb the incumbent (random segment re-randomised)
//!    and re-polish — a large-neighbourhood move around the best known
//!    solution.
//!
//! Strong on unconstrained problems (MaxCut), notably weaker on the
//! penalty-cliff landscape of one-hot QAP encodings — the same qualitative
//! profile the paper reports for the D-Wave Hybrid solver.

use crate::sa::{SaConfig, SimulatedAnnealing};
use crate::BaselineResult;
use dabs_model::{BestTracker, IncrementalState, QuboModel, Solution};
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};
use dabs_search::{greedy, TabuList};
use std::time::{Duration, Instant};

/// Configuration of the hybrid portfolio.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// The fixed wall-clock budget (the paper's `T = 50/100/200 s`, scaled).
    pub time_limit: Duration,
    /// Sweeps per SA restart.
    pub sa_sweeps: u64,
    /// Kick iterations between SA restarts.
    pub kicks_per_round: u32,
    /// Fraction of bits re-randomised by a kick.
    pub kick_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            time_limit: Duration::from_millis(500),
            sa_sweeps: 50,
            kicks_per_round: 4,
            kick_fraction: 0.15,
            seed: 1,
        }
    }
}

/// The portfolio solver.
#[derive(Debug, Clone)]
pub struct HybridSolver {
    pub config: HybridConfig,
}

impl HybridSolver {
    pub fn new(config: HybridConfig) -> Self {
        assert!(config.time_limit > Duration::ZERO);
        assert!((0.0..=1.0).contains(&config.kick_fraction));
        Self { config }
    }

    /// Run until the deadline; always returns the best solution seen.
    pub fn solve(&self, model: &QuboModel) -> BaselineResult {
        let started = Instant::now();
        let deadline = started + self.config.time_limit;
        let n = model.n();
        let mut seeder = SplitMix64::new(self.config.seed);
        let mut rng = Xorshift64Star::new(seeder.next_u64());
        let mut best = BestTracker::unbounded(n);
        let mut rounds = 0u64;

        while Instant::now() < deadline {
            rounds += 1;
            // 1. SA restart
            let sa = SimulatedAnnealing::new(SaConfig::scaled_to(
                model,
                self.config.sa_sweeps,
                seeder.next_u64(),
            ));
            let r = sa.solve_from(model, Solution::random(n, &mut rng), &mut rng);
            best.observe_value(&r.best, r.energy);

            // 2. polish
            let mut state = IncrementalState::from_solution(model, r.best);
            let mut tabu = TabuList::new(n, 0);
            greedy(&mut state, &mut best, &mut tabu, u64::MAX);

            // 3. kicks around the incumbent
            for _ in 0..self.config.kicks_per_round {
                if Instant::now() >= deadline {
                    break;
                }
                let mut kicked = best.solution().clone();
                let kick_bits = ((n as f64 * self.config.kick_fraction) as usize).max(1);
                for _ in 0..kick_bits {
                    let i = rng.next_index(n);
                    kicked.set(i, rng.next_bool(0.5));
                }
                let mut state = IncrementalState::from_solution(model, kicked);
                greedy(&mut state, &mut best, &mut tabu, u64::MAX);
            }
        }

        let (best, energy) = best.into_parts();
        BaselineResult {
            best,
            energy,
            elapsed: started.elapsed(),
            work: rounds,
            proven_optimal: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exhaustive;
    use dabs_model::QuboBuilder;

    fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_small_optimum_within_budget() {
        let q = random_model(16, 0.4, 341);
        let truth = exhaustive(&q);
        let r = HybridSolver::new(HybridConfig {
            time_limit: Duration::from_millis(400),
            seed: 342,
            ..HybridConfig::default()
        })
        .solve(&q);
        assert_eq!(r.energy, truth.energy);
        assert_eq!(q.energy(&r.best), r.energy);
    }

    #[test]
    fn respects_deadline_roughly() {
        let q = random_model(60, 0.2, 343);
        let limit = Duration::from_millis(150);
        let r = HybridSolver::new(HybridConfig {
            time_limit: limit,
            seed: 344,
            ..HybridConfig::default()
        })
        .solve(&q);
        assert!(
            r.elapsed < limit + Duration::from_secs(2),
            "overshot deadline: {:?}",
            r.elapsed
        );
        assert!(r.work >= 1);
    }

    #[test]
    fn longer_budget_never_worse() {
        let q = random_model(40, 0.3, 345);
        let short = HybridSolver::new(HybridConfig {
            time_limit: Duration::from_millis(30),
            seed: 9,
            ..HybridConfig::default()
        })
        .solve(&q);
        let long = HybridSolver::new(HybridConfig {
            time_limit: Duration::from_millis(600),
            seed: 9,
            ..HybridConfig::default()
        })
        .solve(&q);
        assert!(long.energy <= short.energy);
    }
}
