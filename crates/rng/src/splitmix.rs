//! SplitMix64: a tiny, fast generator used to expand seeds.
//!
//! SplitMix64 (Steele, Lea, Flood — "Fast splittable pseudorandom number
//! generators") passes through every 64-bit state exactly once per period,
//! which makes it the standard choice for turning one `u64` seed into the
//! initial state of larger generators without correlation artifacts.

use crate::Rng64;

/// SplitMix64 generator. Period 2^64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 1234567 (from the public-domain reference C
    /// implementation by Sebastiano Vigna).
    #[test]
    fn matches_reference_vectors() {
        let mut sm = SplitMix64::new(1234567);
        let expected: [u64; 5] = [
            6457827717110365317,
            3203168211198807973,
            9817491932198370423,
            4593380528125082431,
            16408922859458223821,
        ];
        for &e in &expected {
            assert_eq!(sm.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }
}
