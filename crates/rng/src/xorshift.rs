//! Xorshift-family generators used as the per-"device thread" stream.
//!
//! The paper's GPU kernels run Marsaglia xorshift seeded from host-side
//! Mersenne-twister output because each flip may need several random numbers
//! and the generator must be registers-only. [`Xorshift64Star`] is the
//! 64-bit xorshift with the multiplicative output scrambler (Vigna's
//! `xorshift64*`), which fixes the weak low bits of plain xorshift.
//! [`Xoshiro256StarStar`] is provided for longer streams where many
//! generators run in parallel from nearby seeds.

use crate::{Rng64, SplitMix64};

/// `xorshift64*`: 64-bit state, period 2^64 - 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xorshift64Star {
    state: u64,
}

impl Xorshift64Star {
    /// Create from a seed. A zero seed is remapped through SplitMix64 so the
    /// all-zero absorbing state can never occur.
    pub fn new(seed: u64) -> Self {
        let state = if seed == 0 {
            SplitMix64::new(0xDAB5_0DD5).next_u64() | 1
        } else {
            seed
        };
        Self { state }
    }
}

impl Rng64 for Xorshift64Star {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// `xoshiro256**`: 256-bit state, period 2^256 - 1, with `jump()` for
/// generating 2^128-decorrelated parallel streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Advance the state by 2^128 steps; used to split one seed into many
    /// non-overlapping parallel streams.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180EC6D33CFD0ABA,
            0xD5A61266F0C9392C,
            0xA9582618E03FC9AA,
            0x39ABDC4529B1661C,
        ];
        let mut t = [0u64; 4];
        for &j in &JUMP {
            for b in 0..64 {
                if (j >> b) & 1 == 1 {
                    for (ti, si) in t.iter_mut().zip(self.s.iter()) {
                        *ti ^= si;
                    }
                }
                self.next_u64();
            }
        }
        self.s = t;
    }
}

impl Rng64 for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_zero_seed_is_safe() {
        let mut rng = Xorshift64Star::new(0);
        assert_ne!(rng.next_u64(), 0, "must not collapse to zero state");
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn xorshift_deterministic() {
        let mut a = Xorshift64Star::new(777);
        let mut b = Xorshift64Star::new(777);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xorshift_reference_first_output() {
        // xorshift64* with seed 1: x=1 -> x ^= x>>12; x ^= x<<25; x ^= x>>27
        // then * 2685821657736338717
        let mut rng = Xorshift64Star::new(1);
        let mut x: u64 = 1;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        assert_eq!(rng.next_u64(), x.wrapping_mul(0x2545_F491_4F6C_DD1D));
    }

    #[test]
    fn xoshiro_jump_decorrelates() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = a;
        b.jump();
        let collisions = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn xorshift_uniformity_rough() {
        // Mean of 100k uniform [0,1) draws should be near 0.5.
        let mut rng = Xorshift64Star::new(31337);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn xorshift_bit_balance() {
        // Every bit position should be set roughly half the time.
        let mut rng = Xorshift64Star::new(4242);
        let n = 20_000u32;
        let mut counts = [0u32; 64];
        for _ in 0..n {
            let v = rng.next_u64();
            for (b, c) in counts.iter_mut().enumerate() {
                *c += ((v >> b) & 1) as u32;
            }
        }
        for (b, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 0.5).abs() < 0.03,
                "bit {b} set fraction {frac} out of tolerance"
            );
        }
    }
}
