//! Deterministic pseudo-random number generation for the DABS solver.
//!
//! The paper's GPU implementation seeds every CUDA thread with a 64-bit seed
//! produced by a host-side Mersenne twister, and each device thread then runs
//! Xorshift for cheap per-flip randomness. This crate reproduces that split:
//!
//! * [`Mt19937_64`] — the 64-bit Mersenne twister (Matsumoto & Nishimura),
//!   used on the host to derive seeds for pools, devices and blocks.
//! * [`Xorshift64Star`] — Marsaglia's xorshift with the `*` output scrambler,
//!   the per-"thread" generator used inside search kernels.
//! * [`SplitMix64`] — a tiny seeding generator used to expand a single `u64`
//!   seed into well-distributed initial state.
//!
//! All generators implement the object-safe [`Rng64`] trait, so search code
//! can be written once and tested against any generator (including the
//! [`CountingRng`] / [`FixedSequence`] test doubles).

mod mt;
mod splitmix;
mod xorshift;

pub use mt::Mt19937_64;
pub use splitmix::SplitMix64;
pub use xorshift::{Xorshift64Star, Xoshiro256StarStar};

/// A 64-bit pseudo-random generator.
///
/// The provided methods derive bounded integers, floats and Bernoulli draws
/// from the raw `next_u64` stream; implementors only supply the stream.
pub trait Rng64 {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `u32`.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: the standard (value >> 11) * 2^-53 recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased and
    /// avoids the modulo on the hot path.
    #[inline]
    fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below bound must be > 0");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            // threshold = 2^64 mod bound
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    #[inline]
    fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    fn next_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.next_below(span) as i64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Fisher–Yates shuffle of a slice, driven by any [`Rng64`].
pub fn shuffle<T, R: Rng64 + ?Sized>(slice: &mut [T], rng: &mut R) {
    for i in (1..slice.len()).rev() {
        let j = rng.next_index(i + 1);
        slice.swap(i, j);
    }
}

/// Sample a random permutation of `0..n`.
pub fn random_permutation<R: Rng64 + ?Sized>(n: usize, rng: &mut R) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    shuffle(&mut perm, rng);
    perm
}

/// Test double: yields a fixed sequence, then panics when exhausted.
#[derive(Debug, Clone)]
pub struct FixedSequence {
    values: Vec<u64>,
    pos: usize,
}

impl FixedSequence {
    pub fn new(values: Vec<u64>) -> Self {
        Self { values, pos: 0 }
    }
}

impl Rng64 for FixedSequence {
    fn next_u64(&mut self) -> u64 {
        let v = self.values[self.pos % self.values.len()];
        self.pos += 1;
        v
    }
}

/// Test double: yields 0, 1, 2, ... wrapping; useful for deterministic walks.
#[derive(Debug, Clone, Default)]
pub struct CountingRng(pub u64);

impl Rng64 for CountingRng {
    fn next_u64(&mut self) -> u64 {
        let v = self.0;
        self.0 = self.0.wrapping_add(1);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xorshift64Star::new(12345);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f), "f64 out of range: {f}");
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xorshift64Star::new(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = Xorshift64Star::new(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_range_inclusive_endpoints() {
        let mut rng = Xorshift64Star::new(42);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..10_000 {
            let v = rng.next_range_i64(-3, 3);
            assert!((-3..=3).contains(&v));
            lo_seen |= v == -3;
            hi_seen |= v == 3;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xorshift64Star::new(5);
        let mut v: Vec<usize> = (0..100).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn random_permutation_has_all_elements() {
        let mut rng = Mt19937_64::new(2023);
        let p = random_permutation(64, &mut rng);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Xorshift64Star::new(1);
        for _ in 0..100 {
            assert!(!rng.next_bool(0.0));
            assert!(rng.next_bool(1.1)); // clamp semantics: p >= 1 always true
        }
    }

    #[test]
    fn counting_rng_counts() {
        let mut rng = CountingRng(10);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 11);
    }

    #[test]
    fn fixed_sequence_cycles() {
        let mut rng = FixedSequence::new(vec![1, 2]);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 2);
        assert_eq!(rng.next_u64(), 1);
    }
}
