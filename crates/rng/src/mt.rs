//! MT19937-64: the 64-bit Mersenne twister of Matsumoto and Nishimura.
//!
//! The DABS paper uses the Mersenne twister on the host to generate the
//! per-thread seeds shipped to the GPU. This is a direct implementation of
//! the reference algorithm (mt19937-64.c, 2004/9/29 version), validated
//! against the published test vectors in the unit tests below.

use crate::Rng64;

const NN: usize = 312;
const MM: usize = 156;
const MATRIX_A: u64 = 0xB502_6F5A_A966_19E9;
const UPPER_MASK: u64 = 0xFFFF_FFFF_8000_0000; // most significant 33 bits
const LOWER_MASK: u64 = 0x0000_0000_7FFF_FFFF; // least significant 31 bits

/// 64-bit Mersenne twister with period 2^19937 - 1.
#[derive(Clone)]
pub struct Mt19937_64 {
    state: [u64; NN],
    index: usize,
}

impl std::fmt::Debug for Mt19937_64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937_64")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

impl Mt19937_64 {
    /// Initialise from a single 64-bit seed (reference `init_genrand64`).
    pub fn new(seed: u64) -> Self {
        let mut state = [0u64; NN];
        state[0] = seed;
        for i in 1..NN {
            state[i] = 6364136223846793005u64
                .wrapping_mul(state[i - 1] ^ (state[i - 1] >> 62))
                .wrapping_add(i as u64);
        }
        Self { state, index: NN }
    }

    /// Initialise from a key array (reference `init_by_array64`).
    pub fn from_key(key: &[u64]) -> Self {
        let mut mt = Self::new(19650218);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut k = NN.max(key.len());
        while k > 0 {
            mt.state[i] = (mt.state[i]
                ^ (mt.state[i - 1] ^ (mt.state[i - 1] >> 62)).wrapping_mul(3935559000370003845))
            .wrapping_add(key[j])
            .wrapping_add(j as u64);
            i += 1;
            j += 1;
            if i >= NN {
                mt.state[0] = mt.state[NN - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = NN - 1;
        while k > 0 {
            mt.state[i] = (mt.state[i]
                ^ (mt.state[i - 1] ^ (mt.state[i - 1] >> 62)).wrapping_mul(2862933555777941757))
            .wrapping_sub(i as u64);
            i += 1;
            if i >= NN {
                mt.state[0] = mt.state[NN - 1];
                i = 1;
            }
            k -= 1;
        }
        mt.state[0] = 1u64 << 63; // assure non-zero initial state
        mt.index = NN;
        mt
    }

    fn refill(&mut self) {
        for i in 0..NN {
            let x = (self.state[i] & UPPER_MASK) | (self.state[(i + 1) % NN] & LOWER_MASK);
            let mut next = self.state[(i + MM) % NN] ^ (x >> 1);
            if x & 1 == 1 {
                next ^= MATRIX_A;
            }
            self.state[i] = next;
        }
        self.index = 0;
    }
}

impl Rng64 for Mt19937_64 {
    fn next_u64(&mut self) -> u64 {
        if self.index >= NN {
            self.refill();
        }
        let mut x = self.state[self.index];
        self.index += 1;
        x ^= (x >> 29) & 0x5555_5555_5555_5555;
        x ^= (x << 17) & 0x71D6_7FFF_EDA6_0000;
        x ^= (x << 37) & 0xFFF7_EEE0_0000_0000;
        x ^= x >> 43;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First ten outputs of `init_by_array64({0x12345, 0x23456, 0x34567, 0x45678})`
    /// from the reference implementation's mt19937-64.out.
    #[test]
    fn matches_reference_vectors() {
        let mut mt = Mt19937_64::from_key(&[0x12345, 0x23456, 0x34567, 0x45678]);
        let expected: [u64; 10] = [
            7266447313870364031,
            4946485549665804864,
            16945909448695747420,
            16394063075524226720,
            4873882236456199058,
            14877448043947020171,
            6740343660852211943,
            13857871200353263164,
            5249110015610582907,
            10205081126064480383,
        ];
        for &e in &expected {
            assert_eq!(mt.next_u64(), e);
        }
    }

    #[test]
    fn single_seed_is_deterministic() {
        let mut a = Mt19937_64::new(5489);
        let mut b = Mt19937_64::new(5489);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Mt19937_64::new(1);
        let mut b = Mt19937_64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 5, "streams should differ: {same} collisions");
    }

    #[test]
    fn refill_boundary_is_seamless() {
        // Crossing the NN-word buffer boundary must not repeat or skip.
        let mut a = Mt19937_64::new(7);
        let first: Vec<u64> = (0..NN * 2 + 5).map(|_| a.next_u64()).collect();
        let mut b = Mt19937_64::new(7);
        let second: Vec<u64> = (0..NN * 2 + 5).map(|_| b.next_u64()).collect();
        assert_eq!(first, second);
        // and outputs around the boundary are not trivially equal
        assert_ne!(first[NN - 1], first[NN]);
    }
}
