//! PositiveMin search (paper §III-A-6; originally from the authors' FPGA
//! solver \[13\]).
//!
//! Let `posmin = min{Δ_i : Δ_i > 0}`. Every bit with `Δ_i ≤ posmin` is a
//! candidate and one is flipped uniformly at random. Near a local minimum
//! few bits have negative gain, so the smallest *uphill* move gets selected
//! with substantial probability — a built-in escape mechanism that jumps
//! from one local minimum toward another.

use crate::TabuList;
use dabs_model::{BestTracker, IncrementalState, QuboKernel};
use dabs_rng::Rng64;

/// Run PositiveMin for `total_flips` flips. Returns the flips performed.
pub fn positive_min<K: QuboKernel, R: Rng64 + ?Sized>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    rng: &mut R,
    total_flips: u64,
) -> u64 {
    for _ in 0..total_flips {
        // posmin = smallest positive gain, plus the global argmin for the
        // Step-1 observation — both answered from the segment aggregates
        // (mixed-sign segments are the only ones scanned element-wise).
        let (argmin, _) = state.min_delta();
        let posmin = state.positive_min_delta();
        best.observe_neighbor(state, argmin);
        // If no gain is positive, every bit is a candidate (posmin = +∞).

        // Reservoir-sample among non-tabu bits with Δ_i ≤ posmin, skipping
        // segments whose min exceeds posmin.
        let chosen = state.select_le(posmin, rng, |k| !tabu.is_tabu(k));
        let bit = chosen.unwrap_or(argmin);
        state.flip(bit);
        tabu.record(bit);
        best.observe(state);
    }
    total_flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{brute_force_optimum, random_model};
    use dabs_rng::Xorshift64Star;

    #[test]
    fn performs_requested_flips_and_stays_consistent() {
        let q = random_model(48, 0.25, 71);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(48);
        let mut tabu = TabuList::new(48, 8);
        let mut rng = Xorshift64Star::new(72);
        let used = positive_min(&mut st, &mut best, &mut tabu, &mut rng, 300);
        assert_eq!(used, 300);
        st.assert_consistent();
    }

    #[test]
    fn finds_optimum_of_small_model() {
        let q = random_model(14, 0.5, 73);
        let opt = brute_force_optimum(&q);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(14);
        let mut tabu = TabuList::new(14, 4);
        let mut rng = Xorshift64Star::new(74);
        positive_min(&mut st, &mut best, &mut tabu, &mut rng, 6_000);
        assert_eq!(best.energy(), opt);
    }

    #[test]
    fn escapes_local_minima() {
        // From a local minimum, PositiveMin must take an uphill step
        // (some Δ become candidates via posmin) instead of stalling.
        let q = random_model(20, 0.5, 75);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(20);
        let mut tabu = TabuList::new(20, 0);
        // descend to a local min first
        crate::greedy(&mut st, &mut best, &mut tabu, u64::MAX);
        let local_min = st.solution().clone();
        let mut rng = Xorshift64Star::new(76);
        positive_min(&mut st, &mut best, &mut tabu, &mut rng, 5);
        assert_ne!(st.solution(), &local_min, "must move off the local minimum");
        st.assert_consistent();
    }

    #[test]
    fn candidate_set_obeys_posmin_rule() {
        // Verify the selection invariant on a crafted state: candidates are
        // exactly {i : Δ_i ≤ posmin}. We approximate by running one flip
        // many times from the same state and recording which bits get
        // chosen.
        let q = random_model(16, 0.5, 77);
        let base = IncrementalState::new(&q);
        let deltas: Vec<i64> = base.deltas().to_vec();
        let posmin = deltas
            .iter()
            .copied()
            .filter(|&d| d > 0)
            .min()
            .unwrap_or(i64::MAX);
        let allowed: Vec<usize> = (0..16).filter(|&i| deltas[i] <= posmin).collect();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200u64 {
            let mut st = base.clone();
            let mut best = BestTracker::unbounded(16);
            let mut tabu = TabuList::new(16, 0);
            let mut rng = Xorshift64Star::new(1000 + seed);
            positive_min(&mut st, &mut best, &mut tabu, &mut rng, 1);
            let flipped: Vec<usize> = (0..16).filter(|&i| st.bit(i)).collect();
            assert_eq!(flipped.len(), 1);
            assert!(
                allowed.contains(&flipped[0]),
                "flipped bit {} not in candidate set {allowed:?}",
                flipped[0]
            );
            seen.insert(flipped[0]);
        }
        // with 200 seeds we should see more than one distinct candidate
        // unless the candidate set is a singleton
        if allowed.len() > 1 {
            assert!(seen.len() > 1, "selection should be randomized");
        }
    }
}
