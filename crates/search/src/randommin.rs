//! RandomMin search (paper §III-A-5).
//!
//! At iteration `t` of `T`, every bit becomes a *candidate* independently
//! with probability `p(t) = max((t/T)³, c)` where `c = 32/n`; the candidate
//! with minimum gain is flipped. Early iterations sample few bits (diverse,
//! frequently uphill flips); late iterations sample nearly all bits
//! (converging to greedy) — the same annealing shape as MaxMin/CyclicMin
//! with a different randomisation.
//!
//! Candidates are drawn with geometric gap-skipping, so an iteration costs
//! `O(n·p(t))` expected rather than `O(n)` Bernoulli draws.

use crate::{cubic, TabuList};
use dabs_model::{BestTracker, IncrementalState, QuboKernel};
use dabs_rng::Rng64;

/// Run RandomMin for `total_flips` flips. Returns the flips performed.
pub fn random_min<K: QuboKernel, R: Rng64 + ?Sized>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    rng: &mut R,
    total_flips: u64,
) -> u64 {
    let n = state.n();
    let floor_p = (32.0 / n as f64).min(1.0);
    let t_max = total_flips;
    for t in 1..=t_max {
        let p = cubic(t as f64 / t_max as f64).max(floor_p).min(1.0);

        // Geometric skipping over 0..n: next candidate index jumps by
        // 1 + floor(log(U)/log(1-p)).
        let mut arg = usize::MAX;
        let mut min_d = i64::MAX;
        let mut i = skip(rng, p);
        while i < n {
            let d = state.delta(i);
            if d < min_d && !tabu.is_tabu(i) {
                min_d = d;
                arg = i;
            }
            i += 1 + skip(rng, p);
        }
        // No usable candidate (empty sample or all tabu): retry with a
        // single uniformly random non-tabu bit so the flip count stays
        // exact.
        let bit = if arg == usize::MAX {
            fallback_bit(state, tabu, rng)
        } else {
            arg
        };
        if arg != usize::MAX {
            best.observe_neighbor(state, arg);
        }
        state.flip(bit);
        tabu.record(bit);
        best.observe(state);
    }
    t_max
}

/// Geometric(1-p) gap: number of indices skipped before the next candidate.
#[inline]
fn skip<R: Rng64 + ?Sized>(rng: &mut R, p: f64) -> usize {
    if p >= 1.0 {
        return 0;
    }
    let u = rng.next_f64().max(f64::MIN_POSITIVE);
    let g = (u.ln() / (1.0 - p).ln()).floor();
    if g >= usize::MAX as f64 {
        usize::MAX
    } else {
        g as usize
    }
}

/// Uniformly random bit, preferring non-tabu ones.
fn fallback_bit<K: QuboKernel, R: Rng64 + ?Sized>(
    state: &IncrementalState<'_, K>,
    tabu: &TabuList,
    rng: &mut R,
) -> usize {
    let n = state.n();
    for _ in 0..8 {
        let k = rng.next_index(n);
        if !tabu.is_tabu(k) {
            return k;
        }
    }
    rng.next_index(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{brute_force_optimum, random_model};
    use dabs_rng::Xorshift64Star;

    #[test]
    fn performs_requested_flips_and_stays_consistent() {
        let q = random_model(64, 0.2, 61);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(64);
        let mut tabu = TabuList::new(64, 8);
        let mut rng = Xorshift64Star::new(62);
        let used = random_min(&mut st, &mut best, &mut tabu, &mut rng, 777);
        assert_eq!(used, 777);
        assert_eq!(st.flips(), 777);
        st.assert_consistent();
    }

    #[test]
    fn finds_optimum_of_small_model() {
        let q = random_model(13, 0.6, 63);
        let opt = brute_force_optimum(&q);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(13);
        let mut tabu = TabuList::new(13, 4);
        let mut rng = Xorshift64Star::new(64);
        random_min(&mut st, &mut best, &mut tabu, &mut rng, 6_000);
        assert_eq!(best.energy(), opt);
    }

    #[test]
    fn geometric_skip_mean_matches_probability() {
        // E[gap] = (1-p)/p; sample mean over many draws should be close.
        let mut rng = Xorshift64Star::new(65);
        let p = 0.2;
        let trials = 50_000;
        let total: usize = (0..trials).map(|_| skip(&mut rng, p)).sum();
        let mean = total as f64 / trials as f64;
        let expect = (1.0 - p) / p;
        assert!(
            (mean - expect).abs() < 0.15,
            "mean gap {mean}, expected {expect}"
        );
    }

    #[test]
    fn skip_handles_p_one() {
        let mut rng = Xorshift64Star::new(66);
        assert_eq!(skip(&mut rng, 1.0), 0);
    }

    #[test]
    fn late_iterations_approach_greedy() {
        // At t = T, p = 1, so the flip must be the global (non-tabu) argmin.
        let q = random_model(30, 0.4, 67);
        let mut st = IncrementalState::new(&q);
        let mut tabu = TabuList::new(30, 0);
        let mut rng = Xorshift64Star::new(68);
        // run T-1 of T flips manually via the public fn on a clone, then
        // check: single-iteration call with t_max = 1 gives p = 1 → argmin.
        let (argmin, _) = st.min_delta();
        let mut best = BestTracker::unbounded(30);
        random_min(&mut st, &mut best, &mut tabu, &mut rng, 1);
        assert_eq!(st.flips(), 1);
        // starting from the zero vector, the flipped bit must now be 1
        assert!(st.bit(argmin), "p=1 iteration must flip the global argmin");
    }
}
