//! The pre-segment **full-scan** selection path, kept verbatim as a
//! reference implementation.
//!
//! Before the segment-aggregate layer existed, every strategy re-scanned
//! the whole Δ array (often twice) to pick its next bit. These functions
//! preserve that code exactly, for two jobs:
//!
//! * **parity** — `tests/solver_parity.rs` proves the segment-accelerated
//!   strategies produce bit-identical trajectories, best solutions, and
//!   flip counts against these scans under the same RNG streams;
//! * **measurement** — the bench suite's `scan_sweep` entry reports the
//!   strategy-level flips/s of the segment path *relative to this one*, a
//!   machine-independent speedup that CI gates (`docs/BENCHMARKS.md`).
//!
//! Nothing in the production solvers calls into this module.

use crate::{cubic, TabuList};
use dabs_model::{BestTracker, IncrementalState, QuboKernel};
use dabs_rng::Rng64;

/// Full-scan argmin over the Δ array (the old `IncrementalState::min_delta`).
pub fn min_delta_scan<K: QuboKernel>(state: &IncrementalState<'_, K>) -> (usize, i64) {
    let deltas = state.deltas();
    let mut best = (0usize, deltas[0]);
    for (k, &d) in deltas.iter().enumerate().skip(1) {
        if d < best.1 {
            best = (k, d);
        }
    }
    best
}

/// [`crate::greedy`] with full-scan argmin selection.
pub fn greedy_scan<K: QuboKernel>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    max_flips: u64,
) -> u64 {
    let mut used = 0;
    best.observe(state);
    while used < max_flips {
        let (k, d) = min_delta_scan(state);
        if d >= 0 {
            break;
        }
        state.flip(k);
        tabu.record(k);
        used += 1;
        best.observe(state);
    }
    used
}

/// [`crate::max_min`] with two full Δ scans per flip (min/max/argmin pass,
/// then the reservoir pass).
pub fn max_min_scan<K: QuboKernel, R: Rng64 + ?Sized>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    rng: &mut R,
    total_flips: u64,
) -> u64 {
    let t_max = total_flips;
    for t in 1..=t_max {
        let deltas = state.deltas();
        let mut min_d = deltas[0];
        let mut max_d = deltas[0];
        let mut argmin = 0usize;
        for (k, &d) in deltas.iter().enumerate().skip(1) {
            if d < min_d {
                min_d = d;
                argmin = k;
            }
            if d > max_d {
                max_d = d;
            }
        }
        best.observe_neighbor(state, argmin);

        let u = cubic((t_max - t) as f64 / t_max as f64);
        let upper = (1.0 - u) * min_d as f64 + u * max_d as f64;
        let span = upper - min_d as f64;
        let threshold = min_d as f64 + rng.next_f64() * span.max(0.0);

        let mut chosen = usize::MAX;
        let mut count = 0u64;
        for (k, &d) in state.deltas().iter().enumerate() {
            if (d as f64) <= threshold && !tabu.is_tabu(k) {
                count += 1;
                if rng.next_below(count) == 0 {
                    chosen = k;
                }
            }
        }
        let bit = if chosen == usize::MAX { argmin } else { chosen };
        state.flip(bit);
        tabu.record(bit);
        best.observe(state);
    }
    t_max
}

/// [`crate::positive_min`] with two full Δ scans per flip.
pub fn positive_min_scan<K: QuboKernel, R: Rng64 + ?Sized>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    rng: &mut R,
    total_flips: u64,
) -> u64 {
    for _ in 0..total_flips {
        let deltas = state.deltas();
        let mut posmin = i64::MAX;
        let mut argmin = 0usize;
        let mut min_d = deltas[0];
        for (k, &d) in deltas.iter().enumerate() {
            if d > 0 && d < posmin {
                posmin = d;
            }
            if d < min_d {
                min_d = d;
                argmin = k;
            }
        }
        best.observe_neighbor(state, argmin);

        let mut chosen = usize::MAX;
        let mut count = 0u64;
        for (k, &d) in state.deltas().iter().enumerate() {
            if d <= posmin && !tabu.is_tabu(k) {
                count += 1;
                if rng.next_below(count) == 0 {
                    chosen = k;
                }
            }
        }
        let bit = if chosen == usize::MAX { argmin } else { chosen };
        state.flip(bit);
        tabu.record(bit);
        best.observe(state);
    }
    total_flips
}

/// [`crate::cyclic_min`] with an element-wise window scan per flip.
pub fn cyclic_min_scan<K: QuboKernel>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    total_flips: u64,
) -> u64 {
    let n = state.n();
    let floor = crate::cyclicmin::WINDOW_FLOOR.min(n);
    let t_max = total_flips;
    let mut pos = 0usize;
    for t in 1..=t_max {
        let frac = cubic(t as f64 / t_max as f64);
        let width = ((frac * n as f64).ceil() as usize).clamp(floor, n);

        let mut arg = usize::MAX;
        let mut min_d = i64::MAX;
        let mut arg_any = usize::MAX;
        let mut min_any = i64::MAX;
        for off in 0..width {
            let k = (pos + off) % n;
            let d = state.delta(k);
            if d < min_any {
                min_any = d;
                arg_any = k;
            }
            if d < min_d && !tabu.is_tabu(k) {
                min_d = d;
                arg = k;
            }
        }
        let bit = if arg == usize::MAX { arg_any } else { arg };
        best.observe_neighbor(state, arg_any);
        state.flip(bit);
        tabu.record(bit);
        best.observe(state);
        pos = (pos + width) % n;
    }
    t_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_model;
    use dabs_rng::Xorshift64Star;

    #[test]
    fn min_delta_scan_agrees_with_segment_primitive() {
        let q = random_model(90, 0.3, 501);
        let mut st = dabs_model::IncrementalState::new(&q);
        let mut rng = Xorshift64Star::new(502);
        use dabs_rng::Rng64;
        for _ in 0..300 {
            st.flip(rng.next_index(90));
            let naive = min_delta_scan(&st);
            assert_eq!(st.min_delta(), naive);
        }
    }
}
