//! Local-search kernels for QUBO models (paper §III).
//!
//! All algorithms are *incremental search algorithms*: they walk the n-bit
//! hypercube by repeated single-bit flips on a [`dabs_model::IncrementalState`],
//! which keeps the energy and all one-flip gains `Δ_k` up to date in
//! `O(deg)` per flip.
//!
//! Two service algorithms:
//!
//! * [`greedy`] — flip the minimum-gain bit while any gain is negative;
//!   terminates in a local minimum.
//! * [`straight`] — walk toward a *target* vector, always flipping the
//!   cheapest differing bit; terminates when the target is reached.
//!
//! Five *main* algorithms ([`MainAlgorithm`]), each run for `s·n` flips:
//!
//! * [`MainAlgorithm::MaxMin`] — SA-like threshold schedule between min and
//!   max gain, cubic cooling.
//! * [`MainAlgorithm::CyclicMin`] — sliding cyclic window of cubically
//!   growing width; flips the window's argmin (random-number-free).
//! * [`MainAlgorithm::RandomMin`] — candidate bits sampled with cubically
//!   growing probability; flips the candidates' argmin.
//! * [`MainAlgorithm::PositiveMin`] — candidates are all bits with gain at
//!   most the smallest *positive* gain; enables hill climbing out of local
//!   minima.
//! * [`MainAlgorithm::TwoNeighbor`] — deterministic sweep visiting every
//!   1-bit neighbour so the embedded neighbourhood scan covers every 2-bit
//!   neighbour; runs once per batch.
//!
//! [`BatchSearch`] composes them exactly as the paper's CUDA blocks do:
//! Straight to the target, then alternating Greedy and the selected main
//! algorithm until the flip budget `b·n` is spent.
//!
//! Candidate selection inside every strategy runs on the
//! `dabs_model` segment-aggregate primitives (`min_delta`,
//! `min_max_argmin`, `positive_min_delta`, `select_le`, `window_argmin`)
//! instead of re-scanning the Δ array — tie-break and reservoir-sampling
//! semantics live in exactly one place. The pre-segment full-scan code is
//! preserved verbatim in [`mod@reference`] for the parity suite and the
//! `scan_sweep` benchmark.
//!
//! ```
//! use dabs_model::{IncrementalState, QuboBuilder, Solution};
//! use dabs_rng::Xorshift64Star;
//! use dabs_search::{BatchSearch, MainAlgorithm, SearchParams};
//!
//! let mut b = QuboBuilder::new(4);
//! b.add_linear(0, -5).add_quadratic(0, 1, 2).add_quadratic(2, 3, -4);
//! let model = b.build().unwrap();
//!
//! let mut state = IncrementalState::new(&model);      // resident block state
//! let mut batch = BatchSearch::new(4, SearchParams::default());
//! let mut rng = Xorshift64Star::new(7);
//! let target = Solution::from_bitstring("1010");
//! let out = batch.run(&mut state, &target, MainAlgorithm::PositiveMin, &mut rng);
//! assert_eq!(model.energy(&out.best), out.energy);
//! assert_eq!(out.energy, -9); // x = 1011: −5 − 4
//! ```

mod batch;
pub mod bulk;
mod cyclicmin;
mod greedy;
mod maxmin;
mod positivemin;
mod randommin;
pub mod reference;
mod straight;
mod tabu;
mod twoneighbor;

pub use batch::{BatchOutcome, BatchSearch};
pub use bulk::{lane_seed, BulkSweep, ScalarSweep, BULK_CYCLE_ROUNDS};
pub use cyclicmin::cyclic_min;
pub use greedy::greedy;
pub use maxmin::max_min;
pub use positivemin::positive_min;
pub use randommin::random_min;
pub use straight::straight;
pub use tabu::TabuList;
pub use twoneighbor::two_neighbor;

use dabs_model::{BestTracker, IncrementalState, QuboKernel};
use dabs_rng::Rng64;
use serde::{Deserialize, Serialize};

/// The five main search algorithms a batch can be asked to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MainAlgorithm {
    MaxMin,
    CyclicMin,
    RandomMin,
    PositiveMin,
    TwoNeighbor,
}

impl MainAlgorithm {
    /// All five, in the paper's table order.
    pub const ALL: [MainAlgorithm; 5] = [
        MainAlgorithm::MaxMin,
        MainAlgorithm::PositiveMin,
        MainAlgorithm::CyclicMin,
        MainAlgorithm::RandomMin,
        MainAlgorithm::TwoNeighbor,
    ];

    /// Stable small index (used by frequency tables).
    pub fn index(self) -> usize {
        match self {
            MainAlgorithm::MaxMin => 0,
            MainAlgorithm::PositiveMin => 1,
            MainAlgorithm::CyclicMin => 2,
            MainAlgorithm::RandomMin => 3,
            MainAlgorithm::TwoNeighbor => 4,
        }
    }

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            MainAlgorithm::MaxMin => "MaxMin",
            MainAlgorithm::PositiveMin => "PositiveMin",
            MainAlgorithm::CyclicMin => "CyclicMin",
            MainAlgorithm::RandomMin => "RandomMin",
            MainAlgorithm::TwoNeighbor => "TwoNeighbor",
        }
    }

    /// Dispatch: run this algorithm for (up to) `flips` bit flips.
    /// Returns the number of flips actually performed (TwoNeighbor always
    /// performs exactly `2n − 1` regardless of `flips`).
    pub fn run<K: QuboKernel, R: Rng64 + ?Sized>(
        self,
        state: &mut IncrementalState<'_, K>,
        best: &mut BestTracker,
        tabu: &mut TabuList,
        rng: &mut R,
        flips: u64,
    ) -> u64 {
        match self {
            MainAlgorithm::MaxMin => max_min(state, best, tabu, rng, flips),
            MainAlgorithm::CyclicMin => cyclic_min(state, best, tabu, flips),
            MainAlgorithm::RandomMin => random_min(state, best, tabu, rng, flips),
            MainAlgorithm::PositiveMin => positive_min(state, best, tabu, rng, flips),
            MainAlgorithm::TwoNeighbor => two_neighbor(state, best),
        }
    }
}

/// Flip-budget parameters of the batch search (paper §III-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchParams {
    /// Search flip factor `s`: each main-algorithm leg performs `⌈s·n⌉` flips.
    pub search_flip_factor: f64,
    /// Batch flip factor `b`: the batch ends once total flips reach `⌈b·n⌉`.
    pub batch_flip_factor: f64,
    /// Tabu tenure (0 disables; the paper's experiments fix it to 8).
    pub tabu_tenure: u64,
    /// Bit-sliced batch width: 0 runs the scalar strategies; a multiple of
    /// 64 in `[64, 256]` switches devices to the bulk lockstep sweep with
    /// that many resident candidate lanes ([`mod@bulk`]).
    pub batch_lanes: u32,
}

impl SearchParams {
    /// Parameters used for the paper's MaxCut runs (`s = 0.1`, `b = 10`).
    pub fn maxcut() -> Self {
        Self {
            search_flip_factor: 0.1,
            batch_flip_factor: 10.0,
            tabu_tenure: 8,
            batch_lanes: 0,
        }
    }

    /// Parameters used for the paper's QAP and QASP runs (`s = 0.1`, `b = 1`).
    pub fn qap_qasp() -> Self {
        Self {
            search_flip_factor: 0.1,
            batch_flip_factor: 1.0,
            tabu_tenure: 8,
            batch_lanes: 0,
        }
    }

    /// Flips per main-algorithm leg for an `n`-bit model, at least 1.
    pub fn search_flips(&self, n: usize) -> u64 {
        ((self.search_flip_factor * n as f64).ceil() as u64).max(1)
    }

    /// Total flip budget per batch for an `n`-bit model, at least 1.
    pub fn batch_flips(&self, n: usize) -> u64 {
        ((self.batch_flip_factor * n as f64).ceil() as u64).max(1)
    }
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            search_flip_factor: 0.1,
            batch_flip_factor: 1.0,
            tabu_tenure: 8,
            batch_lanes: 0,
        }
    }
}

/// The cubic schedule weight used by the iteration-dependent algorithms
/// (MaxMin's `((T − t)/T)³`, CyclicMin/RandomMin's `(t/T)³`).
#[inline]
pub(crate) fn cubic(ratio: f64) -> f64 {
    ratio * ratio * ratio
}

#[cfg(test)]
pub(crate) mod testutil {
    use dabs_model::{QuboBuilder, QuboModel};
    use dabs_rng::{Rng64, Xorshift64Star};

    /// Random dense-ish test model.
    pub fn random_model(n: usize, density: f64, seed: u64) -> QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    /// Exhaustive optimum of a small model.
    pub fn brute_force_optimum(q: &QuboModel) -> i64 {
        let n = q.n();
        assert!(n <= 22, "brute force limited to small models");
        let mut best = i64::MAX;
        for v in 0..(1u64 << n) {
            let bits: Vec<bool> = (0..n).map(|i| (v >> i) & 1 == 1).collect();
            best = best.min(q.energy(&dabs_model::Solution::from_bits(&bits)));
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_algorithms_have_unique_indices() {
        let mut seen = [false; 5];
        for a in MainAlgorithm::ALL {
            assert!(!seen[a.index()], "duplicate index for {}", a.name());
            seen[a.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(MainAlgorithm::MaxMin.name(), "MaxMin");
        assert_eq!(MainAlgorithm::TwoNeighbor.name(), "TwoNeighbor");
    }

    #[test]
    fn params_flip_budgets() {
        let p = SearchParams::maxcut();
        assert_eq!(p.search_flips(2000), 200);
        assert_eq!(p.batch_flips(2000), 20_000);
        let p = SearchParams::qap_qasp();
        assert_eq!(p.batch_flips(900), 900);
        assert_eq!(p.search_flips(1), 1);
    }

    #[test]
    fn paper_example_flip_accounting() {
        // n = 1000, s = 0.6, b = 2.0 → main legs of 600 flips, budget 2000.
        let p = SearchParams {
            search_flip_factor: 0.6,
            batch_flip_factor: 2.0,
            ..SearchParams::default()
        };
        assert_eq!(p.search_flips(1000), 600);
        assert_eq!(p.batch_flips(1000), 2000);
    }

    #[test]
    fn cubic_schedule_endpoints() {
        assert_eq!(cubic(0.0), 0.0);
        assert_eq!(cubic(1.0), 1.0);
        assert!(cubic(0.5) < 0.5, "cubic is convex below identity");
    }
}
