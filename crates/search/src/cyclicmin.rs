//! CyclicMin search (paper §III-A-4, and the core of the authors' earlier
//! ABS solver \[16\]).
//!
//! The n bits are arranged on a circle and a window of width
//! `w(t) = max(⌈(t/T)³·n⌉, c)` (with `c = min(32, n)`) slides around it.
//! Each iteration flips the minimum-gain non-tabu bit inside the window and
//! advances the window by its width. Early small windows force diverse
//! uphill moves; late windows approach the whole circle, making the
//! behaviour converge to greedy — annealing without random numbers.
//!
//! Note on best-tracking: the paper's GPU kernel only reads `Δ` inside the
//! window (that locality is what makes CyclicMin fast on a GPU), so our
//! Step-1 observation is window-limited too; the post-flip energy check is
//! global. DESIGN.md records this fidelity note.

use crate::{cubic, TabuList};
use dabs_model::{BestTracker, IncrementalState, QuboKernel};

/// The paper's small window-floor constant.
pub const WINDOW_FLOOR: usize = 32;

/// Run CyclicMin for `total_flips` flips. Returns the flips performed.
pub fn cyclic_min<K: QuboKernel>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    total_flips: u64,
) -> u64 {
    let n = state.n();
    let floor = WINDOW_FLOOR.min(n);
    let t_max = total_flips;
    let mut pos = 0usize;
    for t in 1..=t_max {
        let frac = cubic(t as f64 / t_max as f64);
        let width = ((frac * n as f64).ceil() as usize).clamp(floor, n);

        // argmin Δ over the cyclic window [pos, pos + width), answered from
        // the segment aggregates (in-window segments whose min cannot beat
        // the running minimum are skipped whole). `arg_any` ignores the
        // tabu list and is the fallback.
        let (arg, arg_any) = state.window_argmin(pos, width, |k| !tabu.is_tabu(k));
        let bit = if arg == usize::MAX { arg_any } else { arg };
        best.observe_neighbor(state, arg_any);
        state.flip(bit);
        tabu.record(bit);
        best.observe(state);
        pos = (pos + width) % n;
    }
    t_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{brute_force_optimum, random_model};

    #[test]
    fn deterministic_without_rng() {
        // CyclicMin uses no random numbers: two runs from identical states
        // must produce identical trajectories.
        let q = random_model(50, 0.3, 51);
        let mut a = IncrementalState::new(&q);
        let mut b = IncrementalState::new(&q);
        let mut best_a = BestTracker::unbounded(50);
        let mut best_b = BestTracker::unbounded(50);
        let mut tabu_a = TabuList::new(50, 8);
        let mut tabu_b = TabuList::new(50, 8);
        cyclic_min(&mut a, &mut best_a, &mut tabu_a, 400);
        cyclic_min(&mut b, &mut best_b, &mut tabu_b, 400);
        assert_eq!(a.solution(), b.solution());
        assert_eq!(best_a.energy(), best_b.energy());
    }

    #[test]
    fn performs_requested_flips() {
        let q = random_model(30, 0.4, 52);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(30);
        let mut tabu = TabuList::new(30, 8);
        assert_eq!(cyclic_min(&mut st, &mut best, &mut tabu, 123), 123);
        assert_eq!(st.flips(), 123);
        st.assert_consistent();
    }

    #[test]
    fn finds_optimum_of_small_model() {
        let q = random_model(12, 0.6, 53);
        let opt = brute_force_optimum(&q);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(12);
        let mut tabu = TabuList::new(12, 4);
        cyclic_min(&mut st, &mut best, &mut tabu, 4_000);
        assert_eq!(best.energy(), opt);
    }

    #[test]
    fn window_growth_is_monotone() {
        // w(t) formula check: cubically increasing, clamped to [floor, n]
        let n = 1000usize;
        let t_max = 100u64;
        let floor = WINDOW_FLOOR.min(n);
        let mut prev = 0usize;
        for t in 1..=t_max {
            let frac = crate::cubic(t as f64 / t_max as f64);
            let w = ((frac * n as f64).ceil() as usize).clamp(floor, n);
            assert!(w >= prev, "window must not shrink");
            assert!(w >= floor && w <= n);
            prev = w;
        }
        assert_eq!(prev, n, "final window covers the whole circle");
    }

    #[test]
    fn small_models_clamp_window() {
        // n < WINDOW_FLOOR must not panic or overrun.
        let q = random_model(5, 0.8, 54);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(5);
        let mut tabu = TabuList::new(5, 2);
        cyclic_min(&mut st, &mut best, &mut tabu, 100);
        st.assert_consistent();
    }
}
