//! Bulk lockstep sweep: the batched search strategy driving
//! [`dabs_model::BatchState`].
//!
//! The scalar strategies pick one variable per flip via segment-aggregate
//! argmin queries — inherently serial per candidate. The bulk sweep instead
//! runs the paper's GPU execution shape on the bit-sliced batch: all `B`
//! lanes visit the variables **cyclically in lockstep** (`i = 0, 1, …,
//! n−1`, the CyclicMin visiting order), and each lane independently decides
//! `flip iff Δ_i ≤ θ_ℓ`, a per-lane *threshold-accepting* rule (Dueck &
//! Scheuer's deterministic cousin of simulated annealing). One row walk
//! then services every lane, which is the entire point of the batch kernel.
//!
//! The threshold schedule reuses the repo's cubic cooling idiom
//! (`crate::cubic`, the same shape MaxMin cools with): lane `ℓ` draws
//! `θ_ℓ ~ U[0, amp]` each round, where `amp = amp0_ℓ · (1 − phase)³` and
//! `phase` ramps over a [`BULK_CYCLE_ROUNDS`]-round cycle, then reheats —
//! downhill moves (`Δ ≤ 0`) are always accepted since `θ ≥ 0`.
//!
//! **Parity contract:** lane `ℓ` of [`BulkSweep::run`] is bit-identical to
//! a [`ScalarSweep::run`] over a scalar [`IncrementalState`] seeded from
//! the same start vector with the same lane RNG ([`lane_seed`]) — both
//! sides share `threshold` and the visiting order, so they accept the
//! same flips in the same order. The tests below pin this for both
//! backends; the `batch_sweep` bench leans on it to equate flip budgets.

use crate::cubic;
use dabs_model::{BatchKernel, BatchState, IncrementalState, QuboKernel};
use dabs_rng::{Rng64, SplitMix64, Xorshift64Star};

/// Rounds per threshold cooling cycle: amplitude decays cubically over a
/// cycle, then reheats. One device leg runs exactly one cycle.
pub const BULK_CYCLE_ROUNDS: u64 = 16;

/// The RNG seed of lane `lane` under master seed `base` — the `lane`-th
/// draw of a [`SplitMix64`] stream, shared by [`BulkSweep::new`] and any
/// scalar reference run that wants to replay a single lane.
pub fn lane_seed(base: u64, lane: usize) -> u64 {
    let mut sm = SplitMix64::new(base);
    let mut s = sm.next_u64();
    for _ in 0..lane {
        s = sm.next_u64();
    }
    s
}

/// The round's acceptance threshold: `U[0, amp0 · (1 − phase)³]` where
/// `phase` is the position inside the current cooling cycle. Pure in
/// `(amp0, round, draw)` so the batch and scalar paths cannot diverge.
fn threshold(amp0: i64, round: u64, draw: u64) -> i64 {
    let phase = (round % BULK_CYCLE_ROUNDS) as f64 / BULK_CYCLE_ROUNDS as f64;
    let amp = (amp0 as f64 * cubic(1.0 - phase)) as i64;
    if amp <= 0 {
        0
    } else {
        (draw % (amp as u64 + 1)) as i64
    }
}

/// Threshold-accepting lockstep sweep over a [`BatchState`]: per-lane RNG
/// streams, per-lane amplitudes, one shared round counter. Rounds persist
/// across [`BulkSweep::run`] calls so a resident device continues its
/// schedule where the previous leg stopped.
#[derive(Debug, Clone)]
pub struct BulkSweep {
    rngs: Vec<Xorshift64Star>,
    amp0: Vec<i64>,
    thresholds: Vec<i64>,
    round: u64,
}

impl BulkSweep {
    /// A sweep over `lanes` lanes; lane `ℓ` draws from
    /// `Xorshift64Star(lane_seed(seed, ℓ))`. Amplitudes start at 1 —
    /// call [`Self::calibrate`] (or [`Self::set_amp`]) after seeding.
    pub fn new(lanes: usize, seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            rngs: (0..lanes)
                .map(|_| Xorshift64Star::new(sm.next_u64()))
                .collect(),
            amp0: vec![1; lanes],
            thresholds: vec![0; lanes],
            round: 0,
        }
    }

    /// Set lane `ℓ`'s threshold amplitude (clamped to ≥ 1).
    pub fn set_amp(&mut self, lane: usize, amp: i64) {
        self.amp0[lane] = amp.max(1);
    }

    /// Seed every lane's amplitude from its current `max |Δ|` — the same
    /// rule [`ScalarSweep::calibrate`] applies to its single state.
    pub fn calibrate<K: BatchKernel>(&mut self, bs: &BatchState<K>) {
        for lane in 0..self.amp0.len() {
            self.set_amp(lane, bs.max_abs_delta(lane));
        }
    }

    /// Completed rounds since construction.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Run `rounds` lockstep rounds; returns accepted flips across all
    /// lanes. Each round draws one threshold per lane, then every variable
    /// is visited once with a predicated batch step.
    pub fn run<K: BatchKernel>(&mut self, bs: &mut BatchState<K>, rounds: u64) -> u64 {
        assert_eq!(bs.lanes(), self.rngs.len(), "sweep/batch lane mismatch");
        let n = bs.n();
        let mut accept = vec![0u64; bs.lane_words()];
        let mut total = 0u64;
        for _ in 0..rounds {
            for (l, rng) in self.rngs.iter_mut().enumerate() {
                self.thresholds[l] = threshold(self.amp0[l], self.round, rng.next_u64());
            }
            for i in 0..n {
                bs.accept_mask_le(i, &self.thresholds, &mut accept);
                total += u64::from(bs.step(i, &accept));
            }
            self.round += 1;
        }
        total
    }
}

/// The scalar reference for one lane: the identical sweep loop over a
/// plain [`IncrementalState`]. Exists for the parity harness and the
/// `batch_sweep` bench's scalar arm — production scalar search keeps using
/// the segment-aggregate strategies.
#[derive(Debug, Clone)]
pub struct ScalarSweep {
    rng: Xorshift64Star,
    amp0: i64,
    best: i64,
    round: u64,
}

impl ScalarSweep {
    /// A single-lane sweep drawing from `Xorshift64Star(seed)` — pass
    /// [`lane_seed`]`(base, ℓ)` to replay lane `ℓ` of a batch.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Xorshift64Star::new(seed),
            amp0: 1,
            best: i64::MAX,
            round: 0,
        }
    }

    /// Set the threshold amplitude (clamped to ≥ 1).
    pub fn set_amp(&mut self, amp: i64) {
        self.amp0 = amp.max(1);
    }

    /// Seed the amplitude from the state's current `max |Δ|`.
    pub fn calibrate<K: QuboKernel>(&mut self, st: &IncrementalState<'_, K>) {
        let amp = st.deltas().iter().map(|d| d.abs()).max().unwrap_or(0);
        self.set_amp(amp);
    }

    /// Best energy seen across all [`Self::run`] calls (including each
    /// run's starting energy) — the scalar mirror of
    /// `BatchState::lane_best_energy`.
    pub fn best(&self) -> i64 {
        self.best
    }

    /// Run `rounds` sweep rounds; returns flips performed in this call.
    pub fn run<K: QuboKernel>(&mut self, st: &mut IncrementalState<'_, K>, rounds: u64) -> u64 {
        let n = st.n();
        let start = st.flips();
        self.best = self.best.min(st.energy());
        for _ in 0..rounds {
            let thr = threshold(self.amp0, self.round, self.rng.next_u64());
            for i in 0..n {
                if st.delta(i) <= thr {
                    st.flip(i);
                    self.best = self.best.min(st.energy());
                }
            }
            self.round += 1;
        }
        st.flips() - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_model;
    use dabs_model::{CsrKernel, DenseKernel, KernelChoice, QuboBuilder, Solution};

    fn dense_model(n: usize, density: f64, seed: u64) -> dabs_model::QuboModel {
        let mut rng = Xorshift64Star::new(seed);
        let mut b = QuboBuilder::new(n);
        b.kernel(KernelChoice::Dense);
        for i in 0..n {
            b.add_linear(i, rng.next_range_i64(-9, 9));
            for j in (i + 1)..n {
                if rng.next_bool(density) {
                    b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn threshold_stays_within_amplitude() {
        for round in 0..2 * BULK_CYCLE_ROUNDS {
            for draw in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
                let t = threshold(50, round, draw);
                assert!((0..=50).contains(&t), "round {round} draw {draw} → {t}");
            }
        }
        // Fully cooled phase and degenerate amplitudes pin θ to 0.
        assert_eq!(threshold(50, BULK_CYCLE_ROUNDS - 1, u64::MAX), 0);
        assert_eq!(threshold(0, 0, u64::MAX), 0);
        assert_eq!(threshold(-3, 0, u64::MAX), 0);
    }

    #[test]
    fn lane_seed_is_the_splitmix_stream() {
        let mut sm = SplitMix64::new(99);
        for lane in 0..8 {
            assert_eq!(lane_seed(99, lane), sm.next_u64());
        }
    }

    /// Every lane of the bulk sweep is bit-identical to its scalar
    /// reference run — the module's central contract, both backends.
    #[test]
    fn sweep_parity_both_backends() {
        let q = dense_model(65, 0.5, 42);
        sweep_parity_case(&q, CsrKernel::new(&q));
        sweep_parity_case(&q, DenseKernel::new(&q));
    }

    fn sweep_parity_case<K: BatchKernel>(q: &dabs_model::QuboModel, kernel: K) {
        const LANES: usize = 64;
        const SEED: u64 = 0xB01C;
        let n = q.n();
        let mut bs = BatchState::new(kernel, LANES);
        let mut starts = Vec::new();
        let mut rng = Xorshift64Star::new(7);
        for l in 0..LANES {
            let sol = Solution::random(n, &mut rng);
            bs.seed_lane(l, &sol);
            starts.push(sol);
        }
        let mut sweep = BulkSweep::new(LANES, SEED);
        sweep.calibrate(&bs);
        // Two calls to exercise round persistence across legs.
        let flips =
            sweep.run(&mut bs, BULK_CYCLE_ROUNDS) + sweep.run(&mut bs, BULK_CYCLE_ROUNDS / 2);
        assert_eq!(sweep.round(), BULK_CYCLE_ROUNDS + BULK_CYCLE_ROUNDS / 2);
        assert!(flips > 0, "sweep accepted nothing");

        let mut scalar_total = 0u64;
        for (l, start) in starts.iter().enumerate() {
            let mut st = IncrementalState::from_solution_with(q, kernel, start.clone());
            let mut sw = ScalarSweep::new(lane_seed(SEED, l));
            sw.calibrate(&st);
            scalar_total += sw.run(&mut st, BULK_CYCLE_ROUNDS);
            scalar_total += sw.run(&mut st, BULK_CYCLE_ROUNDS / 2);
            let tag = format!("kernel={} lane={l}", kernel.kernel_name());
            assert_eq!(bs.lane_energy(l), st.energy(), "{tag}");
            assert_eq!(bs.lane_best_energy(l), sw.best(), "{tag}");
            assert_eq!(bs.lane_flip_counts()[l], st.flips(), "{tag}");
            assert_eq!(bs.lane_solution(l), *st.solution(), "{tag}");
        }
        assert_eq!(flips, scalar_total, "matched flip budget");
    }

    #[test]
    fn sweep_is_deterministic() {
        let q = random_model(50, 0.3, 11);
        let run = || {
            let mut bs = BatchState::new(CsrKernel::new(&q), 64);
            let mut rng = Xorshift64Star::new(3);
            for l in 0..64 {
                bs.seed_lane(l, &Solution::random(50, &mut rng));
            }
            let mut sweep = BulkSweep::new(64, 0xD5);
            sweep.calibrate(&bs);
            let flips = sweep.run(&mut bs, BULK_CYCLE_ROUNDS);
            (flips, bs.energies().to_vec(), bs.best_energies().to_vec())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sweep_actually_optimizes() {
        let q = random_model(60, 0.4, 23);
        let mut bs = BatchState::new(CsrKernel::new(&q), 64);
        let mut rng = Xorshift64Star::new(9);
        let mut start_best = i64::MAX;
        for l in 0..64 {
            let sol = Solution::random(60, &mut rng);
            start_best = start_best.min(q.energy(&sol));
            bs.seed_lane(l, &sol);
        }
        let mut sweep = BulkSweep::new(64, 0xF00D);
        sweep.calibrate(&bs);
        sweep.run(&mut bs, 4 * BULK_CYCLE_ROUNDS);
        let swept_best = *bs.best_energies().iter().min().unwrap();
        assert!(
            swept_best < start_best,
            "no improvement: {swept_best} vs {start_best}"
        );
    }
}
