//! TwoNeighbor search (paper §III-A-7).
//!
//! Deterministically visits every 1-bit neighbour of the starting vector
//! `X₀` in `2n − 1` flips using the sequence `0, 1, 0, 2, 1, 3, 2, …` —
//! i.e. flip bit 0, then for `k = 1 … n−1` flip `k` then `k−1`. Because the
//! incremental algorithm's Step 1 scans all 1-bit neighbours of the current
//! point, the sweep effectively searches the whole 2-bit neighbourhood of
//! `X₀` (and some 3-bit neighbours passed in between).
//!
//! Running it twice from the same point is pointless, so a batch executes
//! it exactly once (enforced by [`crate::BatchSearch`]).

use dabs_model::{BestTracker, IncrementalState, QuboKernel};

/// Run the TwoNeighbor sweep. Always performs exactly `2n − 1` flips and
/// returns that count.
pub fn two_neighbor<K: QuboKernel>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
) -> u64 {
    let n = state.n();
    best.observe_neighborhood(state);
    state.flip(0);
    best.observe_neighborhood(state);
    for k in 1..n {
        state.flip(k);
        best.observe_neighborhood(state);
        state.flip(k - 1);
        best.observe_neighborhood(state);
    }
    (2 * n - 1) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_model;
    use dabs_model::Solution;
    use dabs_rng::Xorshift64Star;

    #[test]
    fn performs_exactly_2n_minus_1_flips() {
        let q = random_model(20, 0.3, 81);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(20);
        assert_eq!(two_neighbor(&mut st, &mut best), 39);
        assert_eq!(st.flips(), 39);
        st.assert_consistent();
    }

    #[test]
    fn ends_at_last_unit_vector() {
        // Paper's n=6 example ends at 000001: only the last bit set.
        let q = random_model(6, 0.5, 82);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(6);
        two_neighbor(&mut st, &mut best);
        assert_eq!(st.solution(), &Solution::from_bitstring("000001"));
    }

    #[test]
    fn traverses_every_one_bit_neighbor() {
        // Replay the sweep and record each visited vector; from the zero
        // start every unit vector must appear.
        let q = random_model(8, 0.5, 83);
        let mut st = IncrementalState::new(&q);
        let mut visited = vec![st.solution().clone()];
        st.flip(0);
        visited.push(st.solution().clone());
        for k in 1..8 {
            st.flip(k);
            visited.push(st.solution().clone());
            st.flip(k - 1);
            visited.push(st.solution().clone());
        }
        for unit in 0..8 {
            let mut u = Solution::zeros(8);
            u.set(unit, true);
            assert!(
                visited.contains(&u),
                "unit vector e_{unit} was not traversed"
            );
        }
    }

    #[test]
    fn covers_full_two_bit_neighborhood() {
        // BEST after the sweep must be at least as good as every solution
        // within Hamming distance 2 of the start.
        let q = random_model(10, 0.5, 84);
        let mut rng = Xorshift64Star::new(85);
        let start = Solution::random(10, &mut rng);
        let mut st = IncrementalState::from_solution(&q, start.clone());
        let mut best = BestTracker::unbounded(10);
        two_neighbor(&mut st, &mut best);
        // enumerate d ≤ 2 neighbourhood
        let mut lowest = q.energy(&start);
        for i in 0..10 {
            let mut a = start.clone();
            a.flip(i);
            lowest = lowest.min(q.energy(&a));
            for j in (i + 1)..10 {
                let mut b = a.clone();
                b.flip(j);
                lowest = lowest.min(q.energy(&b));
            }
        }
        assert!(
            best.energy() <= lowest,
            "TwoNeighbor best {} missed 2-neighbourhood optimum {lowest}",
            best.energy()
        );
    }
}
