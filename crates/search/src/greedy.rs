//! Greedy descent (paper §III-A-1).
//!
//! Repeatedly flips the bit with minimum gain while that gain is negative;
//! terminates in a 1-flip local minimum (`Δ_k ≥ 0` for all `k`).

use crate::TabuList;
use dabs_model::{BestTracker, IncrementalState, QuboKernel};

/// Run greedy descent to a local minimum, or until `max_flips` flips.
/// Returns the number of flips performed.
///
/// Greedy intentionally ignores the tabu list for *descending* moves — a
/// strictly improving move is always taken — but records its flips so the
/// following main-algorithm leg sees them.
pub fn greedy<K: QuboKernel>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    max_flips: u64,
) -> u64 {
    let mut used = 0;
    best.observe(state);
    while used < max_flips {
        let (k, d) = state.min_delta();
        if d >= 0 {
            break;
        }
        state.flip(k);
        tabu.record(k);
        used += 1;
        best.observe(state);
    }
    used
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_model;
    use dabs_model::Solution;
    use dabs_rng::Xorshift64Star;

    #[test]
    fn terminates_in_local_minimum() {
        let q = random_model(30, 0.3, 21);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(30);
        let mut tabu = TabuList::new(30, 8);
        greedy(&mut st, &mut best, &mut tabu, u64::MAX);
        let (_, d) = st.min_delta();
        assert!(d >= 0, "all gains must be non-negative at a local minimum");
        st.assert_consistent();
    }

    #[test]
    fn energy_never_increases() {
        let q = random_model(25, 0.4, 22);
        let mut rng = Xorshift64Star::new(23);
        let mut st = IncrementalState::from_solution(&q, Solution::random(25, &mut rng));
        let mut energies = vec![st.energy()];
        let best = BestTracker::unbounded(25);
        let mut tabu = TabuList::new(25, 8);
        loop {
            let (k, d) = st.min_delta();
            if d >= 0 {
                break;
            }
            st.flip(k);
            tabu.record(k);
            energies.push(st.energy());
        }
        // re-run via the public fn and compare the endpoint
        let mut st2 =
            IncrementalState::from_solution(&q, Solution::random(25, &mut Xorshift64Star::new(23)));
        let mut best2 = BestTracker::unbounded(25);
        let mut tabu2 = TabuList::new(25, 8);
        greedy(&mut st2, &mut best2, &mut tabu2, u64::MAX);
        assert_eq!(st2.energy(), *energies.last().unwrap());
        assert!(energies.windows(2).all(|w| w[1] < w[0] || w.len() < 2));
        let _ = best;
    }

    #[test]
    fn respects_flip_budget() {
        let q = random_model(40, 0.5, 24);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(40);
        let mut tabu = TabuList::new(40, 8);
        let used = greedy(&mut st, &mut best, &mut tabu, 3);
        assert!(used <= 3);
        assert_eq!(st.flips(), used);
    }

    #[test]
    fn best_tracker_holds_final_energy() {
        let q = random_model(20, 0.4, 25);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(20);
        let mut tabu = TabuList::new(20, 8);
        greedy(&mut st, &mut best, &mut tabu, u64::MAX);
        // greedy only descends, so the final point is the best point
        assert_eq!(best.energy(), st.energy());
        assert_eq!(q.energy(best.solution()), best.energy());
    }

    #[test]
    fn zero_budget_is_a_noop() {
        let q = random_model(10, 0.5, 26);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(10);
        let mut tabu = TabuList::new(10, 8);
        assert_eq!(greedy(&mut st, &mut best, &mut tabu, 0), 0);
        assert_eq!(st.energy(), 0);
        // but the starting point was still observed
        assert_eq!(best.energy(), 0);
    }
}
