//! Tabu bookkeeping (paper §III-A-8).
//!
//! "A tabu period t is specified … If a bit is flipped, we do not flip it
//! again in the next t iterations." The list is shared across all algorithm
//! legs of one batch so a Greedy→MaxMin hand-off cannot immediately undo the
//! previous leg's moves.

/// Per-bit recency list with O(1) `is_tabu` / `record`.
#[derive(Debug, Clone)]
pub struct TabuList {
    /// Logical clock; one tick per recorded flip.
    clock: u64,
    /// Clock value at which each bit was last flipped; 0 = never
    /// (the clock starts at `tenure + 1` so "never" is never tabu).
    last_flip: Vec<u64>,
    tenure: u64,
}

impl TabuList {
    /// A list over `n` bits with the given tenure. Tenure 0 disables the
    /// mechanism entirely (`is_tabu` is always false).
    pub fn new(n: usize, tenure: u64) -> Self {
        Self {
            clock: tenure + 1,
            last_flip: vec![0; n],
            tenure,
        }
    }

    /// Tenure this list was created with.
    #[inline]
    pub fn tenure(&self) -> u64 {
        self.tenure
    }

    /// True when bit `i` may not be flipped yet: fewer than `tenure` flips
    /// have been recorded since `i` itself was recorded.
    #[inline]
    pub fn is_tabu(&self, i: usize) -> bool {
        self.tenure > 0 && self.clock - self.last_flip[i] < self.tenure
    }

    /// Record that bit `i` was just flipped.
    #[inline]
    pub fn record(&mut self, i: usize) {
        self.clock += 1;
        self.last_flip[i] = self.clock;
    }

    /// Forget all history (used between batches).
    pub fn clear(&mut self) {
        self.clock = self.tenure + 1;
        self.last_flip.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_list_has_no_tabu_bits() {
        let t = TabuList::new(10, 8);
        for i in 0..10 {
            assert!(!t.is_tabu(i));
        }
    }

    #[test]
    fn recorded_bit_is_tabu_for_tenure_flips() {
        let mut t = TabuList::new(4, 3);
        t.record(2);
        assert!(t.is_tabu(2));
        t.record(0); // 1 other flip
        assert!(t.is_tabu(2));
        t.record(1); // 2 other flips
        assert!(t.is_tabu(2));
        t.record(3); // 3 other flips: tenure exhausted
        assert!(!t.is_tabu(2), "bit frees after tenure flips");
    }

    #[test]
    fn zero_tenure_disables() {
        let mut t = TabuList::new(4, 0);
        t.record(1);
        assert!(!t.is_tabu(1));
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = TabuList::new(4, 5);
        t.record(0);
        t.record(1);
        assert!(t.is_tabu(0));
        t.clear();
        for i in 0..4 {
            assert!(!t.is_tabu(i));
        }
    }

    #[test]
    fn re_recording_refreshes() {
        let mut t = TabuList::new(3, 2);
        t.record(0);
        t.record(1);
        t.record(0); // refresh bit 0
        t.record(2);
        assert!(t.is_tabu(0), "refreshed bit still tabu");
        assert!(!t.is_tabu(1), "stale bit expired");
    }
}
