//! Straight search (paper §III-A-2).
//!
//! Given a target vector `D`, repeatedly flip the minimum-gain bit among the
//! bits where `X` and `D` differ. Every flip reduces the Hamming distance by
//! exactly one, so the walk reaches `D` in `hamming(X, D)` flips, taking the
//! cheapest path bit-by-bit and recording any good solutions passed on the
//! way. A batch search starts with this walk to move the block's resident
//! state to the host-supplied target.

use crate::TabuList;
use dabs_model::{BestTracker, IncrementalState, QuboKernel, Solution};

/// Walk `state` to `target`. Returns the number of flips performed
/// (the initial Hamming distance).
pub fn straight<K: QuboKernel>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    target: &Solution,
) -> u64 {
    assert_eq!(state.n(), target.len(), "target length mismatch");
    let mut pending: Vec<u32> = state
        .solution()
        .diff_indices(target)
        .map(|i| i as u32)
        .collect();
    let total = pending.len() as u64;
    best.observe(state);
    while !pending.is_empty() {
        // argmin Δ over the remaining differing bits
        let mut arg = 0usize;
        let mut min_d = state.delta(pending[0] as usize);
        for (slot, &i) in pending.iter().enumerate().skip(1) {
            let d = state.delta(i as usize);
            if d < min_d {
                min_d = d;
                arg = slot;
            }
        }
        let bit = pending.swap_remove(arg) as usize;
        state.flip(bit);
        tabu.record(bit);
        best.observe(state);
    }
    debug_assert_eq!(state.solution(), target);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::random_model;
    use dabs_rng::Xorshift64Star;

    #[test]
    fn reaches_target_in_hamming_flips() {
        let q = random_model(50, 0.2, 31);
        let mut rng = Xorshift64Star::new(32);
        let mut st = IncrementalState::new(&q);
        let target = Solution::random(50, &mut rng);
        let expected = st.solution().hamming(&target) as u64;
        let mut best = BestTracker::unbounded(50);
        let mut tabu = TabuList::new(50, 8);
        let used = straight(&mut st, &mut best, &mut tabu, &target);
        assert_eq!(used, expected);
        assert_eq!(st.solution(), &target);
        st.assert_consistent();
    }

    #[test]
    fn already_at_target_is_noop() {
        let q = random_model(10, 0.5, 33);
        let mut st = IncrementalState::new(&q);
        let target = Solution::zeros(10);
        let mut best = BestTracker::unbounded(10);
        let mut tabu = TabuList::new(10, 8);
        assert_eq!(straight(&mut st, &mut best, &mut tabu, &target), 0);
    }

    #[test]
    fn observes_intermediate_solutions() {
        // The walk must track the best point it passes, which can be better
        // than both endpoints.
        let q = random_model(30, 0.4, 34);
        let mut rng = Xorshift64Star::new(35);
        let mut st = IncrementalState::new(&q);
        let target = Solution::random(30, &mut rng);
        let mut best = BestTracker::unbounded(30);
        let mut tabu = TabuList::new(30, 8);
        straight(&mut st, &mut best, &mut tabu, &target);
        assert!(best.energy() <= st.energy());
        assert!(best.energy() <= 0, "start (E = 0) was observed");
        assert_eq!(q.energy(best.solution()), best.energy());
    }

    #[test]
    fn hamming_decreases_monotonically() {
        let q = random_model(20, 0.3, 36);
        let mut rng = Xorshift64Star::new(37);
        let mut st = IncrementalState::new(&q);
        let target = Solution::random(20, &mut rng);
        // manual replication of the loop, asserting per-step distance
        let best = BestTracker::unbounded(20);
        let tabu = TabuList::new(20, 8);
        let mut dist = st.solution().hamming(&target);
        while st.solution() != &target {
            let before = dist;
            // one step of straight = full call on a 1-step budget is not
            // exposed; emulate by calling straight on a copy for the final
            // answer, and checking per-flip here:
            let next = st
                .solution()
                .diff_indices(&target)
                .min_by_key(|&i| st.delta(i))
                .unwrap();
            st.flip(next);
            dist = st.solution().hamming(&target);
            assert_eq!(dist, before - 1);
        }
        let _ = (best, tabu);
    }

    #[test]
    #[should_panic(expected = "target length mismatch")]
    fn rejects_wrong_length_target() {
        let q = random_model(5, 0.5, 38);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(5);
        let mut tabu = TabuList::new(5, 8);
        straight(&mut st, &mut best, &mut tabu, &Solution::zeros(6));
    }
}
