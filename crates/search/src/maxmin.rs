//! MaxMin search (paper §III-A-3).
//!
//! An iteration-dependent, simulated-annealing-like schedule. At iteration
//! `t` of `T`:
//!
//! ```text
//! u    = ((T − t)/T)³
//! D(t) = (1 − u)·minΔ + u·maxΔ          (decreasing from maxΔ to minΔ)
//! d    ~ Uniform[minΔ, D(t)]
//! ```
//!
//! and a bit is chosen uniformly at random among `{i : Δ_i ≤ d}`. Early
//! iterations accept large-gain (uphill) flips; late iterations concentrate
//! near the minimum, exactly like a cooling schedule.

use crate::{cubic, TabuList};
use dabs_model::{BestTracker, IncrementalState, QuboKernel};
use dabs_rng::Rng64;

/// Run MaxMin for `total_flips` flips. Returns the flips performed.
pub fn max_min<K: QuboKernel, R: Rng64 + ?Sized>(
    state: &mut IncrementalState<'_, K>,
    best: &mut BestTracker,
    tabu: &mut TabuList,
    rng: &mut R,
    total_flips: u64,
) -> u64 {
    let t_max = total_flips;
    for t in 1..=t_max {
        // Global min/max of Δ plus the argmin for the Step-1 neighbourhood
        // observation — one segment-aggregate reduction, not a full scan.
        let (argmin, min_d, max_d) = state.min_max_argmin();
        best.observe_neighbor(state, argmin);

        let u = cubic((t_max - t) as f64 / t_max as f64);
        let upper = (1.0 - u) * min_d as f64 + u * max_d as f64;
        let span = upper - min_d as f64;
        let threshold = min_d as f64 + rng.next_f64() * span.max(0.0);

        // Reservoir-sample uniformly among non-tabu bits with
        // Δ_i ≤ threshold, skipping segments with no candidate. Since
        // threshold ≥ minΔ a candidate exists unless tabu excludes them
        // all; fall back to the global argmin then.
        let chosen = state.select_le_f64(threshold, rng, |k| !tabu.is_tabu(k));
        let bit = chosen.unwrap_or(argmin);
        state.flip(bit);
        tabu.record(bit);
        best.observe(state);
    }
    t_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{brute_force_optimum, random_model};
    use dabs_rng::Xorshift64Star;

    #[test]
    fn performs_requested_flips_and_stays_consistent() {
        let q = random_model(40, 0.3, 41);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(40);
        let mut tabu = TabuList::new(40, 8);
        let mut rng = Xorshift64Star::new(42);
        let used = max_min(&mut st, &mut best, &mut tabu, &mut rng, 500);
        assert_eq!(used, 500);
        assert_eq!(st.flips(), 500);
        st.assert_consistent();
        assert!(best.energy() <= st.energy());
    }

    #[test]
    fn finds_optimum_of_small_model() {
        let q = random_model(14, 0.5, 43);
        let opt = brute_force_optimum(&q);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(14);
        let mut tabu = TabuList::new(14, 4);
        let mut rng = Xorshift64Star::new(44);
        max_min(&mut st, &mut best, &mut tabu, &mut rng, 5_000);
        assert_eq!(best.energy(), opt, "MaxMin should solve a 14-bit model");
    }

    #[test]
    fn late_iterations_favor_descent() {
        // Cooling metric: the gap between the selected bit's gain and the
        // current minimum gain, normalised by the min–max spread, must
        // shrink from the early to the late phase of the schedule.
        let q = random_model(60, 0.3, 45);
        let mut st = IncrementalState::new(&q);
        let tabu = TabuList::new(60, 0);
        let mut rng = Xorshift64Star::new(46);
        let t_total = 2_000u64;
        let (mut early_sum, mut late_sum) = (0f64, 0f64);
        let (mut early_n, mut late_n) = (0u64, 0u64);
        // re-implement the loop to observe the normalised selection rank
        for t in 1..=t_total {
            let (min_d, max_d) = st.min_max_delta();
            let u = crate::cubic((t_total - t) as f64 / t_total as f64);
            let upper = (1.0 - u) * min_d as f64 + u * max_d as f64;
            let threshold = min_d as f64 + rng.next_f64() * (upper - min_d as f64).max(0.0);
            let mut chosen = usize::MAX;
            let mut count = 0u64;
            for (k, &d) in st.deltas().iter().enumerate() {
                if (d as f64) <= threshold && !tabu.is_tabu(k) {
                    count += 1;
                    if rng.next_below(count) == 0 {
                        chosen = k;
                    }
                }
            }
            let spread = (max_d - min_d).max(1) as f64;
            let gap = (st.delta(chosen) - min_d) as f64 / spread;
            if t <= t_total / 5 {
                early_sum += gap;
                early_n += 1;
            } else if t > t_total - t_total / 5 {
                late_sum += gap;
                late_n += 1;
            }
            st.flip(chosen);
        }
        let early_avg = early_sum / early_n as f64;
        let late_avg = late_sum / late_n as f64;
        assert!(
            late_avg < early_avg * 0.8,
            "cooling failed: early {early_avg}, late {late_avg}"
        );
    }

    #[test]
    fn tabu_fallback_never_stalls() {
        // With a tenure larger than n, nearly everything is tabu; the
        // algorithm must still perform its flips via the argmin fallback.
        let q = random_model(6, 0.8, 47);
        let mut st = IncrementalState::new(&q);
        let mut best = BestTracker::unbounded(6);
        let mut tabu = TabuList::new(6, 100);
        let mut rng = Xorshift64Star::new(48);
        let used = max_min(&mut st, &mut best, &mut tabu, &mut rng, 50);
        assert_eq!(used, 50);
        st.assert_consistent();
    }
}
