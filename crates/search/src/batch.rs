//! The batch search (paper §III-B).
//!
//! A CUDA block (here: a worker in `dabs-gpu-sim`) keeps a resident
//! [`IncrementalState`] across batches. One batch, given a target vector `D`
//! and a main algorithm `M`:
//!
//! 1. Straight search to `D`;
//! 2. repeat `{ Greedy ; M for s·n flips }` until the total flips of this
//!    batch reach `b·n` — except `M = TwoNeighbor`, which runs exactly once
//!    (`Straight ; Greedy ; TwoNeighbor ; Greedy`);
//! 3. return the best solution observed anywhere in the batch.

use crate::{greedy, straight, MainAlgorithm, SearchParams, TabuList};
use dabs_model::{BestTracker, IncrementalState, QuboKernel, Solution};
use dabs_rng::Rng64;

/// Result of one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Best solution observed during the batch.
    pub best: Solution,
    /// Its energy.
    pub energy: i64,
    /// Flips consumed by the batch (including the Straight prefix).
    pub flips: u64,
    /// Number of main-algorithm legs executed.
    pub main_legs: u32,
}

/// Reusable batch-search executor: owns the tabu list so allocation happens
/// once per block, not once per batch.
#[derive(Debug, Clone)]
pub struct BatchSearch {
    params: SearchParams,
    tabu: TabuList,
}

impl BatchSearch {
    /// Executor for an `n`-bit model.
    pub fn new(n: usize, params: SearchParams) -> Self {
        Self {
            tabu: TabuList::new(n, params.tabu_tenure),
            params,
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &SearchParams {
        &self.params
    }

    /// Run one batch on the resident `state` (any kernel backend) with the
    /// configured `batch_flips(n)` budget.
    pub fn run<K: QuboKernel, R: Rng64 + ?Sized>(
        &mut self,
        state: &mut IncrementalState<'_, K>,
        target: &Solution,
        algorithm: MainAlgorithm,
        rng: &mut R,
    ) -> BatchOutcome {
        let budget = self.params.batch_flips(state.n());
        self.run_with_budget(state, target, algorithm, rng, budget)
    }

    /// Run one batch with an externally-supplied flip `budget` instead of
    /// the configured one. This is the resumable-unit entry point: a
    /// scheduler slicing a job's flip budget across stealable units hands
    /// each unit its slice here, so a unit's cost is bounded by its slice,
    /// not by whatever `SearchParams` the job was built with.
    pub fn run_with_budget<K: QuboKernel, R: Rng64 + ?Sized>(
        &mut self,
        state: &mut IncrementalState<'_, K>,
        target: &Solution,
        algorithm: MainAlgorithm,
        rng: &mut R,
        budget: u64,
    ) -> BatchOutcome {
        let n = state.n();
        let leg = self.params.search_flips(n);
        self.tabu.clear();

        let mut best = BestTracker::unbounded(n);
        let mut flips = straight(state, &mut best, &mut self.tabu, target);
        let mut main_legs = 0u32;

        if algorithm == MainAlgorithm::TwoNeighbor {
            flips += greedy(
                state,
                &mut best,
                &mut self.tabu,
                budget.saturating_sub(flips),
            );
            flips += algorithm.run(state, &mut best, &mut self.tabu, rng, leg);
            main_legs += 1;
            flips += greedy(state, &mut best, &mut self.tabu, u64::MAX);
        } else {
            loop {
                flips += greedy(state, &mut best, &mut self.tabu, u64::MAX);
                flips += algorithm.run(state, &mut best, &mut self.tabu, rng, leg);
                main_legs += 1;
                if flips >= budget {
                    break;
                }
            }
            // finish in a local minimum so the returned best is polished
            flips += greedy(state, &mut best, &mut self.tabu, u64::MAX);
        }

        let (best, energy) = best.into_parts();
        BatchOutcome {
            best,
            energy,
            flips,
            main_legs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{brute_force_optimum, random_model};
    use dabs_model::QuboModel;
    use dabs_rng::Xorshift64Star;

    fn run_once(
        q: &QuboModel,
        algo: MainAlgorithm,
        params: SearchParams,
        seed: u64,
    ) -> BatchOutcome {
        let n = q.n();
        let mut st = IncrementalState::new(q);
        let mut rng = Xorshift64Star::new(seed);
        let target = Solution::random(n, &mut rng);
        let mut batch = BatchSearch::new(n, params);
        batch.run(&mut st, &target, algo, &mut rng)
    }

    #[test]
    fn batch_meets_flip_budget_for_iterative_algorithms() {
        let q = random_model(60, 0.2, 91);
        for algo in [
            MainAlgorithm::MaxMin,
            MainAlgorithm::CyclicMin,
            MainAlgorithm::RandomMin,
            MainAlgorithm::PositiveMin,
        ] {
            let params = SearchParams {
                search_flip_factor: 0.3,
                batch_flip_factor: 2.0,
                ..SearchParams::default()
            };
            let out = run_once(&q, algo, params, 92);
            assert!(
                out.flips >= params.batch_flips(60),
                "{}: {} flips < budget",
                algo.name(),
                out.flips
            );
            assert!(out.main_legs >= 1);
        }
    }

    #[test]
    fn two_neighbor_runs_exactly_once() {
        let q = random_model(40, 0.3, 93);
        let out = run_once(&q, MainAlgorithm::TwoNeighbor, SearchParams::default(), 94);
        assert_eq!(out.main_legs, 1);
    }

    #[test]
    fn outcome_energy_matches_solution() {
        let q = random_model(50, 0.25, 95);
        for (i, algo) in MainAlgorithm::ALL.into_iter().enumerate() {
            let out = run_once(&q, algo, SearchParams::default(), 96 + i as u64);
            assert_eq!(q.energy(&out.best), out.energy, "{}", algo.name());
        }
    }

    #[test]
    fn batch_finds_small_optimum() {
        let q = random_model(14, 0.5, 97);
        let opt = brute_force_optimum(&q);
        // several batches from random targets should hit the optimum
        let mut found = i64::MAX;
        let mut st = IncrementalState::new(&q);
        let mut rng = Xorshift64Star::new(98);
        let mut batch = BatchSearch::new(
            14,
            SearchParams {
                search_flip_factor: 1.0,
                batch_flip_factor: 20.0,
                tabu_tenure: 4,
                ..SearchParams::default()
            },
        );
        for algo in MainAlgorithm::ALL {
            let target = Solution::random(14, &mut rng);
            let out = batch.run(&mut st, &target, algo, &mut rng);
            found = found.min(out.energy);
        }
        assert_eq!(found, opt);
    }

    #[test]
    fn resident_state_persists_across_batches() {
        // Second batch starts from wherever the first ended (paper Fig. 4).
        let q = random_model(30, 0.3, 99);
        let mut st = IncrementalState::new(&q);
        let mut rng = Xorshift64Star::new(100);
        let mut batch = BatchSearch::new(30, SearchParams::default());
        let t1 = Solution::random(30, &mut rng);
        batch.run(&mut st, &t1, MainAlgorithm::MaxMin, &mut rng);
        let after_first = st.flips();
        assert!(after_first > 0);
        let t2 = Solution::random(30, &mut rng);
        batch.run(&mut st, &t2, MainAlgorithm::CyclicMin, &mut rng);
        assert!(st.flips() > after_first, "state must accumulate flips");
        st.assert_consistent();
    }

    #[test]
    fn explicit_budget_equals_configured_budget_and_scales_down() {
        let q = random_model(50, 0.25, 103);
        // Several main-algorithm legs per batch, so budget actually gates.
        let params = SearchParams {
            search_flip_factor: 0.3,
            batch_flip_factor: 4.0,
            ..SearchParams::default()
        };
        let configured = params.batch_flips(50);
        // Same budget through either entry point → identical batch.
        let run = |budget: Option<u64>| {
            let mut st = IncrementalState::new(&q);
            let mut rng = Xorshift64Star::new(104);
            let target = Solution::random(50, &mut rng);
            let mut batch = BatchSearch::new(50, params);
            match budget {
                None => batch.run(&mut st, &target, MainAlgorithm::MaxMin, &mut rng),
                Some(b) => {
                    batch.run_with_budget(&mut st, &target, MainAlgorithm::MaxMin, &mut rng, b)
                }
            }
        };
        let a = run(None);
        let b = run(Some(configured));
        assert_eq!(a.best, b.best);
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.flips, b.flips);
        assert_eq!(a.main_legs, b.main_legs);
        // A smaller slice does proportionally less work.
        let small = run(Some(configured / 4));
        assert!(
            small.flips < a.flips,
            "sliced batch ran {} flips vs full {}",
            small.flips,
            a.flips
        );
        assert_eq!(q.energy(&small.best), small.energy);
    }

    #[test]
    fn batch_never_returns_worse_than_target_polish() {
        // The best must be ≤ energy of a pure greedy descent from target.
        let q = random_model(40, 0.3, 101);
        let mut rng = Xorshift64Star::new(102);
        let target = Solution::random(40, &mut rng);
        let mut greedy_state = IncrementalState::from_solution(&q, target.clone());
        let mut best = BestTracker::unbounded(40);
        let mut tabu = TabuList::new(40, 0);
        greedy(&mut greedy_state, &mut best, &mut tabu, u64::MAX);
        let greedy_energy = greedy_state.energy();

        let mut st = IncrementalState::new(&q);
        let mut batch = BatchSearch::new(40, SearchParams::maxcut());
        let out = batch.run(&mut st, &target, MainAlgorithm::PositiveMin, &mut rng);
        assert!(
            out.energy <= greedy_energy,
            "batch {} vs greedy {greedy_energy}",
            out.energy
        );
    }
}
