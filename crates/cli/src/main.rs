//! `dabs` — command-line front end to the DABS solver, baselines, and the
//! solve-job server.
//!
//! ```text
//! dabs solve   --problem k2000|g22|g39|tai|nug|tho|qasp --n N --seed S
//!              [--budget-ms B] [--devices D] [--blocks K] [--abs]
//!              [--json] [--progress]
//! dabs compare --problem … --n N --seed S [--budget-ms B]
//! dabs info    --problem … --n N --seed S
//! dabs serve   [--addr A] [--workers W] [--queue Q]
//! dabs loadgen [--addr A] [--clients C] [--jobs J] [--n N] [--batches B]
//!              [--watch-pool MS]
//! dabs timeline <job> [--addr A]
//! dabs trace   <job> [--addr A] [--out FILE]
//! dabs bench   smoke|full|list|compare …
//! ```

mod commands;
mod options;

use options::Options;
use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage(&mut std::io::stderr());
        std::process::exit(2);
    }
    let command = args.remove(0);
    // Explicit help is a successful invocation: usage on stdout, exit 0.
    // (Errors keep printing usage to stderr with exit 2.)
    if matches!(command.as_str(), "help" | "--help" | "-h") {
        print_usage(&mut std::io::stdout());
        return;
    }
    let outcome = match command.as_str() {
        "serve" => commands::serve_from_args(&args),
        "loadgen" => commands::loadgen_from_args(&args),
        "timeline" => commands::timeline_from_args(&args),
        "trace" => commands::trace_from_args(&args),
        // `bench` owns its own exit codes (1 = gate failure, 2 = usage).
        "bench" => std::process::exit(commands::bench_from_args(&args)),
        "solve" | "compare" | "info" => {
            let opts = match Options::parse(&args) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("error: {e}");
                    print_usage(&mut std::io::stderr());
                    std::process::exit(2);
                }
            };
            match command.as_str() {
                "solve" => commands::solve(&opts),
                "compare" => commands::compare(&opts),
                _ => commands::info(&opts),
            }
        }
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn print_usage(out: &mut dyn Write) {
    let _ = writeln!(
        out,
        "dabs — Diverse Adaptive Bulk Search QUBO solver

USAGE:
  dabs solve   --problem <kind> [--n N] [--seed S] [--budget-ms B]
               [--devices D] [--blocks K] [--abs] [--target E]
               [--kernel auto|csr|dense] [--json] [--progress]
  dabs compare --problem <kind> [--n N] [--seed S] [--budget-ms B]
  dabs info    --problem <kind> [--n N] [--seed S]
  dabs serve   [--addr A] [--workers W] [--queue Q] [--wal-dir DIR]
               [--rate R] [--burst B] [--chaos SPEC] [--allow-volatile]
  dabs loadgen [--addr A] [--clients C] [--jobs J] [--n N] [--batches B]
               [--workers W] [--seed S] [--watch-pool MS]
  dabs timeline <job> [--addr A]
  dabs trace   <job> [--addr A] [--out FILE]
  dabs bench   smoke|full [--seed S] [--filter F] [--out FILE] | list
  dabs bench   compare --baseline FILE [--candidate FILE]
               [--tolerance-scale X]

PROBLEM KINDS:
  k2000 | g22 | g39   MaxCut instance classes (default n = 200)
  tai | nug | tho     QAP instance classes    (default n = 9)
  qasp                random Ising on an annealer topology (default n ≈ 500)
  random              random dense QUBO       (default n = 64)

FLAGS:
  --abs          use the ABS baseline preset instead of full DABS
  --target E     stop as soon as energy E is reached
  --budget-ms B  wall-clock budget per solve (default 2000)
  --kernel K     energy-kernel backend: auto (default; picks by instance
                 density), csr, or dense (see docs/ARCHITECTURE.md)
  --json         print the result as one machine-readable JSON line
  --progress     stream new incumbents to stderr as they are found

SERVER:
  dabs serve starts the solve-job runtime: a bounded priority queue in
  front of W long-lived solver workers, speaking newline-delimited JSON
  over TCP (see docs/PROTOCOL.md). dabs loadgen drives it with C
  concurrent clients × J jobs and reports jobs/s and latency percentiles;
  without --addr it spins up an in-process server first, and with
  --watch-pool MS it prints pool load + steal/split deltas every MS ms.
  --chaos SPEC arms deterministic fault injection (WAL errors, unit
  panics, worker kills, socket EIO — grammar in docs/RELIABILITY.md);
  --allow-volatile keeps admitting while the job log is degraded.

OBSERVABILITY:
  dabs timeline prints a job's recorded lifecycle (admission, per-unit
  start/end with queue waits, incumbents, terminal phase). dabs trace
  exports the same timeline as a Chrome trace_event JSON file for
  chrome://tracing or Perfetto (see docs/OBSERVABILITY.md).

BENCH:
  dabs bench runs the unified benchmark suite (time-to-target per problem
  family, kernel density sweep, ablations, server throughput) and writes a
  machine-readable BENCH_*.json report; compare diffs a run against a
  committed baseline and exits non-zero on gated regressions (see
  docs/BENCHMARKS.md)."
    );
}
