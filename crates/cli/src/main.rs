//! `dabs` — command-line front end to the DABS solver and baselines.
//!
//! ```text
//! dabs solve   --problem k2000|g22|g39|tai|nug|tho|qasp --n N --seed S
//!              [--budget-ms B] [--devices D] [--blocks K] [--abs]
//! dabs compare --problem … --n N --seed S [--budget-ms B]
//! dabs info    --problem … --n N --seed S
//! ```

mod commands;
mod options;

use options::Options;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        std::process::exit(2);
    }
    let command = args.remove(0);
    let opts = match Options::parse(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    let outcome = match command.as_str() {
        "solve" => commands::solve(&opts),
        "compare" => commands::compare(&opts),
        "info" => commands::info(&opts),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn print_usage() {
    eprintln!(
        "dabs — Diverse Adaptive Bulk Search QUBO solver

USAGE:
  dabs solve   --problem <kind> [--n N] [--seed S] [--budget-ms B]
               [--devices D] [--blocks K] [--abs] [--target E]
  dabs compare --problem <kind> [--n N] [--seed S] [--budget-ms B]
  dabs info    --problem <kind> [--n N] [--seed S]

PROBLEM KINDS:
  k2000 | g22 | g39   MaxCut instance classes (default n = 200)
  tai | nug | tho     QAP instance classes    (default n = 9)
  qasp                random Ising on an annealer topology (default n ≈ 500)
  random              random dense QUBO       (default n = 64)

FLAGS:
  --abs          use the ABS baseline preset instead of full DABS
  --target E     stop as soon as energy E is reached
  --budget-ms B  wall-clock budget per solve (default 2000)
"
    );
}
