//! The CLI subcommands.

use crate::options::{LoadgenOptions, Options, ServeOptions, TimelineOptions};
use dabs_baselines::bnb::{BnbConfig, BranchAndBound};
use dabs_baselines::hybrid::{HybridConfig, HybridSolver};
use dabs_baselines::sa::{SaConfig, SimulatedAnnealing};
use dabs_baselines::sb::{SbConfig, SimulatedBifurcation};
use dabs_core::{DabsConfig, DabsSolver, Incumbent, IncumbentObserver, Termination};
use dabs_server::{
    drive_fleet, timeline_to_chrome, Client, ExecMode, JobSpec, LatencySummary, PoolLoad,
    ProblemSpec, Server, ServerConfig, TimelineEvent, TimelineKind,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `dabs solve`: run DABS (or the ABS preset) and print the result.
pub fn solve(opts: &Options) -> Result<(), String> {
    let (model, name) = opts.build_model()?;
    let model = Arc::new(model);
    if !opts.json {
        println!(
            "instance: {name} — {} bits, {} quadratic terms",
            model.n(),
            model.edge_count()
        );
    }

    let mut cfg = if opts.use_abs {
        DabsConfig::abs_baseline(opts.devices, opts.blocks)
    } else {
        DabsConfig::dabs(opts.devices, opts.blocks)
    };
    cfg.seed = opts.seed;
    cfg.params.batch_lanes = opts.batch_lanes;
    let solver = DabsSolver::new(cfg)?;

    let mut term = Termination::time(opts.budget);
    if let Some(t) = opts.target {
        term = term.with_target(t);
    }
    let r = if opts.progress {
        // Live incumbents on stderr so stdout stays parseable under --json.
        let observer: IncumbentObserver = Arc::new(|inc: &Incumbent| {
            eprintln!(
                "incumbent: E = {} at {:.3}s",
                inc.energy,
                inc.found_at.as_secs_f64()
            );
        });
        solver.run_with_observer(&model, term, observer)
    } else {
        solver.run(&model, term)
    };
    if opts.json {
        // The same serialization the server protocol uses (core::wire).
        println!("{}", r.to_json());
        return Ok(());
    }
    println!(
        "solver:   {} ({} devices × {} blocks)",
        if opts.use_abs { "ABS baseline" } else { "DABS" },
        opts.devices,
        opts.blocks
    );
    println!("energy:   {}", r.energy);
    println!(
        "found at: {:.3}s of {:.3}s",
        r.time_to_best.as_secs_f64(),
        r.elapsed.as_secs_f64()
    );
    println!("batches:  {} ({} flips)", r.batches, r.flips);
    if let Some((algo, op)) = r.first_finder {
        println!("finder:   {} + {}", algo.name(), op.name());
    }
    if opts.target.is_some() {
        println!(
            "target:   {}",
            if r.reached_target {
                "reached"
            } else {
                "NOT reached"
            }
        );
    }
    Ok(())
}

/// `dabs serve`: run the solve-job server until killed.
pub fn serve_from_args(args: &[String]) -> Result<(), String> {
    let opts = ServeOptions::parse(args)?;
    let server = Server::bind(
        opts.addr.as_str(),
        ServerConfig {
            workers: opts.workers,
            queue_capacity: opts.queue_capacity,
            wal_dir: opts.wal_dir.as_ref().map(std::path::PathBuf::from),
            rate: opts.rate_config(),
            chaos: opts.fault_plan(),
            allow_volatile: opts.allow_volatile,
        },
    )
    .map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
    println!(
        "dabs-server listening on {} — {} workers, queue capacity {}",
        server.local_addr(),
        opts.workers,
        opts.queue_capacity
    );
    if let Some(dir) = &opts.wal_dir {
        println!("job log: {dir} (admitted jobs survive restart)");
    }
    if let Some(rate) = opts.rate_config() {
        println!(
            "admission rate: {}/s per tenant (burst {})",
            rate.rate_per_sec, rate.burst
        );
    }
    if let Some(spec) = &opts.chaos {
        println!("CHAOS ARMED: {spec} (fault injection is live on this server)");
    }
    if opts.allow_volatile {
        println!("volatile admission allowed: submits are accepted while the job log is degraded");
    }
    println!("protocol: newline-delimited JSON (see docs/PROTOCOL.md)");
    server.run_forever();
    Ok(())
}

/// `dabs loadgen`: drive a server with concurrent clients and report
/// throughput and latency percentiles.
pub fn loadgen_from_args(args: &[String]) -> Result<(), String> {
    let opts = LoadgenOptions::parse(args)?;
    // Without --addr, bring up an in-process server on an ephemeral port.
    let local = match &opts.addr {
        Some(_) => None,
        None => Some(
            Server::bind(
                "127.0.0.1:0",
                ServerConfig {
                    workers: opts.workers,
                    queue_capacity: (opts.jobs * 2).max(64),
                    ..ServerConfig::default()
                },
            )
            .map_err(|e| format!("cannot start in-process server: {e}"))?,
        ),
    };
    let addr = match (&opts.addr, &local) {
        (Some(a), _) => a.clone(),
        (None, Some(s)) => s.local_addr().to_string(),
        _ => unreachable!(),
    };
    println!(
        "loadgen: {} clients × {} jobs → {} (n = {}, {} batches/job)",
        opts.clients,
        opts.jobs,
        if opts.addr.is_some() {
            addr.clone()
        } else {
            format!("{addr} (in-process)")
        },
        opts.n,
        opts.batches
    );

    // --idle-conns: connection-scaling mode. Park this many idle sockets
    // on the server for the whole run — they cost the event loop one slab
    // slot and one epoll registration each, and active traffic must stay
    // fast behind them.
    let mut idle_pool = Vec::with_capacity(opts.idle_conns);
    if opts.idle_conns > 0 {
        for i in 0..opts.idle_conns {
            match std::net::TcpStream::connect(addr.as_str()) {
                Ok(s) => idle_pool.push(s),
                Err(e) => return Err(format!("idle conn {i}/{}: {e}", opts.idle_conns)),
            }
        }
        println!("holding {} idle connections for the run", idle_pool.len());
    }

    // --watch-pool: a side thread polls `stats` on its own connection and
    // prints pool load plus per-interval steal/split deltas while the
    // fleet runs.
    let stop = Arc::new(AtomicBool::new(false));
    let watcher = opts.watch_pool.map(|interval_ms| {
        let addr = addr.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || watch_pool_loop(&addr, interval_ms, &stop))
    });

    let t0 = Instant::now();
    let (n, batches, seed_base) = (opts.n, opts.batches, opts.seed);
    let driven = drive_fleet(&addr, opts.clients, opts.jobs, move |c, j| {
        let seed = seed_base + (c * 10_007 + j) as u64;
        JobSpec {
            problem: ProblemSpec::random(n, seed),
            seed,
            mode: ExecMode::Sequential,
            max_batches: Some(batches),
            ..JobSpec::default()
        }
    });
    let wall = t0.elapsed();
    // Stop the watcher before tearing down the in-process server so its
    // polls don't race the listener going away.
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = watcher {
        let _ = h.join();
    }
    let all = driven?;
    drop(idle_pool);
    if let Some(s) = local {
        s.shutdown();
    }
    let summary = LatencySummary::from_samples(all, wall).ok_or("no jobs completed")?;
    println!("{}", summary.report());
    Ok(())
}

/// Poll `stats` every `interval_ms` and print pool-load lines to stderr
/// (stdout stays reserved for the loadgen summary). Best-effort: connect
/// or poll failures end the watch quietly rather than failing the run.
fn watch_pool_loop(addr: &str, interval_ms: u64, stop: &AtomicBool) {
    let Ok(mut client) = Client::connect(addr) else {
        eprintln!("watch-pool: cannot connect to {addr}");
        return;
    };
    let mut last: Option<PoolLoad> = None;
    while !stop.load(Ordering::Relaxed) {
        let Ok(response) = client.stats() else { return };
        if let Some(load) = PoolLoad::from_stats(&response) {
            let (d_steals, d_splits) = match last {
                Some(prev) => (
                    load.steals.saturating_sub(prev.steals),
                    load.splits.saturating_sub(prev.splits),
                ),
                None => (load.steals, load.splits),
            };
            eprintln!(
                "watch-pool: {} · Δ{interval_ms}ms: +{d_steals} steals +{d_splits} splits",
                load.report()
            );
            last = Some(load);
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// One human-readable line per timeline event.
fn timeline_line(event: &TimelineEvent) -> String {
    let at = event.at_us as f64 / 1e3;
    let body = match &event.kind {
        TimelineKind::Admitted => "admitted".to_string(),
        TimelineKind::UnitStart {
            unit,
            worker,
            queue_wait_us,
        } => format!(
            "unit {unit} start on worker {worker} (queued {:.3}ms)",
            *queue_wait_us as f64 / 1e3
        ),
        TimelineKind::UnitEnd { unit, end, batches } => {
            format!("unit {unit} {end} after {batches} batches")
        }
        TimelineKind::Incumbent { energy } => format!("incumbent E = {energy}"),
        TimelineKind::Terminal { phase } => format!("terminal: {phase}"),
    };
    format!("{at:>10.3}ms  {body}")
}

/// `dabs timeline <job>`: print a job's recorded lifecycle events.
pub fn timeline_from_args(args: &[String]) -> Result<(), String> {
    let opts = TimelineOptions::parse(args)?;
    let mut client = Client::connect(opts.addr.as_str())
        .map_err(|e| format!("cannot connect to {}: {e}", opts.addr))?;
    let (events, dropped) = client.timeline(opts.job)?;
    println!("job {} — {} timeline events", opts.job, events.len());
    for event in &events {
        println!("{}", timeline_line(event));
    }
    if dropped > 0 {
        println!("({dropped} later events dropped at the per-job cap)");
    }
    Ok(())
}

/// `dabs trace`: export a job's timeline as a Chrome `trace_event` JSON
/// file (load in chrome://tracing or Perfetto).
pub fn trace_from_args(args: &[String]) -> Result<(), String> {
    let opts = TimelineOptions::parse(args)?;
    let out = opts.out.unwrap_or_else(|| "trace.json".to_string());
    let mut client = Client::connect(opts.addr.as_str())
        .map_err(|e| format!("cannot connect to {}: {e}", opts.addr))?;
    let (events, dropped) = client.timeline(opts.job)?;
    if dropped > 0 {
        eprintln!("trace: {dropped} later events were dropped at the per-job cap");
    }
    let chrome = timeline_to_chrome(opts.job, &events);
    std::fs::write(&out, dabs_obs::chrome::write_trace(&chrome))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {} trace events for job {} to {out}",
        chrome.len(),
        opts.job
    );
    Ok(())
}

/// `dabs bench`: the unified benchmark suite (smoke/full/list/compare).
///
/// Thin veneer over [`dabs_bench::suite_cli`] — the same driver behind
/// `cargo run -p dabs-bench --bin suite` — translating the subcommand word
/// into the suite's flag form. Returns the process exit code (0 ok, 1 gate
/// failure, 2 usage error).
pub fn bench_from_args(args: &[String]) -> i32 {
    let translated: Vec<String> = match args.first().map(String::as_str) {
        Some("smoke") => {
            let mut v = vec!["--smoke".to_string()];
            v.extend_from_slice(&args[1..]);
            v
        }
        Some("full") => {
            let mut v = vec!["--full".to_string()];
            v.extend_from_slice(&args[1..]);
            v
        }
        Some("list") => vec!["--list".to_string()],
        Some("compare") => args.to_vec(),
        _ => {
            eprintln!("error: dabs bench expects smoke | full | list | compare");
            return 2;
        }
    };
    dabs_bench::suite_cli::run_from_args(&translated)
}

/// `dabs compare`: run every solver in the repo on the same instance.
pub fn compare(opts: &Options) -> Result<(), String> {
    let (model, name) = opts.build_model()?;
    let model = Arc::new(model);
    println!(
        "instance: {name} — {} bits, {} quadratic terms",
        model.n(),
        model.edge_count()
    );
    println!("budget:   {:?} per solver\n", opts.budget);
    println!("{:<22} {:>14} {:>10}", "solver", "energy", "time");
    println!("{}", "-".repeat(48));

    let mut cfg = DabsConfig::dabs(opts.devices, opts.blocks);
    cfg.seed = opts.seed;
    cfg.params.batch_lanes = opts.batch_lanes;
    let r = DabsSolver::new(cfg)?.run(&model, Termination::time(opts.budget));
    println!(
        "{:<22} {:>14} {:>9.3}s",
        "DABS",
        r.energy,
        r.elapsed.as_secs_f64()
    );

    let mut abs_cfg = DabsConfig::abs_baseline(opts.devices, opts.blocks);
    abs_cfg.seed = opts.seed;
    let r = DabsSolver::new(abs_cfg)?.run(&model, Termination::time(opts.budget));
    println!(
        "{:<22} {:>14} {:>9.3}s",
        "ABS (baseline)",
        r.energy,
        r.elapsed.as_secs_f64()
    );

    let r = SimulatedAnnealing::new(SaConfig::scaled_to(&model, 2_000, opts.seed)).solve(&model);
    println!(
        "{:<22} {:>14} {:>9.3}s",
        "simulated annealing",
        r.energy,
        r.elapsed.as_secs_f64()
    );

    let r = HybridSolver::new(HybridConfig {
        time_limit: opts.budget,
        seed: opts.seed,
        ..HybridConfig::default()
    })
    .solve(&model);
    println!(
        "{:<22} {:>14} {:>9.3}s",
        "hybrid portfolio",
        r.energy,
        r.elapsed.as_secs_f64()
    );

    let r = BranchAndBound::new(BnbConfig {
        time_limit: opts.budget,
        heuristic_restarts: 16,
        seed: opts.seed,
    })
    .solve(&model);
    println!(
        "{:<22} {:>14} {:>9.3}s{}",
        "branch & bound",
        r.energy,
        r.elapsed.as_secs_f64(),
        if r.proven_optimal {
            "  (proven optimal)"
        } else {
            ""
        }
    );

    let (ising, c) = model.to_ising();
    let r = SimulatedBifurcation::new(SbConfig {
        steps: 5_000,
        seed: opts.seed,
        ..SbConfig::default()
    })
    .solve(&ising);
    println!(
        "{:<22} {:>14} {:>9.3}s",
        "discrete SB",
        (r.energy + c) / 4,
        r.elapsed.as_secs_f64()
    );
    Ok(())
}

/// `dabs info`: print instance statistics without solving.
pub fn info(opts: &Options) -> Result<(), String> {
    let (model, name) = opts.build_model()?;
    println!("instance:        {name}");
    println!("bits:            {}", model.n());
    println!("quadratic terms: {}", model.edge_count());
    println!(
        "density:         {:.3} → {} kernel",
        model.density(),
        model.kernel_kind().name()
    );
    println!("max |weight|:    {}", model.max_abs_weight());
    println!("trivial bound:   E ≥ {}", model.lower_bound());
    let degrees: Vec<usize> = (0..model.n())
        .map(|i| model.adjacency().degree(i))
        .collect();
    let avg = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
    println!(
        "degree:          avg {:.1}, max {}",
        avg,
        degrees.iter().max().unwrap_or(&0)
    );
    Ok(())
}
