//! Flag parsing and instance construction for the CLI.

use dabs_model::{KernelChoice, QuboModel};
use dabs_server::ProblemSpec;
use std::time::Duration;

/// Parsed options common to `solve` / `compare` / `info`.
#[derive(Debug, Clone)]
pub struct Options {
    pub problem: String,
    pub n: Option<usize>,
    pub seed: u64,
    pub budget: Duration,
    pub devices: usize,
    pub blocks: usize,
    pub use_abs: bool,
    pub target: Option<i64>,
    pub file: Option<String>,
    /// Energy-kernel backend (`auto` picks by instance density).
    pub kernel: KernelChoice,
    /// Bit-sliced bulk-search lane count (0 = scalar device legs; a
    /// multiple of 64 in [64, 256] switches devices to lockstep batches).
    pub batch_lanes: u32,
    /// Emit the solve result as one machine-readable JSON line.
    pub json: bool,
    /// Stream incumbents to stderr while solving.
    pub progress: bool,
}

impl Options {
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Options {
            problem: String::new(),
            n: None,
            seed: 1,
            budget: Duration::from_millis(2000),
            devices: 4,
            blocks: 2,
            use_abs: false,
            target: None,
            file: None,
            kernel: KernelChoice::Auto,
            batch_lanes: 0,
            json: false,
            progress: false,
        };
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("--{name} requires a value"))
            };
            match a.as_str() {
                "--problem" => o.problem = value("problem")?,
                "--n" => o.n = Some(parse(&value("n")?, "n")?),
                "--seed" => o.seed = parse(&value("seed")?, "seed")?,
                "--budget-ms" => {
                    o.budget = Duration::from_millis(parse(&value("budget-ms")?, "budget-ms")?)
                }
                "--devices" => o.devices = parse(&value("devices")?, "devices")?,
                "--blocks" => o.blocks = parse(&value("blocks")?, "blocks")?,
                "--target" => o.target = Some(parse(&value("target")?, "target")?),
                "--file" => o.file = Some(value("file")?),
                "--kernel" => o.kernel = KernelChoice::from_name(&value("kernel")?)?,
                "--batch-lanes" => {
                    let lanes: u32 = parse(&value("batch-lanes")?, "batch-lanes")?;
                    if lanes != 0 && !dabs_model::valid_lanes(lanes as usize) {
                        return Err(format!(
                            "--batch-lanes {lanes}: use 0 for scalar, or a multiple of 64 in [64, 256]"
                        ));
                    }
                    o.batch_lanes = lanes;
                }
                "--abs" => o.use_abs = true,
                "--json" => o.json = true,
                "--progress" => o.progress = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if o.problem.is_empty() && o.file.is_none() {
            return Err("--problem or --file is required".into());
        }
        Ok(o)
    }

    /// Convert the flags into the shared [`ProblemSpec`] — the same
    /// construction path the server's job runtime uses, so `dabs solve` and
    /// a submitted job with identical parameters build identical models.
    pub fn problem_spec(&self) -> Result<(ProblemSpec, Option<String>), String> {
        if let Some(path) = &self.file {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = ProblemSpec {
                kernel: self.kernel,
                ..ProblemSpec::inline_text(text)
            };
            return Ok((spec, Some(format!("file:{path}"))));
        }
        Ok((
            ProblemSpec {
                kind: self.problem.clone(),
                n: self.n,
                seed: self.seed,
                inline: None,
                kernel: self.kernel,
            },
            None,
        ))
    }

    /// Build the QUBO model (plus a description) for the selected problem.
    pub fn build_model(&self) -> Result<(QuboModel, String), String> {
        let (spec, name_override) = self.problem_spec()?;
        let (model, name) = spec.build()?;
        Ok((model, name_override.unwrap_or(name)))
    }
}

/// Options for `dabs serve`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    pub addr: String,
    pub workers: usize,
    pub queue_capacity: usize,
    /// Durable job log directory: admitted jobs survive a crash and are
    /// re-admitted on restart.
    pub wal_dir: Option<String>,
    /// Per-tenant sustained admissions/sec (with `--burst` headroom);
    /// absent = no rate limiting.
    pub rate_per_sec: Option<f64>,
    pub burst: Option<f64>,
    /// Fault-injection spec (e.g. `seed=7,wal_fsync=0.5x2,unit_panic=0.05`);
    /// see `docs/RELIABILITY.md` for the grammar. Absent = no chaos.
    pub chaos: Option<String>,
    /// Keep accepting submits while the WAL is degraded (admissions are
    /// then volatile: a crash may lose them).
    pub allow_volatile: bool,
}

impl ServeOptions {
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = ServeOptions {
            addr: "127.0.0.1:7878".into(),
            workers: 2,
            queue_capacity: 256,
            wal_dir: None,
            rate_per_sec: None,
            burst: None,
            chaos: None,
            allow_volatile: false,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("--{name} requires a value"))
            };
            match a.as_str() {
                "--addr" => o.addr = value("addr")?,
                "--workers" => o.workers = parse(&value("workers")?, "workers")?,
                "--queue" => o.queue_capacity = parse(&value("queue")?, "queue")?,
                "--wal-dir" => o.wal_dir = Some(value("wal-dir")?),
                "--rate" => o.rate_per_sec = Some(parse(&value("rate")?, "rate")?),
                "--burst" => o.burst = Some(parse(&value("burst")?, "burst")?),
                "--chaos" => o.chaos = Some(value("chaos")?),
                "--allow-volatile" => o.allow_volatile = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if o.workers == 0 {
            return Err("--workers must be ≥ 1".into());
        }
        if let Some(spec) = &o.chaos {
            dabs_server::FaultPlan::parse(spec).map_err(|e| format!("--chaos: {e}"))?;
        }
        if let Some(r) = o.rate_per_sec {
            if !r.is_finite() || r <= 0.0 {
                return Err("--rate must be > 0".into());
            }
        }
        if o.burst.is_some() && o.rate_per_sec.is_none() {
            return Err("--burst requires --rate".into());
        }
        Ok(o)
    }

    /// The admission rate config these flags describe (burst defaults to
    /// the per-second rate).
    pub fn rate_config(&self) -> Option<dabs_server::RateConfig> {
        self.rate_per_sec
            .map(|rate_per_sec| dabs_server::RateConfig {
                rate_per_sec,
                burst: self.burst.unwrap_or(rate_per_sec.max(1.0)),
            })
    }

    /// The armed fault plan `--chaos` describes (already validated by
    /// `parse`, so this cannot fail on parsed options).
    pub fn fault_plan(&self) -> Option<std::sync::Arc<dabs_server::FaultPlan>> {
        self.chaos
            .as_deref()
            .and_then(|spec| dabs_server::FaultPlan::parse(spec).ok())
            .map(std::sync::Arc::new)
    }
}

/// Options for `dabs loadgen`.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Target server; `None` spins up an in-process one.
    pub addr: Option<String>,
    pub clients: usize,
    pub jobs: usize,
    pub n: usize,
    pub batches: u64,
    /// Workers for the in-process server (ignored with `--addr`).
    pub workers: usize,
    pub seed: u64,
    /// Print pool-load snapshots (with steal/split deltas) every N ms
    /// while the fleet runs.
    pub watch_pool: Option<u64>,
    /// Connection-scaling mode: hold this many extra idle connections open
    /// for the whole run, demonstrating the event loop's cost per idle
    /// socket (0 = off).
    pub idle_conns: usize,
}

impl LoadgenOptions {
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = LoadgenOptions {
            addr: None,
            clients: 4,
            jobs: 20,
            n: 32,
            batches: 300,
            workers: 2,
            seed: 1,
            watch_pool: None,
            idle_conns: 0,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("--{name} requires a value"))
            };
            match a.as_str() {
                "--addr" => o.addr = Some(value("addr")?),
                "--clients" => o.clients = parse(&value("clients")?, "clients")?,
                "--jobs" => o.jobs = parse(&value("jobs")?, "jobs")?,
                "--n" => o.n = parse(&value("n")?, "n")?,
                "--batches" => o.batches = parse(&value("batches")?, "batches")?,
                "--workers" => o.workers = parse(&value("workers")?, "workers")?,
                "--seed" => o.seed = parse(&value("seed")?, "seed")?,
                "--watch-pool" => o.watch_pool = Some(parse(&value("watch-pool")?, "watch-pool")?),
                "--idle-conns" => o.idle_conns = parse(&value("idle-conns")?, "idle-conns")?,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if o.clients == 0 || o.jobs == 0 {
            return Err("--clients and --jobs must be ≥ 1".into());
        }
        if o.watch_pool == Some(0) {
            return Err("--watch-pool interval must be ≥ 1 ms".into());
        }
        Ok(o)
    }
}

/// Options for `dabs timeline` and `dabs trace` — both fetch one job's
/// event timeline from a running server; `trace` additionally exports it
/// as a Chrome `trace_event` file.
#[derive(Debug, Clone)]
pub struct TimelineOptions {
    pub job: u64,
    pub addr: String,
    /// `dabs trace` output path (defaulted there, unused by `timeline`).
    pub out: Option<String>,
}

impl TimelineOptions {
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut job: Option<u64> = None;
        let mut addr = "127.0.0.1:7878".to_string();
        let mut out: Option<String> = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("--{name} requires a value"))
            };
            match a.as_str() {
                "--addr" => addr = value("addr")?,
                "--job" => job = Some(parse(&value("job")?, "job")?),
                "--out" => out = Some(value("out")?),
                other if !other.starts_with('-') && job.is_none() => {
                    job = Some(parse(other, "job")?)
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        let job = job.ok_or("a job id is required (positional or --job)")?;
        Ok(Self { job, addr, out })
    }
}

fn parse<T: std::str::FromStr>(v: &str, name: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("--{name}: cannot parse {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &str) -> Result<Options, String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        Options::parse(&args)
    }

    #[test]
    fn parses_complete_flag_set() {
        let o = opts("--problem g22 --n 150 --seed 9 --budget-ms 500 --devices 2 --blocks 3 --abs --target -42 --json --progress").unwrap();
        assert_eq!(o.problem, "g22");
        assert_eq!(o.n, Some(150));
        assert_eq!(o.seed, 9);
        assert_eq!(o.budget, Duration::from_millis(500));
        assert_eq!(o.devices, 2);
        assert_eq!(o.blocks, 3);
        assert!(o.use_abs);
        assert_eq!(o.target, Some(-42));
        assert!(o.json);
        assert!(o.progress);
    }

    #[test]
    fn json_and_progress_default_off() {
        let o = opts("--problem g22").unwrap();
        assert!(!o.json);
        assert!(!o.progress);
        assert_eq!(o.kernel, KernelChoice::Auto);
        assert_eq!(o.batch_lanes, 0);
    }

    #[test]
    fn batch_lanes_flag_validates_widths() {
        for ok in [0u32, 64, 128, 192, 256] {
            let o = opts(&format!("--problem g22 --batch-lanes {ok}")).unwrap();
            assert_eq!(o.batch_lanes, ok);
        }
        for bad in ["1", "32", "63", "96", "320", "moo"] {
            assert!(
                opts(&format!("--problem g22 --batch-lanes {bad}")).is_err(),
                "--batch-lanes {bad} should be rejected"
            );
        }
    }

    #[test]
    fn kernel_flag_selects_the_backend() {
        use dabs_model::KernelKind;
        for (flag, kind) in [("csr", KernelKind::Csr), ("dense", KernelKind::Dense)] {
            let o = opts(&format!("--problem random --n 24 --kernel {flag}")).unwrap();
            let (model, _) = o.build_model().unwrap();
            assert_eq!(model.kernel_kind(), kind, "--kernel {flag}");
        }
        assert!(opts("--problem random --kernel gpu").is_err());
    }

    #[test]
    fn requires_problem_or_file() {
        assert!(opts("--n 10").is_err());
        assert!(opts("--file x.qubo").is_ok());
    }

    #[test]
    fn rejects_unknown_flags() {
        let e = opts("--problem g22 --bogus 1").unwrap_err();
        assert!(e.contains("bogus"));
    }

    #[test]
    fn builds_every_generator_kind() {
        for kind in ["k2000", "g22", "g39", "tai", "nug", "tho", "qasp", "random"] {
            let o = opts(&format!("--problem {kind}")).unwrap();
            let (model, name) = o.build_model().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(model.n() > 0, "{kind}");
            assert!(!name.is_empty());
        }
    }

    #[test]
    fn nug_requires_square_n() {
        let o = opts("--problem nug --n 10").unwrap();
        assert!(o.build_model().is_err());
    }

    #[test]
    fn unknown_problem_kind_errors() {
        let o = opts("--problem nonsense").unwrap();
        assert!(o.build_model().is_err());
    }

    #[test]
    fn file_kind_round_trips_through_io() {
        let q = {
            let mut b = dabs_model::QuboBuilder::new(4);
            b.add_linear(0, -3).add_quadratic(1, 2, 5);
            b.build().unwrap()
        };
        let path = std::env::temp_dir().join("dabs_cli_test.qubo");
        std::fs::write(&path, dabs_model::io::write_qubo(&q)).unwrap();
        let o = opts(&format!("--file {}", path.display())).unwrap();
        let (model, name) = o.build_model().unwrap();
        assert_eq!(model, q);
        assert!(name.starts_with("file:"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn cli_flags_build_the_same_model_as_a_server_job_spec() {
        let o = opts("--problem random --n 24 --seed 8").unwrap();
        let (cli_model, _) = o.build_model().unwrap();
        let (spec, _) = o.problem_spec().unwrap();
        let (job_model, _) = spec.build().unwrap();
        assert_eq!(cli_model, job_model);
    }

    #[test]
    fn serve_options_defaults_and_flags() {
        let o = ServeOptions::parse(&[]).unwrap();
        assert_eq!(o.addr, "127.0.0.1:7878");
        assert_eq!(o.workers, 2);
        let args: Vec<String> = "--addr 0.0.0.0:9000 --workers 6 --queue 32"
            .split_whitespace()
            .map(String::from)
            .collect();
        let o = ServeOptions::parse(&args).unwrap();
        assert_eq!(
            (o.addr.as_str(), o.workers, o.queue_capacity),
            ("0.0.0.0:9000", 6, 32)
        );
        assert!(ServeOptions::parse(&["--workers".into(), "0".into()]).is_err());
    }

    #[test]
    fn serve_wal_and_rate_flags() {
        let args: Vec<String> = "--wal-dir /tmp/dabs-wal --rate 50 --burst 10"
            .split_whitespace()
            .map(String::from)
            .collect();
        let o = ServeOptions::parse(&args).unwrap();
        assert_eq!(o.wal_dir.as_deref(), Some("/tmp/dabs-wal"));
        let rate = o.rate_config().unwrap();
        assert_eq!((rate.rate_per_sec, rate.burst), (50.0, 10.0));
        // Burst defaults to the rate; rate must be positive; burst alone
        // is meaningless.
        let args: Vec<String> = vec!["--rate".into(), "5".into()];
        let o = ServeOptions::parse(&args).unwrap();
        assert_eq!(o.rate_config().unwrap().burst, 5.0);
        assert!(ServeOptions::parse(&["--rate".into(), "0".into()]).is_err());
        assert!(ServeOptions::parse(&["--burst".into(), "5".into()]).is_err());
        assert!(ServeOptions::parse(&[]).unwrap().rate_config().is_none());
    }

    #[test]
    fn serve_chaos_and_volatile_flags() {
        let args: Vec<String> = "--chaos seed=7,unit_panic=0.5x2 --allow-volatile"
            .split_whitespace()
            .map(String::from)
            .collect();
        let o = ServeOptions::parse(&args).unwrap();
        assert!(o.allow_volatile);
        assert_eq!(o.chaos.as_deref(), Some("seed=7,unit_panic=0.5x2"));
        assert!(o.fault_plan().is_some());
        // A malformed spec is refused at parse time, not at serve time.
        let bad: Vec<String> = vec!["--chaos".into(), "not_a_site=1".into()];
        assert!(ServeOptions::parse(&bad).is_err());
        // Defaults: no chaos, durable-only admission.
        let o = ServeOptions::parse(&[]).unwrap();
        assert!(o.chaos.is_none() && !o.allow_volatile && o.fault_plan().is_none());
    }

    #[test]
    fn loadgen_options_defaults_and_flags() {
        let o = LoadgenOptions::parse(&[]).unwrap();
        assert_eq!((o.clients, o.jobs), (4, 20));
        assert!(o.addr.is_none());
        let args: Vec<String> = "--addr 127.0.0.1:7878 --clients 8 --jobs 64 --n 16 --batches 50"
            .split_whitespace()
            .map(String::from)
            .collect();
        let o = LoadgenOptions::parse(&args).unwrap();
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!((o.clients, o.jobs, o.n, o.batches), (8, 64, 16, 50));
        assert!(o.watch_pool.is_none());
        assert!(LoadgenOptions::parse(&["--jobs".into(), "0".into()]).is_err());
    }

    #[test]
    fn loadgen_watch_pool_flag() {
        let args: Vec<String> = "--watch-pool 250"
            .split_whitespace()
            .map(String::from)
            .collect();
        let o = LoadgenOptions::parse(&args).unwrap();
        assert_eq!(o.watch_pool, Some(250));
        assert!(LoadgenOptions::parse(&["--watch-pool".into(), "0".into()]).is_err());
        assert!(LoadgenOptions::parse(&["--watch-pool".into()]).is_err());
    }

    #[test]
    fn loadgen_idle_conns_flag() {
        assert_eq!(LoadgenOptions::parse(&[]).unwrap().idle_conns, 0);
        let args: Vec<String> = vec!["--idle-conns".into(), "500".into()];
        assert_eq!(LoadgenOptions::parse(&args).unwrap().idle_conns, 500);
    }

    #[test]
    fn timeline_options_positional_and_flags() {
        let args: Vec<String> = vec!["17".into()];
        let o = TimelineOptions::parse(&args).unwrap();
        assert_eq!((o.job, o.addr.as_str()), (17, "127.0.0.1:7878"));
        assert!(o.out.is_none());
        let args: Vec<String> = "--job 4 --addr 10.0.0.1:9 --out t.json"
            .split_whitespace()
            .map(String::from)
            .collect();
        let o = TimelineOptions::parse(&args).unwrap();
        assert_eq!((o.job, o.addr.as_str()), (4, "10.0.0.1:9"));
        assert_eq!(o.out.as_deref(), Some("t.json"));
        // A job id is mandatory; garbage and unknown flags are rejected.
        assert!(TimelineOptions::parse(&[]).is_err());
        assert!(TimelineOptions::parse(&["nonsense".into()]).is_err());
        assert!(TimelineOptions::parse(&["1".into(), "--bogus".into()]).is_err());
    }
}
