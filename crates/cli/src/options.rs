//! Flag parsing and instance construction for the CLI.

use dabs_model::QuboModel;
use dabs_problems::{gset, qaplib, QaspInstance, Topology};
use dabs_rng::{Rng64, Xorshift64Star};
use std::time::Duration;

/// Parsed options common to every subcommand.
#[derive(Debug, Clone)]
pub struct Options {
    pub problem: String,
    pub n: Option<usize>,
    pub seed: u64,
    pub budget: Duration,
    pub devices: usize,
    pub blocks: usize,
    pub use_abs: bool,
    pub target: Option<i64>,
    pub file: Option<String>,
}

impl Options {
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Options {
            problem: String::new(),
            n: None,
            seed: 1,
            budget: Duration::from_millis(2000),
            devices: 4,
            blocks: 2,
            use_abs: false,
            target: None,
            file: None,
        };
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("--{name} requires a value"))
            };
            match a.as_str() {
                "--problem" => o.problem = value("problem")?,
                "--n" => o.n = Some(parse(&value("n")?, "n")?),
                "--seed" => o.seed = parse(&value("seed")?, "seed")?,
                "--budget-ms" => {
                    o.budget = Duration::from_millis(parse(&value("budget-ms")?, "budget-ms")?)
                }
                "--devices" => o.devices = parse(&value("devices")?, "devices")?,
                "--blocks" => o.blocks = parse(&value("blocks")?, "blocks")?,
                "--target" => o.target = Some(parse(&value("target")?, "target")?),
                "--file" => o.file = Some(value("file")?),
                "--abs" => o.use_abs = true,
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        if o.problem.is_empty() && o.file.is_none() {
            return Err("--problem or --file is required".into());
        }
        Ok(o)
    }

    /// Build the QUBO model (plus a description) for the selected problem.
    pub fn build_model(&self) -> Result<(QuboModel, String), String> {
        if let Some(path) = &self.file {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let model = dabs_model::io::parse_qubo(&text).map_err(|e| e.to_string())?;
            return Ok((model, format!("file:{path}")));
        }
        let seed = self.seed;
        match self.problem.as_str() {
            "k2000" => {
                let n = self.n.unwrap_or(200);
                let p = gset::k2000_like(n, seed);
                Ok((p.to_qubo(), p.name))
            }
            "g22" => {
                let n = self.n.unwrap_or(200);
                let m = (n * n) / 200; // matches G22's 1% density
                let p = gset::g22_like(n, m, seed);
                Ok((p.to_qubo(), p.name))
            }
            "g39" => {
                let n = self.n.unwrap_or(200);
                let m = (n * n * 6) / 2000;
                let p = gset::g39_like(n, m, seed);
                Ok((p.to_qubo(), p.name))
            }
            "tai" => {
                let n = self.n.unwrap_or(9);
                let q = qaplib::tai_like(n, seed);
                let pen = q.auto_penalty();
                let name = format!("{} (penalty {pen})", q.name);
                Ok((q.to_qubo(pen), name))
            }
            "nug" => {
                let n = self.n.unwrap_or(9);
                let side = (n as f64).sqrt().round() as usize;
                if side * side != n {
                    return Err(format!("nug requires a square n, got {n}"));
                }
                let q = qaplib::nug_like(side, side, seed);
                let pen = q.auto_penalty();
                let name = format!("{} (penalty {pen})", q.name);
                Ok((q.to_qubo(pen), name))
            }
            "tho" => {
                let n = self.n.unwrap_or(9);
                let side = (n as f64).sqrt().round() as usize;
                if side * side != n {
                    return Err(format!("tho requires a square n, got {n}"));
                }
                let q = qaplib::tho_like(side, side, seed);
                let pen = q.auto_penalty();
                let name = format!("{} (penalty {pen})", q.name);
                Ok((q.to_qubo(pen), name))
            }
            "qasp" => {
                let n = self.n.unwrap_or(512);
                // Chimera cell count that covers n before fault trimming
                let cells = ((n as f64 / 8.0).sqrt().ceil() as usize).max(2);
                let topo = Topology::pegasus_like(cells, cells, 14.0, seed);
                let target_edges = (n * 7).min(topo.edge_count());
                let topo = topo.with_faults(n.min(topo.n()), target_edges, seed);
                let inst = QaspInstance::generate(&topo, 16, seed);
                let name = inst.name.clone();
                Ok((inst.qubo().clone(), name))
            }
            "random" => {
                let n = self.n.unwrap_or(64);
                let mut rng = Xorshift64Star::new(seed);
                let mut b = dabs_model::QuboBuilder::new(n);
                for i in 0..n {
                    b.add_linear(i, rng.next_range_i64(-9, 9));
                    for j in (i + 1)..n {
                        if rng.next_bool(0.3) {
                            b.add_quadratic(i, j, rng.next_range_i64(-9, 9));
                        }
                    }
                }
                Ok((
                    b.build().map_err(|e| e.to_string())?,
                    format!("random(n={n})"),
                ))
            }
            other => Err(format!("unknown problem kind {other:?}")),
        }
    }
}

fn parse<T: std::str::FromStr>(v: &str, name: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("--{name}: cannot parse {v:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(s: &str) -> Result<Options, String> {
        let args: Vec<String> = s.split_whitespace().map(String::from).collect();
        Options::parse(&args)
    }

    #[test]
    fn parses_complete_flag_set() {
        let o = opts("--problem g22 --n 150 --seed 9 --budget-ms 500 --devices 2 --blocks 3 --abs --target -42").unwrap();
        assert_eq!(o.problem, "g22");
        assert_eq!(o.n, Some(150));
        assert_eq!(o.seed, 9);
        assert_eq!(o.budget, Duration::from_millis(500));
        assert_eq!(o.devices, 2);
        assert_eq!(o.blocks, 3);
        assert!(o.use_abs);
        assert_eq!(o.target, Some(-42));
    }

    #[test]
    fn requires_problem_or_file() {
        assert!(opts("--n 10").is_err());
        assert!(opts("--file x.qubo").is_ok());
    }

    #[test]
    fn rejects_unknown_flags() {
        let e = opts("--problem g22 --bogus 1").unwrap_err();
        assert!(e.contains("bogus"));
    }

    #[test]
    fn builds_every_generator_kind() {
        for kind in ["k2000", "g22", "g39", "tai", "nug", "tho", "qasp", "random"] {
            let o = opts(&format!("--problem {kind}")).unwrap();
            let (model, name) = o.build_model().unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(model.n() > 0, "{kind}");
            assert!(!name.is_empty());
        }
    }

    #[test]
    fn nug_requires_square_n() {
        let o = opts("--problem nug --n 10").unwrap();
        assert!(o.build_model().is_err());
    }

    #[test]
    fn unknown_problem_kind_errors() {
        let o = opts("--problem nonsense").unwrap();
        assert!(o.build_model().is_err());
    }

    #[test]
    fn file_kind_round_trips_through_io() {
        let q = {
            let mut b = dabs_model::QuboBuilder::new(4);
            b.add_linear(0, -3).add_quadratic(1, 2, 5);
            b.build().unwrap()
        };
        let path = std::env::temp_dir().join("dabs_cli_test.qubo");
        std::fs::write(&path, dabs_model::io::write_qubo(&q)).unwrap();
        let o = opts(&format!("--file {}", path.display())).unwrap();
        let (model, name) = o.build_model().unwrap();
        assert_eq!(model, q);
        assert!(name.starts_with("file:"));
        let _ = std::fs::remove_file(path);
    }
}
