//! End-to-end smoke tests for the `dabs` binary: the library crates are
//! covered by the workspace test suite, but the binary path — argument
//! parsing, instance construction, solver wiring, report printing, exit
//! codes — only gets exercised here.

use std::process::{Command, Output};

fn dabs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dabs"))
        .args(args)
        .output()
        .expect("failed to spawn the dabs binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn solve_runs_end_to_end_on_a_tiny_builtin_instance() {
    let out = dabs(&[
        "solve",
        "--problem",
        "random",
        "--n",
        "24",
        "--seed",
        "1",
        "--budget-ms",
        "200",
        "--devices",
        "2",
        "--blocks",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["instance:", "solver:", "energy:", "batches:", "finder:"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn solve_stops_early_when_target_is_reached() {
    // Energy 0 is always reachable (the all-zeros vector), so --target 0
    // must terminate well before the generous budget.
    let out = dabs(&[
        "solve",
        "--problem",
        "random",
        "--n",
        "16",
        "--seed",
        "3",
        "--target",
        "0",
        "--budget-ms",
        "30000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("reached") && !text.contains("NOT reached"),
        "expected early target stop in:\n{text}"
    );
}

#[test]
fn info_reports_instance_shape_without_solving() {
    let out = dabs(&["info", "--problem", "k2000", "--n", "32", "--seed", "1"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["bits:", "quadratic terms:", "degree:"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    assert!(text.contains("32"), "instance size missing in:\n{text}");
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = dabs(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = dabs(&["solve", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error"));
}

#[test]
fn unknown_command_fails_with_exit_1() {
    let out = dabs(&["frobnicate", "--problem", "random"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown command"));
}
