//! End-to-end smoke tests for the `dabs` binary: the library crates are
//! covered by the workspace test suite, but the binary path — argument
//! parsing, instance construction, solver wiring, report printing, exit
//! codes — only gets exercised here.

use std::process::{Command, Output};

fn dabs(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dabs"))
        .args(args)
        .output()
        .expect("failed to spawn the dabs binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn solve_runs_end_to_end_on_a_tiny_builtin_instance() {
    let out = dabs(&[
        "solve",
        "--problem",
        "random",
        "--n",
        "24",
        "--seed",
        "1",
        "--budget-ms",
        "200",
        "--devices",
        "2",
        "--blocks",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["instance:", "solver:", "energy:", "batches:", "finder:"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn solve_stops_early_when_target_is_reached() {
    // Energy 0 is always reachable (the all-zeros vector), so --target 0
    // must terminate well before the generous budget.
    let out = dabs(&[
        "solve",
        "--problem",
        "random",
        "--n",
        "16",
        "--seed",
        "3",
        "--target",
        "0",
        "--budget-ms",
        "30000",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("reached") && !text.contains("NOT reached"),
        "expected early target stop in:\n{text}"
    );
}

#[test]
fn info_reports_instance_shape_without_solving() {
    let out = dabs(&["info", "--problem", "k2000", "--n", "32", "--seed", "1"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    for needle in ["bits:", "quadratic terms:", "degree:"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    assert!(text.contains("32"), "instance size missing in:\n{text}");
}

#[test]
fn no_arguments_prints_usage_and_exits_2() {
    let out = dabs(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn explicit_help_prints_usage_to_stdout_and_exits_0() {
    for flag in ["help", "--help", "-h"] {
        let out = dabs(&[flag]);
        assert_eq!(out.status.code(), Some(0), "{flag} must succeed");
        assert!(stdout(&out).contains("USAGE"), "{flag}: usage on stdout");
        assert!(
            stderr(&out).is_empty(),
            "{flag}: nothing on stderr, got {}",
            stderr(&out)
        );
    }
}

#[test]
fn solve_json_emits_one_machine_readable_line() {
    let out = dabs(&[
        "solve",
        "--problem",
        "random",
        "--n",
        "16",
        "--seed",
        "2",
        "--budget-ms",
        "100",
        "--json",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "exactly one line, got:\n{text}");
    let line = lines[0];
    assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
    for field in [
        "\"energy\":",
        "\"best\":",
        "\"batches\":",
        "\"frequencies\":",
    ] {
        assert!(line.contains(field), "missing {field} in {line}");
    }
}

#[test]
fn loadgen_runs_an_in_process_server_end_to_end() {
    let out = dabs(&[
        "loadgen",
        "--clients",
        "2",
        "--jobs",
        "4",
        "--n",
        "16",
        "--batches",
        "40",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("jobs/s"), "throughput line missing:\n{text}");
    assert!(text.contains("p99"), "latency line missing:\n{text}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = dabs(&["solve", "--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("error"));
}

#[test]
fn unknown_command_fails_with_exit_1() {
    let out = dabs(&["frobnicate", "--problem", "random"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown command"));
}
