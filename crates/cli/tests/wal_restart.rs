//! Kill-and-restart end-to-end test of the durable job log.
//!
//! Drives the real `dabs serve --wal-dir` binary: submit jobs, SIGKILL the
//! process mid-run (no graceful shutdown, no flush window), restart it on
//! the same log directory, and prove the WAL's contract:
//!
//! * every admitted job survives — the unfinished one is re-admitted and
//!   runs to completion after restart,
//! * a finished job's terminal result survives — fetchable by id,
//! * idempotent resubmits collapse onto the original ids across the crash,
//!   so at-least-once submit retries never double-run work.

use dabs_server::{Client, JobSpec, ProblemSpec};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Start `dabs serve` on an ephemeral port and parse the bound address
/// from its banner line.
fn spawn_serve(wal_dir: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dabs"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--wal-dir",
        ])
        .arg(wal_dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dabs serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("serve exited before its banner")
            .expect("read banner");
        if let Some(rest) = line.strip_prefix("dabs-server listening on ") {
            break rest.split_whitespace().next().expect("addr").to_string();
        }
    };
    // Drain the rest of the banner on a detached thread so the child never
    // blocks on a full stdout pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

fn connect(addr: &str) -> Client {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::builder(addr).connect() {
            Ok(c) => return c,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot connect to {addr}: {e}");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn keyed_job(key: &str, batches: u64) -> JobSpec {
    JobSpec {
        problem: ProblemSpec::random(24, 5),
        max_batches: Some(batches),
        idempotency_key: Some(key.to_string()),
        ..JobSpec::default()
    }
}

#[test]
fn killed_server_replays_admitted_jobs_and_collapses_resubmits() {
    let wal_dir = std::env::temp_dir().join(format!(
        "dabs-wal-e2e-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);

    let (mut child, addr) = spawn_serve(&wal_dir);
    let mut client = connect(&addr);

    // Job A runs to completion before the crash; its result must survive.
    let done_ack = client
        .try_submit(&keyed_job("job-done", 50))
        .expect("submit done job");
    assert!(!done_ack.duplicate);
    let done_outcome = client.wait_result(done_ack.job).expect("done result");
    assert_eq!(done_outcome.phase, "done");
    let done_energy = done_outcome.result.as_ref().expect("result").energy;

    // Job B is effectively unbounded — still running (or queued) when the
    // process dies. Its WAL admit record is all that survives.
    let live_ack = client
        .try_submit(&keyed_job("job-live", u64::MAX / 2))
        .expect("submit live job");
    assert!(!live_ack.duplicate);

    // SIGKILL: no drain, no flush window, no terminal records for B.
    child.kill().expect("kill serve");
    child.wait().expect("reap serve");

    // Restart on the same log.
    let (mut child2, addr2) = spawn_serve(&wal_dir);
    let mut client2 = connect(&addr2);

    // A's terminal outcome was durably logged: resubmitting its key
    // collapses onto the original id and the result is fetchable at once.
    let again = client2
        .try_submit(&keyed_job("job-done", 50))
        .expect("resubmit done");
    assert!(again.duplicate, "completed job must collapse by key");
    assert_eq!(again.job, done_ack.job, "original id survives the crash");
    let replayed = client2.wait_result(again.job).expect("replayed result");
    assert_eq!(replayed.phase, "done");
    assert_eq!(
        replayed.result.expect("replayed result").energy,
        done_energy,
        "the stored result is the original, not a re-run"
    );

    // B was re-admitted from its admit record: same id, alive again.
    let live_again = client2
        .try_submit(&keyed_job("job-live", u64::MAX / 2))
        .expect("resubmit live");
    assert!(live_again.duplicate, "replayed job must collapse by key");
    assert_eq!(
        live_again.job, live_ack.job,
        "admitted job survives the kill"
    );
    let (phase, _) = client2.status(live_ack.job).expect("status");
    assert!(
        phase == "queued" || phase == "running",
        "re-admitted job must be live, got {phase}"
    );
    // It is genuinely running: cancel ends it with a terminal phase.
    client2.cancel(live_ack.job).expect("cancel");
    let ended = client2.wait_result(live_ack.job).expect("cancelled result");
    assert_eq!(ended.phase, "cancelled");

    child2.kill().expect("kill serve 2");
    child2.wait().expect("reap serve 2");
    let _ = std::fs::remove_dir_all(&wal_dir);
}
