//! The epoll-based serving loop: every socket on one thread.
//!
//! PR 2's thread-per-connection model spends two OS threads (reader +
//! writer) and two stacks per client; at thousands of idle connections the
//! scheduler, not the solver, becomes the cost. This loop replaces it with
//! readiness: one `dabs-net` thread owns the listener and every accepted
//! socket through a level-triggered [`mio::Poll`], doing non-blocking
//! accept/read/write and keeping per-connection state in a slab indexed by
//! poll token.
//!
//! Design points:
//!
//! * **Outbound is a queue behind a [`LineSink`].** Worker threads
//!   (incumbent fan-out, terminal notifications) enqueue encoded lines on
//!   [`ConnOutbound`] and nudge the loop through a [`Notifier`] (dirty
//!   token list + eventfd waker). Only the loop thread touches sockets.
//! * **Backpressure, both ways.** A connection whose outbound queue
//!   crosses [`HIGH_WATER`] stops being read until it drains below
//!   [`LOW_WATER`] — a slow consumer throttles itself, not the server.
//!   Reads are framed against the same [`MAX_REQUEST_LINE_BYTES`] cap as
//!   before; an oversized or non-UTF-8 line queues one coded error line
//!   and switches the connection to *draining*: input is discarded
//!   (bounded in bytes and time) so the close does not RST the error line
//!   off the wire, then the socket closes.
//! * **Write interest is registered only while there are bytes to
//!   flush** — the level-triggered pitfall of waking on every poll for
//!   writable-and-idle sockets cannot arise. A connection with nothing to
//!   read or write is deregistered entirely; the notifier re-arms it.
//! * **Half-close keeps subscriptions alive.** A client may shut down its
//!   write half and keep reading; the connection stays open while any job
//!   watcher still holds its sink (observed via `Arc::strong_count`), so
//!   `subscribe`/`result` streams outlive request EOF, as before.

use crate::chaos::{chaos_hit, FaultSite};
use crate::obs::net_obs;
use crate::protocol::{ErrorCode, Request, Response};
use crate::server::{ConnCtx, ServerState, MAX_REQUEST_LINE_BYTES};
use crate::sink::LineSink;
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const LISTENER: Token = Token(0);
const WAKER: Token = Token(1);
/// Connection tokens are slab index + this offset.
const FIRST_CONN: usize = 2;

/// Outbound bytes queued on one connection beyond which its reads pause.
pub const HIGH_WATER: usize = 1024 * 1024;
/// Paused reads resume once the queue drains below this.
pub const LOW_WATER: usize = HIGH_WATER / 2;

/// Draining (post-fatal-error input discard) gives up after this much.
const DRAIN_BUDGET: usize = 64 * 1024 * 1024;
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Poll timeout: the loop's housekeeping cadence (drain deadlines,
/// close-eligibility sweeps) when no I/O is happening.
const SWEEP_EVERY: Duration = Duration::from_millis(50);

/// Wakes the loop for tokens whose outbound gained lines from another
/// thread.
pub(crate) struct Notifier {
    dirty: Mutex<Vec<usize>>,
    waker: Waker,
}

impl Notifier {
    fn notify(&self, token: usize) {
        self.dirty.lock().expect("dirty lock").push(token);
        let _ = self.waker.wake();
    }

    fn take_dirty(&self) -> Vec<usize> {
        std::mem::take(&mut *self.dirty.lock().expect("dirty lock"))
    }
}

struct OutboundQueue {
    lines: VecDeque<String>,
    queued_bytes: usize,
    closed: bool,
}

/// One connection's outbound line queue — the [`LineSink`] handed to
/// dispatch and job watchers. Enqueues never block; the loop thread flushes.
pub(crate) struct ConnOutbound {
    token: usize,
    q: Mutex<OutboundQueue>,
    notifier: Arc<Notifier>,
}

impl ConnOutbound {
    fn new(token: usize, notifier: Arc<Notifier>) -> Self {
        Self {
            token,
            q: Mutex::new(OutboundQueue {
                lines: VecDeque::new(),
                queued_bytes: 0,
                closed: false,
            }),
            notifier,
        }
    }

    fn pop_line(&self) -> Option<String> {
        let mut q = self.q.lock().expect("outbound lock");
        let line = q.lines.pop_front()?;
        q.queued_bytes -= line.len() + 1;
        Some(line)
    }

    fn mark_closed(&self) {
        let mut q = self.q.lock().expect("outbound lock");
        q.closed = true;
        q.lines.clear();
        q.queued_bytes = 0;
    }
}

impl LineSink for ConnOutbound {
    fn send_line(&self, line: String) -> bool {
        let was_empty = {
            let mut q = self.q.lock().expect("outbound lock");
            if q.closed {
                return false;
            }
            let was_empty = q.lines.is_empty();
            q.queued_bytes += line.len() + 1;
            q.lines.push_back(line);
            was_empty
        };
        // Wake the loop only on the empty→nonempty transition: while lines
        // are queued either a notify is already pending or the connection
        // holds write interest, so further wakes are redundant (and each
        // one costs an eventfd syscall — dispatch bursts queue thousands).
        if was_empty {
            self.notifier.notify(self.token);
        }
        true
    }

    fn queued_bytes(&self) -> usize {
        self.q.lock().expect("outbound lock").queued_bytes
    }
}

/// Post-fatal-error input discard state.
struct Draining {
    budget_left: usize,
    deadline: Instant,
    /// Input side exhausted (EOF, budget, or deadline) — close once the
    /// outbound (the error line) is flushed.
    input_done: bool,
}

struct Conn {
    stream: TcpStream,
    out: Arc<ConnOutbound>,
    ctx: ConnCtx,
    read_buf: Vec<u8>,
    /// Front line being flushed (newline included) and how far it got.
    front: Vec<u8>,
    front_pos: usize,
    /// Current epoll registration; `None` = deregistered (armed only by
    /// the notifier).
    registered: Option<Interest>,
    read_closed: bool,
    paused: bool,
    draining: Option<Draining>,
    dead: bool,
}

impl Conn {
    fn pending_write_bytes(&self) -> usize {
        (self.front.len() - self.front_pos) + self.out.queued_bytes()
    }

    fn wants_read(&self) -> bool {
        !self.read_closed && !self.dead && !self.paused
    }

    fn wants_write(&self) -> bool {
        !self.dead && self.pending_write_bytes() > 0
    }
}

/// Handle held by [`crate::server::Server`]: signals and joins the loop.
pub(crate) struct NetHandle {
    shutdown: Arc<AtomicBool>,
    notifier: Arc<Notifier>,
    handle: Option<JoinHandle<()>>,
}

impl NetHandle {
    /// Ask the loop to flush what it can and exit, then join it.
    pub(crate) fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = self.notifier.waker.wake();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Block until the loop exits (`run_forever`).
    pub(crate) fn join(mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Start the `dabs-net` loop thread over a bound listener.
pub(crate) fn spawn(listener: TcpListener, state: Arc<ServerState>) -> io::Result<NetHandle> {
    listener.set_nonblocking(true)?;
    let poll = Poll::new()?;
    poll.register(&listener, LISTENER, Interest::READABLE)?;
    let waker = Waker::new(&poll, WAKER)?;
    let notifier = Arc::new(Notifier {
        dirty: Mutex::new(Vec::new()),
        waker,
    });
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = {
        let notifier = Arc::clone(&notifier);
        let shutdown = Arc::clone(&shutdown);
        std::thread::Builder::new()
            .name("dabs-net".into())
            .spawn(move || run_loop(&poll, &listener, &state, &notifier, &shutdown))?
    };
    Ok(NetHandle {
        shutdown,
        notifier,
        handle: Some(handle),
    })
}

struct Slab {
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
}

impl Slab {
    fn get_mut(&mut self, idx: usize) -> Option<&mut Conn> {
        self.conns.get_mut(idx).and_then(Option::as_mut)
    }
}

fn run_loop(
    poll: &Poll,
    listener: &TcpListener,
    state: &Arc<ServerState>,
    notifier: &Arc<Notifier>,
    shutdown: &AtomicBool,
) {
    let mut events = Events::with_capacity(1024);
    let mut slab = Slab {
        conns: Vec::new(),
        free: Vec::new(),
    };
    let mut scratch = vec![0u8; 256 * 1024];
    let mut last_sweep = Instant::now();
    loop {
        let _ = poll.poll(&mut events, Some(SWEEP_EVERY));
        net_obs().polls.inc();
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        let mut touched: Vec<usize> = Vec::new();
        for ev in events.iter() {
            match ev.token() {
                LISTENER => accept_all(poll, listener, notifier, &mut slab, state),
                WAKER => notifier.waker.drain(),
                Token(t) => {
                    let idx = t - FIRST_CONN;
                    if let Some(conn) = slab.get_mut(idx) {
                        if ev.is_error() {
                            conn.dead = true;
                        }
                        // RDHUP is NOT handled by flagging read_closed here:
                        // the kernel may still hold buffered request bytes,
                        // and a half-close must not discard them. The read
                        // path observes EOF itself via `read() == 0`.
                        touched.push(idx);
                    }
                }
            }
        }
        touched.extend(notifier.take_dirty().iter().map(|t| t - FIRST_CONN));
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            service(poll, &mut slab, idx, state, &mut scratch);
        }
        // Housekeeping on the poll cadence: drain deadlines, and conns
        // whose last watcher vanished without any I/O event.
        if last_sweep.elapsed() >= SWEEP_EVERY {
            last_sweep = Instant::now();
            for idx in 0..slab.conns.len() {
                if slab.conns[idx].is_some() {
                    service(poll, &mut slab, idx, state, &mut scratch);
                }
            }
        }
    }
    // Shutdown: best-effort flush of queued terminal lines, bounded, then
    // close everything.
    let flush_deadline = Instant::now() + Duration::from_millis(500);
    while Instant::now() < flush_deadline {
        let pending: Vec<usize> = (0..slab.conns.len())
            .filter(|&i| {
                slab.conns[i]
                    .as_ref()
                    .is_some_and(|c| !c.dead && c.pending_write_bytes() > 0)
            })
            .collect();
        if pending.is_empty() {
            break;
        }
        for idx in pending {
            if let Some(conn) = slab.get_mut(idx) {
                flush_writes(conn, state);
            }
        }
        let _ = poll.poll(&mut events, Some(Duration::from_millis(10)));
        if let Some(d) = notifier.take_dirty().last() {
            let _ = d; // lines queued during shutdown flush are covered by the sweep above
        }
    }
    for idx in 0..slab.conns.len() {
        close_conn(poll, &mut slab, idx);
    }
}

fn accept_all(
    poll: &Poll,
    listener: &TcpListener,
    notifier: &Arc<Notifier>,
    slab: &mut Slab,
    state: &Arc<ServerState>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Chaos: a faulted accept behaves like the kernel handing us
                // a connection that died before we could register it — the
                // stream is dropped (RST to the client) and the loop keeps
                // serving everyone else.
                if chaos_hit(&state.chaos, FaultSite::Accept) {
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let idx = slab.free.pop().unwrap_or_else(|| {
                    slab.conns.push(None);
                    slab.conns.len() - 1
                });
                let token = idx + FIRST_CONN;
                if poll
                    .register(&stream, Token(token), Interest::READABLE)
                    .is_err()
                {
                    slab.free.push(idx);
                    continue;
                }
                slab.conns[idx] = Some(Conn {
                    stream,
                    out: Arc::new(ConnOutbound::new(token, Arc::clone(notifier))),
                    ctx: ConnCtx::default(),
                    read_buf: Vec::new(),
                    front: Vec::new(),
                    front_pos: 0,
                    registered: Some(Interest::READABLE),
                    read_closed: false,
                    paused: false,
                    draining: None,
                    dead: false,
                });
                net_obs().accepted.inc();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(_) => break,
        }
    }
}

/// One full service pass over a connection: read + parse + dispatch, flush
/// writes, apply backpressure, update epoll interest, close if eligible.
fn service(poll: &Poll, slab: &mut Slab, idx: usize, state: &Arc<ServerState>, scratch: &mut [u8]) {
    let Some(conn) = slab.get_mut(idx) else {
        return;
    };
    if !conn.dead {
        if conn.draining.is_some() {
            drain_input(conn, scratch);
        } else if !conn.read_closed && !conn.paused {
            read_input(conn, state, scratch);
        }
        flush_writes(conn, state);
        apply_backpressure(conn);
        update_interest(poll, conn, idx);
    }
    if close_eligible(conn) {
        close_conn(poll, slab, idx);
    }
}

fn read_input(conn: &mut Conn, state: &Arc<ServerState>, scratch: &mut [u8]) {
    loop {
        // Chaos: a faulted read is indistinguishable from EIO off the
        // socket — the connection dies the same way the `Err(_)` arm below
        // kills it, and the client is expected to reconnect/retry.
        if chaos_hit(&state.chaos, FaultSite::Read) {
            conn.dead = true;
            break;
        }
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                net_obs().bytes_in.add(n as u64);
                conn.read_buf.extend_from_slice(&scratch[..n]);
                process_lines(conn, state);
                if conn.draining.is_some() || conn.paused || conn.dead {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
        // Mid-read backpressure check: a pipelining client must not force
        // unbounded dispatch output before we ever look at the queue.
        if conn.out.queued_bytes() > HIGH_WATER {
            break;
        }
    }
}

/// Split complete lines out of the read buffer and dispatch them. Enters
/// draining mode on a protocol-fatal line (too long, not UTF-8).
fn process_lines(conn: &mut Conn, state: &Arc<ServerState>) {
    let mut start = 0usize;
    while let Some(nl) = conn.read_buf[start..].iter().position(|&b| b == b'\n') {
        let end = start + nl;
        let fatal = handle_line(conn, state, start, end);
        start = end + 1;
        if fatal {
            conn.read_buf.clear();
            return;
        }
    }
    conn.read_buf.drain(..start);
    if conn.read_buf.len() > MAX_REQUEST_LINE_BYTES {
        // The line boundary is lost; nothing more can be parsed.
        enter_draining(
            conn,
            ErrorCode::LineTooLong,
            format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
        );
        conn.read_buf.clear();
    }
    // A burst of large lines can leave a huge allocation behind; give it
    // back once the buffer is quiet again.
    if conn.read_buf.capacity() > 2 * scratch_len() && conn.read_buf.len() < scratch_len() {
        conn.read_buf.shrink_to(scratch_len());
    }
}

/// Matches the loop's scratch read size: the read buffer's "normal"
/// footprint after shrinking.
const fn scratch_len() -> usize {
    256 * 1024
}

/// Parse and dispatch `read_buf[start..end]` as one line. Returns true if
/// the line was protocol-fatal (connection now draining).
fn handle_line(conn: &mut Conn, state: &Arc<ServerState>, start: usize, end: usize) -> bool {
    let Ok(text) = std::str::from_utf8(&conn.read_buf[start..end]) else {
        enter_draining(
            conn,
            ErrorCode::NotUtf8,
            "request line is not UTF-8".to_string(),
        );
        return true;
    };
    let line = text.trim();
    if line.is_empty() {
        return false;
    }
    net_obs().lines_in.inc();
    match Request::parse_line(line) {
        Ok(request) => {
            let sink: Arc<dyn LineSink> = Arc::clone(&conn.out) as Arc<dyn LineSink>;
            state.dispatch(request, &sink, &mut conn.ctx);
        }
        Err(e) => {
            let _ = conn.out.send_line(
                Response::Error {
                    job: None,
                    code: e.code,
                    reason: e.reason,
                }
                .encode(),
            );
        }
    }
    false
}

fn enter_draining(conn: &mut Conn, code: ErrorCode, reason: String) {
    let _ = conn.out.send_line(
        Response::Error {
            job: None,
            code,
            reason,
        }
        .encode(),
    );
    conn.draining = Some(Draining {
        budget_left: DRAIN_BUDGET,
        deadline: Instant::now() + DRAIN_DEADLINE,
        input_done: false,
    });
}

/// Discard inbound bytes after a fatal error so the close does not RST the
/// queued error line off the wire. Bounded in bytes and time.
fn drain_input(conn: &mut Conn, scratch: &mut [u8]) {
    let Some(d) = &mut conn.draining else { return };
    if d.input_done {
        return;
    }
    if Instant::now() >= d.deadline {
        d.input_done = true;
        return;
    }
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                d.input_done = true;
                break;
            }
            Ok(n) => {
                d.budget_left = d.budget_left.saturating_sub(n);
                if d.budget_left == 0 {
                    d.input_done = true;
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

fn flush_writes(conn: &mut Conn, state: &Arc<ServerState>) {
    loop {
        // Chaos: a faulted write is an EIO/EPIPE mid-flush; the line being
        // written is lost with the connection, exactly like the real error
        // arm below.
        if chaos_hit(&state.chaos, FaultSite::Write) {
            conn.dead = true;
            break;
        }
        if conn.front_pos == conn.front.len() {
            match conn.out.pop_line() {
                Some(line) => {
                    conn.front.clear();
                    conn.front.extend_from_slice(line.as_bytes());
                    conn.front.push(b'\n');
                    conn.front_pos = 0;
                    net_obs().lines_out.inc();
                }
                None => break,
            }
        }
        match conn.stream.write(&conn.front[conn.front_pos..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                conn.front_pos += n;
                net_obs().bytes_out.add(n as u64);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if conn.front_pos == conn.front.len() && conn.front.capacity() > scratch_len() {
        conn.front = Vec::new();
        conn.front_pos = 0;
    }
}

fn apply_backpressure(conn: &mut Conn) {
    let queued = conn.pending_write_bytes();
    if !conn.paused && queued > HIGH_WATER {
        conn.paused = true;
        net_obs().read_pauses.inc();
    } else if conn.paused && queued < LOW_WATER {
        conn.paused = false;
    }
}

fn update_interest(poll: &Poll, conn: &mut Conn, idx: usize) {
    let desired = match (
        conn.wants_read() || conn.draining.is_some(),
        conn.wants_write(),
    ) {
        (true, true) => Some(Interest::READABLE.add(Interest::WRITABLE)),
        (true, false) => Some(Interest::READABLE),
        (false, true) => Some(Interest::WRITABLE),
        (false, false) => None,
    };
    // A draining conn whose input side finished stops reading.
    let desired = if conn.draining.as_ref().is_some_and(|d| d.input_done) {
        if conn.wants_write() {
            Some(Interest::WRITABLE)
        } else {
            None
        }
    } else {
        desired
    };
    if desired == conn.registered {
        return;
    }
    let token = Token(idx + FIRST_CONN);
    let ok = match (conn.registered, desired) {
        (None, Some(i)) => poll.register(&conn.stream, token, i).is_ok(),
        (Some(_), Some(i)) => poll.reregister(&conn.stream, token, i).is_ok(),
        (Some(_), None) => poll.deregister(&conn.stream).is_ok(),
        (None, None) => true,
    };
    if ok {
        conn.registered = desired;
    } else {
        conn.dead = true;
    }
}

fn close_eligible(conn: &Conn) -> bool {
    if conn.dead {
        return true;
    }
    let flushed = conn.front_pos == conn.front.len() && conn.out.queued_bytes() == 0;
    if let Some(d) = &conn.draining {
        // Fatal error path: once the error line is out (or undeliverable)
        // and input is consumed, close — watchers do not keep it alive.
        return d.input_done && flushed;
    }
    // Normal path: peer finished sending, everything flushed, and no job
    // watcher still holds the sink (the loop's own Arc is the last one) —
    // nothing can ever arrive for this connection again.
    conn.read_closed && flushed && Arc::strong_count(&conn.out) == 1
}

fn close_conn(poll: &Poll, slab: &mut Slab, idx: usize) {
    if let Some(conn) = slab.conns[idx].take() {
        if conn.registered.is_some() {
            let _ = poll.deregister(&conn.stream);
        }
        conn.out.mark_closed();
        slab.free.push(idx);
        net_obs().closed.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use crate::spec::{JobSpec, ProblemSpec};
    use std::io::{BufRead, BufReader};

    fn server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_capacity: 16,
                ..ServerConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn many_idle_connections_on_one_thread_still_serve() {
        let srv = server();
        let mut idle: Vec<TcpStream> = (0..128)
            .map(|_| TcpStream::connect(srv.local_addr()).unwrap())
            .collect();
        // A fresh connection still gets service behind all the idle ones.
        let mut active = TcpStream::connect(srv.local_addr()).unwrap();
        active.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(active.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("pong"), "{line}");
        // And so does one of the idle ones.
        let one = &mut idle[63];
        one.write_all(b"{\"op\":\"stats\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(one.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("stats"), "{line}");
        srv.shutdown();
    }

    #[test]
    fn pipelined_requests_on_one_connection_all_answer() {
        let srv = server();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        let mut batch = String::new();
        for _ in 0..50 {
            batch.push_str("{\"op\":\"ping\"}\n");
        }
        conn.write_all(batch.as_bytes()).unwrap();
        let reader = BufReader::new(conn.try_clone().unwrap());
        let mut got = 0;
        for line in reader.lines().take(50) {
            assert!(line.unwrap().contains("pong"));
            got += 1;
        }
        assert_eq!(got, 50);
        srv.shutdown();
    }

    #[test]
    fn split_writes_reassemble_into_one_request() {
        let srv = server();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        // One request delivered a few bytes at a time across many packets.
        let msg = b"{\"op\":\"ping\"}\n";
        for chunk in msg.chunks(3) {
            conn.write_all(chunk).unwrap();
            conn.flush().unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        let mut line = String::new();
        BufReader::new(conn.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert!(line.contains("pong"), "{line}");
        srv.shutdown();
    }

    #[test]
    fn subscription_outlives_request_eof() {
        let srv = server();
        let id = srv
            .state()
            .submit(JobSpec {
                problem: ProblemSpec::random(24, 9),
                max_batches: Some(400),
                ..JobSpec::default()
            })
            .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        conn.write_all(format!("{{\"op\":\"result\",\"job\":{id}}}\n").as_bytes())
            .unwrap();
        // Half-close: no more requests, but the done line must still come.
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut saw_done = false;
        for line in BufReader::new(conn).lines() {
            let Ok(line) = line else { break };
            saw_done |= line.contains("\"done\"");
        }
        assert!(saw_done, "done line must arrive after request EOF");
        srv.shutdown();
    }

    #[test]
    fn malformed_json_answers_with_code_and_keeps_connection() {
        let srv = server();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        conn.write_all(b"this is not json\n{\"op\":\"ping\"}\n")
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("bad_json"), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.contains("pong"),
            "malformed line must not kill the conn: {line}"
        );
        srv.shutdown();
    }

    #[test]
    fn non_utf8_line_gets_coded_error_then_close() {
        let srv = server();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        conn.write_all(b"\xff\xfe garbage \xff\n").unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = BufReader::new(conn).lines();
        let reply = lines.next().expect("error line").unwrap();
        assert!(reply.contains("not_utf8"), "{reply}");
        assert!(
            lines.next().is_none(),
            "connection must close after fatal error"
        );
        srv.shutdown();
    }

    #[test]
    fn slow_consumer_is_paused_not_ballooned() {
        let srv = server();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        // Never read responses; hammer stats requests (each response is a
        // few hundred bytes). The server must stop reading once the
        // outbound queue crosses the high-water mark instead of buffering
        // without bound — observable as the write() here eventually
        // blocking (kernel socket buffer full because the server stopped
        // consuming).
        conn.set_nonblocking(true).unwrap();
        let req = b"{\"op\":\"stats\"}\n";
        // Pump requests until the pause counter moves (the counter is
        // global across tests, so watch for it to advance, not equal 1).
        let start_pauses = net_obs().read_pauses.get();
        let mut sent = 0usize;
        let deadline = Instant::now() + Duration::from_secs(20);
        while Instant::now() < deadline && net_obs().read_pauses.get() == start_pauses {
            match conn.write(req) {
                Ok(n) => sent += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => panic!("client write failed: {e}"),
            }
        }
        assert!(
            net_obs().read_pauses.get() > start_pauses,
            "server never paused reads (sent {sent} bytes without consuming them)"
        );
        srv.shutdown();
    }
}
