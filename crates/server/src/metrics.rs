//! Load-driving, latency bookkeeping, and pool-gauge summaries shared by
//! `dabs loadgen` and the throughput/server-load benches.

use crate::client::Client;
use crate::protocol::Response;
use crate::spec::JobSpec;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Drive a server with `clients` concurrent connections submitting `jobs`
/// jobs total (split round-robin), each submit→result synchronous.
/// `spec_for(client, j)` produces the j-th job of a client. Returns the
/// per-job submit→result latencies; errors if any job ends in a phase
/// other than `done`.
pub fn drive_fleet<F>(
    addr: &str,
    clients: usize,
    jobs: usize,
    spec_for: F,
) -> Result<Vec<Duration>, String>
where
    F: Fn(usize, usize) -> JobSpec + Send + Sync + 'static,
{
    let spec_for = Arc::new(spec_for);
    let handles: Vec<_> = (0..clients.max(1))
        .map(|c| {
            let jobs_c = jobs / clients + usize::from(c < jobs % clients);
            let addr = addr.to_string();
            let spec_for = Arc::clone(&spec_for);
            std::thread::spawn(move || -> Result<Vec<Duration>, String> {
                let mut client = Client::connect(addr.as_str()).map_err(|e| e.to_string())?;
                let mut latencies = Vec::with_capacity(jobs_c);
                for j in 0..jobs_c {
                    let spec = spec_for(c, j);
                    let submitted = Instant::now();
                    let id = client.submit(&spec)?;
                    let outcome = client.wait_result(id)?;
                    if outcome.phase != "done" {
                        return Err(format!("job {id} ended {}", outcome.phase));
                    }
                    latencies.push(submitted.elapsed());
                }
                Ok(latencies)
            })
        })
        .collect();
    // Join *every* handle before reporting: returning on the first error
    // would leak the remaining client threads, which keep driving the
    // server (and racing the caller's teardown) behind its back.
    let mut all = Vec::with_capacity(jobs);
    let mut first_err: Option<String> = None;
    for h in handles {
        match h.join().map_err(|_| "client thread panicked".to_string()) {
            Ok(Ok(latencies)) => all.extend(latencies),
            Ok(Err(e)) | Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(all),
    }
}

/// Summary over a set of request latencies and the wall-clock window that
/// produced them.
#[derive(Debug, Clone)]
pub struct LatencySummary {
    pub jobs: usize,
    pub wall: Duration,
    pub min: Duration,
    pub p50: Duration,
    pub p99: Duration,
    pub max: Duration,
    pub mean: Duration,
}

impl LatencySummary {
    /// Build from raw samples (unsorted) and the overall wall-clock time.
    pub fn from_samples(mut samples: Vec<Duration>, wall: Duration) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        samples.sort();
        let total: Duration = samples.iter().sum();
        let jobs = samples.len();
        // Mean via f64 seconds: integer Duration division truncates toward
        // zero (5ns over 3 jobs would report 1ns), while from_secs_f64
        // rounds to the nearest nanosecond.
        let mean = Duration::from_secs_f64(total.as_secs_f64() / jobs as f64);
        Some(Self {
            jobs,
            wall,
            min: samples[0],
            p50: percentile(&samples, 50.0),
            p99: percentile(&samples, 99.0),
            max: samples[jobs - 1],
            mean,
        })
    }

    /// Completed jobs per second of wall-clock time.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.jobs as f64 / self.wall.as_secs_f64()
    }

    /// One-line human report.
    pub fn report(&self) -> String {
        format!(
            "{} jobs in {:.3}s → {:.1} jobs/s · latency p50 {:.2}ms p99 {:.2}ms (min {:.2} mean {:.2} max {:.2})",
            self.jobs,
            self.wall.as_secs_f64(),
            self.jobs_per_sec(),
            self.p50.as_secs_f64() * 1e3,
            self.p99.as_secs_f64() * 1e3,
            self.min.as_secs_f64() * 1e3,
            self.mean.as_secs_f64() * 1e3,
            self.max.as_secs_f64() * 1e3,
        )
    }
}

/// Point-in-time pool load, extracted from a `stats` response. The gauge
/// fields mirror [`crate::PoolGauges`] but arrive over the wire, so a load
/// generator can watch a remote server's pool without sharing its process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLoad {
    pub workers: u64,
    pub busy: u64,
    pub queued_units: u64,
    pub steals: u64,
    pub splits: u64,
}

impl PoolLoad {
    /// Extract from a [`Response::Stats`]; `None` for any other response.
    pub fn from_stats(response: &Response) -> Option<Self> {
        match response {
            Response::Stats {
                workers,
                busy_workers,
                queued_units,
                steals,
                splits,
                ..
            } => Some(Self {
                workers: *workers,
                busy: *busy_workers,
                queued_units: *queued_units,
                steals: *steals,
                splits: *splits,
            }),
            _ => None,
        }
    }

    /// Fraction of workers busy, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.workers == 0 {
            return 0.0;
        }
        self.busy as f64 / self.workers as f64
    }

    /// One-line human report.
    pub fn report(&self) -> String {
        format!(
            "pool {}/{} busy ({:.0}%) · {} units queued · {} steals · {} splits",
            self.busy,
            self.workers,
            self.occupancy() * 100.0,
            self.queued_units,
            self.steals,
            self.splits,
        )
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub fn percentile(sorted: &[Duration], p: f64) -> Duration {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let s: Vec<Duration> = (1..=100).map(ms).collect();
        assert_eq!(percentile(&s, 50.0), ms(50));
        assert_eq!(percentile(&s, 99.0), ms(99));
        assert_eq!(percentile(&s, 100.0), ms(100));
        assert_eq!(percentile(&[ms(7)], 50.0), ms(7));
    }

    #[test]
    fn summary_reports_sane_numbers() {
        let samples = vec![ms(10), ms(20), ms(30), ms(40)];
        let s = LatencySummary::from_samples(samples, Duration::from_secs(2)).unwrap();
        assert_eq!(s.jobs, 4);
        assert_eq!(s.min, ms(10));
        assert_eq!(s.max, ms(40));
        assert_eq!(s.p50, ms(20));
        assert_eq!(s.mean, ms(25));
        assert!((s.jobs_per_sec() - 2.0).abs() < 1e-9);
        let line = s.report();
        assert!(line.contains("jobs/s"), "{line}");
        assert!(LatencySummary::from_samples(vec![], ms(1)).is_none());
    }

    #[test]
    fn mean_rounds_instead_of_truncating() {
        // 5ns over 3 jobs is 1.67ns: integer Duration division reported
        // 1ns; the f64 path rounds to the nearest nanosecond.
        let ns = Duration::from_nanos;
        let samples = vec![ns(1), ns(2), ns(2)];
        let s = LatencySummary::from_samples(samples, ns(10)).unwrap();
        assert_eq!(s.mean, ns(2));
    }

    #[test]
    fn pool_load_reads_stats_and_only_stats() {
        let stats = Response::Stats {
            queued: 1,
            running: 2,
            finished: 3,
            workers: 4,
            queue_capacity: 64,
            busy_workers: 3,
            queued_units: 7,
            steals: 11,
            splits: 2,
        };
        let load = PoolLoad::from_stats(&stats).unwrap();
        assert_eq!(load.busy, 3);
        assert_eq!(load.queued_units, 7);
        assert!((load.occupancy() - 0.75).abs() < 1e-12);
        let line = load.report();
        assert!(line.contains("3/4 busy"), "{line}");
        assert!(line.contains("11 steals"), "{line}");
        assert!(PoolLoad::from_stats(&Response::Pong).is_none());
        let idle = PoolLoad {
            workers: 0,
            busy: 0,
            queued_units: 0,
            steals: 0,
            splits: 0,
        };
        assert_eq!(idle.occupancy(), 0.0);
    }
}
