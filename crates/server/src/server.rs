//! The TCP front end: accept loop, per-connection reader/writer threads,
//! request dispatch.
//!
//! Connection model: each accepted socket gets a *reader* thread (parses
//! request lines, dispatches against the shared [`ServerState`]) and a
//! *writer* thread (drains an mpsc channel of encoded response lines onto
//! the socket). Everything that wants to talk to a connection — the request
//! dispatcher, a job's incumbent fan-out, a terminal notification — just
//! clones the channel sender, so slow solvers never block on slow sockets
//! and a dead connection is discovered by the writer and pruned lazily.

use crate::job::{JobRegistry, WatchKind};
use crate::pool::ElasticPool;
use crate::protocol::{JobId, Request, Response};
use crate::spec::JobSpec;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Runtime knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Solver worker threads (`W`): the concurrent-solve ceiling.
    pub workers: usize,
    /// Admission bound, in *units* (the stealable slices jobs decompose
    /// into; a plain job is at least one unit).
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
        }
    }
}

/// State shared by every connection and worker.
#[derive(Debug)]
pub struct ServerState {
    pub registry: Arc<JobRegistry>,
    pub pool: Arc<ElasticPool>,
    pub config: ServerConfig,
    shutting_down: AtomicBool,
}

impl ServerState {
    /// Admission: validate the spec, register, and hand the record to the
    /// pool (which decomposes it into units). On refusal the record is
    /// evicted so rejected jobs leave no trace.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, String> {
        if self.shutting_down.load(Ordering::Relaxed) {
            return Err("server is shutting down".into());
        }
        spec.validate()?;
        let record = self.registry.register(spec);
        match self.pool.submit(&record) {
            Ok(()) => Ok(record.id),
            Err(e) => {
                self.registry.evict(record.id);
                Err(e.to_string())
            }
        }
    }

    /// Full observability snapshot: solver hot-loop counters, pool
    /// scheduler counters and latency histograms, plus job-phase and
    /// occupancy gauges — one metric set, served by the `metrics` verb.
    pub fn metrics(&self) -> dabs_core::MetricSet {
        use dabs_core::{Direction, Metric};
        let mut set = dabs_core::MetricSet::new();
        dabs_core::solver_obs().metrics_into(&mut set);
        crate::obs::pool_obs().metrics_into(&mut set);
        let (queued, running, finished) = self.registry.phase_counts();
        let gauges = self.pool.gauges();
        let up = Direction::HigherIsBetter;
        set.push(Metric::new("jobs.queued", queued as f64, "count", up));
        set.push(Metric::new("jobs.running", running as f64, "count", up));
        set.push(Metric::new("jobs.finished", finished as f64, "count", up));
        set.push(Metric::new(
            "pool.workers",
            gauges.workers as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "pool.busy_workers",
            gauges.busy as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "pool.queued_units",
            gauges.queued_units as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "trace.dropped",
            dabs_obs::global().dropped() as f64,
            "count",
            Direction::LowerIsBetter,
        ));
        set
    }

    fn stats(&self) -> Response {
        let (queued, running, finished) = self.registry.phase_counts();
        let gauges = self.pool.gauges();
        Response::Stats {
            queued,
            running,
            finished,
            workers: gauges.workers,
            queue_capacity: self.pool.capacity() as u64,
            busy_workers: gauges.busy,
            queued_units: gauges.queued_units,
            steals: gauges.steals,
            splits: gauges.splits,
        }
    }

    /// Handle one request, pushing any responses onto the connection's
    /// writer channel. `sink` may also be registered for future lines
    /// (result waits, subscriptions).
    pub fn dispatch(&self, request: Request, sink: &Sender<String>) {
        let send = |r: Response| {
            let _ = sink.send(r.encode());
        };
        match request {
            Request::Submit(spec) => match self.submit(*spec) {
                Ok(job) => send(Response::Submitted { job }),
                Err(reason) => send(Response::Rejected { reason }),
            },
            Request::Status(job) => match self.registry.get(job) {
                Some(record) => send(Response::Status {
                    job,
                    phase: record.phase().name().to_string(),
                    best: record.best_energy(),
                    age_ms: record.age().as_millis() as u64,
                }),
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Cancel(job) => match self.registry.get(job) {
                Some(record) => {
                    let phase = record.request_cancel();
                    send(Response::CancelAck {
                        job,
                        phase: phase.name().to_string(),
                    });
                }
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Result(job) => match self.registry.get(job) {
                // Responds now if terminal, otherwise when the job ends.
                Some(record) => record.add_watcher(sink.clone(), WatchKind::ResultOnly),
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Subscribe(job) => match self.registry.get(job) {
                Some(record) => record.add_watcher(sink.clone(), WatchKind::Subscribe),
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Stats => send(self.stats()),
            Request::Metrics => send(Response::Metrics {
                metrics: Box::new(self.metrics()),
            }),
            Request::Timeline(job) => match self.registry.get(job) {
                Some(record) => {
                    let (events, dropped) = record.timeline_snapshot();
                    send(Response::Timeline {
                        job,
                        events,
                        dropped,
                    });
                }
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Ping => send(Response::Pong),
        }
    }
}

/// A running server: accept thread + elastic pool over shared state.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving. `addr` may use port 0 for an ephemeral port
    /// (see [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(JobRegistry::new());
        let pool = Arc::new(ElasticPool::spawn(config.workers, config.queue_capacity));
        let state = Arc::new(ServerState {
            registry,
            pool,
            config,
            shutting_down: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::Builder::new()
            .name("dabs-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_state.shutting_down.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let state = Arc::clone(&accept_state);
                            let _ = std::thread::Builder::new()
                                .name("dabs-conn".into())
                                .spawn(move || handle_connection(stream, &state));
                        }
                        Err(_) => continue,
                    }
                }
            })?;
        Ok(Server {
            state,
            addr,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process embedding (benchmarks, tests).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Block forever serving connections (`dabs serve`).
    pub fn run_forever(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Graceful stop: refuse new work, trip every live job's stop flag
    /// (running units observe it at their next batch), stop dispatch so the
    /// workers drain still-queued units in revoked mode, and join every
    /// runtime thread. Partially-run jobs fold to `cancelled` with their
    /// best-so-far incumbent.
    pub fn shutdown(mut self) {
        self.state.shutting_down.store(true, Ordering::Relaxed);
        self.state.registry.stop_all();
        self.state.pool.close();
        // Wake the blocking accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        self.state.pool.join();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

/// Upper bound on one request line. Large enough for an `inline` problem
/// spec of any size this repo handles, small enough that a client streaming
/// bytes without a newline cannot grow a line buffer unboundedly and OOM
/// the server past the bounded-admission-queue guarantee.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Outcome of one bounded line read.
#[derive(Debug, PartialEq, Eq)]
enum LineRead {
    /// `buf` holds the next line (newline included, except at EOF).
    Line,
    /// Clean end of stream.
    Eof,
    /// The cap was hit mid-line. The line boundary is lost, so the caller
    /// must report the oversize and drop the connection.
    TooLong,
    /// The peer errored; nothing useful can be said to it.
    Failed,
}

/// Pull the next `\n`-terminated line into `buf`, refusing to buffer more
/// than [`MAX_REQUEST_LINE_BYTES`] of it.
fn read_bounded_line(reader: &mut impl BufRead, buf: &mut Vec<u8>) -> LineRead {
    buf.clear();
    match reader
        .take(MAX_REQUEST_LINE_BYTES as u64 + 1)
        .read_until(b'\n', buf)
    {
        Err(_) => LineRead::Failed,
        Ok(0) => LineRead::Eof,
        Ok(_) if buf.len() > MAX_REQUEST_LINE_BYTES && !buf.ends_with(b"\n") => LineRead::TooLong,
        Ok(_) => LineRead::Line,
    }
}

/// Tear-down for a protocol-fatal error: queue the writer's close sentinel
/// (after the already-queued error line) so the writer exits even while
/// live jobs' watcher lists still hold sender clones, then wait for its
/// exit ack. A writer parked inside `write_all` on a peer that stopped
/// reading never reaches the sentinel — and a write timeout set now would
/// not interrupt its already-entered syscall — so on ack timeout the socket
/// is shut down, which does force the blocked write to return (the error
/// line was undeliverable to such a peer anyway). Either way the reader's
/// subsequent join is bounded.
fn hang_up(tx: &Sender<String>, writer_done: &Receiver<()>, stream: &TcpStream) {
    let _ = tx.send(String::new());
    if writer_done.recv_timeout(Duration::from_secs(5)).is_err() {
        let _ = stream.shutdown(Shutdown::Both);
    }
}

/// Best-effort discard of whatever an oversized-line peer still has in
/// flight before the socket closes: closing with unread bytes in the
/// receive queue makes the kernel send RST, which would also destroy the
/// queued `error` line on the peer's side. Bounded in both bytes (a peer
/// streaming forever costs a thread, never memory) and time (a peer that
/// goes quiet without closing cannot pin the thread).
fn drain_flood(stream: &mut TcpStream) {
    const DRAIN_BUDGET: usize = 64 * 1024 * 1024;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut scratch = [0u8; 64 * 1024];
    let mut drained = 0usize;
    while drained < DRAIN_BUDGET {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break, // EOF, timeout, or peer error
            Ok(n) => drained += n,
        }
    }
}

/// Reader side of one connection; spawns the paired writer thread.
fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let (done_tx, done_rx) = channel::<()>();
    let writer = std::thread::Builder::new()
        .name("dabs-conn-writer".into())
        .spawn(move || {
            let mut out = write_half;
            while let Ok(line) = rx.recv() {
                // Empty line = close sentinel from the reader (real protocol
                // lines are always JSON objects). Without it the writer
                // would outlive a protocol-fatal error for as long as any
                // live job's watcher list holds a sender clone, keeping the
                // socket half-open for minutes.
                if line.is_empty() {
                    break;
                }
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    break; // peer gone; senders see the drop via send errors
                }
            }
            let _ = done_tx.send(()); // exit ack for hang_up
        });

    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        match read_bounded_line(&mut reader, &mut buf) {
            LineRead::Line => {}
            LineRead::Eof | LineRead::Failed => break,
            LineRead::TooLong => {
                let _ = tx.send(
                    Response::Error {
                        job: None,
                        reason: format!("request line exceeds {MAX_REQUEST_LINE_BYTES} bytes"),
                    }
                    .encode(),
                );
                drain_flood(reader.get_mut());
                hang_up(&tx, &done_rx, reader.get_mut());
                break;
            }
        }
        let Ok(line) = std::str::from_utf8(&buf) else {
            let _ = tx.send(
                Response::Error {
                    job: None,
                    reason: "request line is not UTF-8".into(),
                }
                .encode(),
            );
            // Pipelined bytes after the bad line would RST the close and
            // destroy the error line in flight, same as the flood case.
            drain_flood(reader.get_mut());
            hang_up(&tx, &done_rx, reader.get_mut());
            break;
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Request::parse_line(line) {
            Ok(request) => state.dispatch(request, &tx),
            Err(reason) => {
                let _ = tx.send(Response::Error { job: None, reason }.encode());
            }
        }
    }
    // Reader done (peer closed): dropping `tx` ends the writer once every
    // watcher-held clone is gone too.
    drop(tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSpec;
    use std::time::Duration;

    fn server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_capacity: 8,
            },
        )
        .expect("bind ephemeral")
    }

    fn job(seed: u64, batches: u64) -> JobSpec {
        JobSpec {
            problem: ProblemSpec::random(18, seed),
            seed,
            max_batches: Some(batches),
            ..JobSpec::default()
        }
    }

    #[test]
    fn in_process_submit_executes_to_done() {
        let srv = server();
        let id = srv.state().submit(job(1, 100)).unwrap();
        let record = srv.state().registry.get(id).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(30)));
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase.name(), "done");
        assert!(result.unwrap().batches >= 100);
        srv.shutdown();
    }

    #[test]
    fn submit_validates_and_rejects() {
        let srv = server();
        let unbounded = JobSpec {
            max_batches: None,
            ..job(1, 0)
        };
        assert!(srv.state().submit(unbounded).is_err());
        let past_deadline = JobSpec {
            deadline_unix_ms: Some(1),
            ..job(1, 10)
        };
        let err = srv.state().submit(past_deadline).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        srv.shutdown();
    }

    #[test]
    fn rejected_jobs_leave_no_registry_trace() {
        let srv = server();
        let err = srv
            .state()
            .submit(JobSpec {
                deadline_unix_ms: Some(1),
                ..job(2, 10)
            })
            .unwrap_err();
        assert!(err.contains("deadline"));
        let (queued, running, terminal) = srv.state().registry.phase_counts();
        assert_eq!((queued, running, terminal), (0, 0, 0));
        srv.shutdown();
    }

    #[test]
    fn bounded_line_reader_accepts_lines_and_refuses_floods() {
        use std::io::Cursor;
        let mut buf = Vec::new();
        // Normal framing: two lines then EOF.
        let mut r = Cursor::new(b"abc\ndef".to_vec());
        assert_eq!(read_bounded_line(&mut r, &mut buf), LineRead::Line);
        assert_eq!(buf, b"abc\n");
        assert_eq!(read_bounded_line(&mut r, &mut buf), LineRead::Line);
        assert_eq!(buf, b"def");
        assert_eq!(read_bounded_line(&mut r, &mut buf), LineRead::Eof);
        // A line of exactly the cap (plus its newline) still passes...
        let mut max = vec![b'x'; MAX_REQUEST_LINE_BYTES];
        max.push(b'\n');
        let mut r = Cursor::new(max);
        assert_eq!(read_bounded_line(&mut r, &mut buf), LineRead::Line);
        assert_eq!(buf.len(), MAX_REQUEST_LINE_BYTES + 1);
        // ...but one unterminated byte more is refused instead of buffered.
        let mut r = Cursor::new(vec![b'x'; MAX_REQUEST_LINE_BYTES + 1]);
        assert_eq!(read_bounded_line(&mut r, &mut buf), LineRead::TooLong);
    }

    #[test]
    fn oversized_request_line_drops_the_connection_with_an_error() {
        use std::io::{BufRead, BufReader, Write};
        let srv = server();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        // Flood well past the cap with no newline. The server must consume
        // (and discard) the excess before closing — unread bytes at close
        // would RST the socket and destroy the error line in flight.
        for _ in 0..3 {
            conn.write_all(&vec![b'x'; MAX_REQUEST_LINE_BYTES]).unwrap();
        }
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = BufReader::new(conn).lines();
        let reply = lines.next().expect("error line before close").unwrap();
        assert!(reply.contains("exceeds"), "{reply}");
        assert!(lines.next().is_none(), "connection must be closed");
        srv.shutdown();
    }

    #[test]
    fn oversized_line_closes_promptly_despite_live_subscription() {
        use std::io::{BufRead, BufReader, Write};
        let srv = server();
        // A job that stays alive well past the assertion window, so its
        // watcher list keeps holding this connection's sender clone.
        let id = srv
            .state()
            .submit(JobSpec {
                time_ms: Some(10_000),
                max_batches: None,
                ..job(4, 0)
            })
            .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        conn.write_all(format!("{{\"op\":\"subscribe\",\"job\":{id}}}\n").as_bytes())
            .unwrap();
        conn.write_all(&vec![b'y'; MAX_REQUEST_LINE_BYTES + 1])
            .unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let t0 = std::time::Instant::now();
        let mut saw_error = false;
        for line in BufReader::new(conn).lines() {
            let Ok(line) = line else { break };
            // Incumbent lines may legitimately precede the error.
            saw_error |= line.contains("exceeds");
        }
        assert!(saw_error, "error line never arrived");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "socket stayed open behind a live subscription: {:?}",
            t0.elapsed()
        );
        srv.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_even_with_queued_work() {
        let srv = server();
        // More work than the two workers finish instantly, then shut down.
        for seed in 0..6 {
            let _ = srv.state().submit(job(seed, 50));
        }
        let t0 = std::time::Instant::now();
        srv.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "shutdown hung: {:?}",
            t0.elapsed()
        );
    }
}
