//! The TCP front end: accept loop, per-connection reader/writer threads,
//! request dispatch.
//!
//! Connection model: each accepted socket gets a *reader* thread (parses
//! request lines, dispatches against the shared [`ServerState`]) and a
//! *writer* thread (drains an mpsc channel of encoded response lines onto
//! the socket). Everything that wants to talk to a connection — the request
//! dispatcher, a job's incumbent fan-out, a terminal notification — just
//! clones the channel sender, so slow solvers never block on slow sockets
//! and a dead connection is discovered by the writer and pruned lazily.

use crate::job::{JobRegistry, WatchKind};
use crate::protocol::{JobId, Request, Response};
use crate::queue::JobQueue;
use crate::spec::JobSpec;
use crate::worker::WorkerPool;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Runtime knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Solver worker threads (`W`): the concurrent-solve ceiling.
    pub workers: usize,
    /// Admission queue bound.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
        }
    }
}

/// State shared by every connection and worker.
#[derive(Debug)]
pub struct ServerState {
    pub registry: Arc<JobRegistry>,
    pub queue: Arc<JobQueue>,
    pub config: ServerConfig,
    shutting_down: AtomicBool,
}

impl ServerState {
    /// Admission: validate the spec, register, and enqueue. On refusal the
    /// record is evicted so rejected jobs leave no trace.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, String> {
        if self.shutting_down.load(Ordering::Relaxed) {
            return Err("server is shutting down".into());
        }
        spec.validate()?;
        let priority = spec.priority;
        let deadline = spec.deadline_unix_ms;
        let record = self.registry.register(spec);
        match self.queue.push(record.id, priority, deadline) {
            Ok(()) => Ok(record.id),
            Err(e) => {
                self.registry.evict(record.id);
                Err(e.to_string())
            }
        }
    }

    fn stats(&self) -> Response {
        let (queued, running, finished) = self.registry.phase_counts();
        Response::Stats {
            queued,
            running,
            finished,
            workers: self.config.workers as u64,
            queue_capacity: self.queue.capacity() as u64,
        }
    }

    /// Handle one request, pushing any responses onto the connection's
    /// writer channel. `sink` may also be registered for future lines
    /// (result waits, subscriptions).
    pub fn dispatch(&self, request: Request, sink: &Sender<String>) {
        let send = |r: Response| {
            let _ = sink.send(r.encode());
        };
        match request {
            Request::Submit(spec) => match self.submit(*spec) {
                Ok(job) => send(Response::Submitted { job }),
                Err(reason) => send(Response::Rejected { reason }),
            },
            Request::Status(job) => match self.registry.get(job) {
                Some(record) => send(Response::Status {
                    job,
                    phase: record.phase().name().to_string(),
                    best: record.best_energy(),
                    age_ms: record.age().as_millis() as u64,
                }),
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Cancel(job) => match self.registry.get(job) {
                Some(record) => {
                    let phase = record.request_cancel();
                    send(Response::CancelAck {
                        job,
                        phase: phase.name().to_string(),
                    });
                }
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Result(job) => match self.registry.get(job) {
                // Responds now if terminal, otherwise when the job ends.
                Some(record) => record.add_watcher(sink.clone(), WatchKind::ResultOnly),
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Subscribe(job) => match self.registry.get(job) {
                Some(record) => record.add_watcher(sink.clone(), WatchKind::Subscribe),
                None => send(Response::Error {
                    job: Some(job),
                    reason: "no such job".into(),
                }),
            },
            Request::Stats => send(self.stats()),
            Request::Ping => send(Response::Pong),
        }
    }
}

/// A running server: accept thread + worker pool over shared state.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl Server {
    /// Bind and start serving. `addr` may use port 0 for an ephemeral port
    /// (see [`Server::local_addr`]).
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(JobRegistry::new());
        let queue = Arc::new(JobQueue::new(config.queue_capacity));
        let pool = WorkerPool::spawn(config.workers, Arc::clone(&queue), Arc::clone(&registry));
        let state = Arc::new(ServerState {
            registry,
            queue,
            config,
            shutting_down: AtomicBool::new(false),
        });
        let accept_state = Arc::clone(&state);
        let accept_handle = std::thread::Builder::new()
            .name("dabs-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_state.shutting_down.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            let state = Arc::clone(&accept_state);
                            let _ = std::thread::Builder::new()
                                .name("dabs-conn".into())
                                .spawn(move || handle_connection(stream, &state));
                        }
                        Err(_) => continue,
                    }
                }
            })?;
        Ok(Server {
            state,
            addr,
            accept_handle: Some(accept_handle),
            pool: Some(pool),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process embedding (benchmarks, tests).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Block forever serving connections (`dabs serve`).
    pub fn run_forever(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }

    /// Graceful stop: refuse new work, cancel live jobs, drain the workers,
    /// and join every runtime thread.
    pub fn shutdown(mut self) {
        self.state.shutting_down.store(true, Ordering::Relaxed);
        self.state.queue.close();
        self.state.registry.stop_all();
        // Wake the blocking accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

/// Reader side of one connection; spawns the paired writer thread.
fn handle_connection(stream: TcpStream, state: &Arc<ServerState>) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<String>();
    let writer = std::thread::Builder::new()
        .name("dabs-conn-writer".into())
        .spawn(move || {
            let mut out = write_half;
            while let Ok(line) = rx.recv() {
                if out
                    .write_all(line.as_bytes())
                    .and_then(|()| out.write_all(b"\n"))
                    .and_then(|()| out.flush())
                    .is_err()
                {
                    break; // peer gone; senders see the drop via send errors
                }
            }
        });

    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Request::parse_line(line) {
            Ok(request) => state.dispatch(request, &tx),
            Err(reason) => {
                let _ = tx.send(Response::Error { job: None, reason }.encode());
            }
        }
    }
    // Reader done (peer closed): dropping `tx` ends the writer once every
    // watcher-held clone is gone too.
    drop(tx);
    if let Ok(w) = writer {
        let _ = w.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSpec;
    use std::time::Duration;

    fn server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_capacity: 8,
            },
        )
        .expect("bind ephemeral")
    }

    fn job(seed: u64, batches: u64) -> JobSpec {
        JobSpec {
            problem: ProblemSpec::random(18, seed),
            seed,
            max_batches: Some(batches),
            ..JobSpec::default()
        }
    }

    #[test]
    fn in_process_submit_executes_to_done() {
        let srv = server();
        let id = srv.state().submit(job(1, 100)).unwrap();
        let record = srv.state().registry.get(id).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(30)));
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase.name(), "done");
        assert!(result.unwrap().batches >= 100);
        srv.shutdown();
    }

    #[test]
    fn submit_validates_and_rejects() {
        let srv = server();
        let unbounded = JobSpec {
            max_batches: None,
            ..job(1, 0)
        };
        assert!(srv.state().submit(unbounded).is_err());
        let past_deadline = JobSpec {
            deadline_unix_ms: Some(1),
            ..job(1, 10)
        };
        let err = srv.state().submit(past_deadline).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        srv.shutdown();
    }

    #[test]
    fn rejected_jobs_leave_no_registry_trace() {
        let srv = server();
        let err = srv
            .state()
            .submit(JobSpec {
                deadline_unix_ms: Some(1),
                ..job(2, 10)
            })
            .unwrap_err();
        assert!(err.contains("deadline"));
        let (queued, running, terminal) = srv.state().registry.phase_counts();
        assert_eq!((queued, running, terminal), (0, 0, 0));
        srv.shutdown();
    }

    #[test]
    fn shutdown_is_prompt_even_with_queued_work() {
        let srv = server();
        // More work than the two workers finish instantly, then shut down.
        for seed in 0..6 {
            let _ = srv.state().submit(job(seed, 50));
        }
        let t0 = std::time::Instant::now();
        srv.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "shutdown hung: {:?}",
            t0.elapsed()
        );
    }
}
