//! The serving core: shared state, admission, dispatch, and the bound
//! server.
//!
//! Connection model (PR 9): one epoll-driven event-loop thread
//! (`dabs-net`, see [`crate::event_loop`]) owns every socket — accept,
//! non-blocking reads, line framing, dispatch, and write flushing. Each
//! connection's outbound is a queue of encoded lines behind a
//! [`LineSink`]; everything that wants to talk to a connection — the
//! dispatcher, a job's incumbent fan-out, a terminal notification — just
//! enqueues and wakes the loop, so slow solvers never block on slow
//! sockets and a dead connection is discovered at flush time and pruned.
//!
//! With [`ServerConfig::wal_dir`] set, admission and terminals are
//! recorded in a durable job log ([`crate::wal`]); [`Server::bind`]
//! replays it so queued/running jobs survive a crash.

use crate::admission::{RateConfig, TenantRateLimiter, DEFAULT_TENANT};
use crate::chaos::FaultPlan;
use crate::event_loop::{self, NetHandle};
use crate::job::{JobPhase, JobRegistry, Registered, WatchKind};
use crate::obs::net_obs;
use crate::pool::ElasticPool;
use crate::protocol::{ErrorCode, JobId, Request, Response, PROTOCOL_FEATURES, PROTOCOL_VERSION};
use crate::queue::AdmissionError;
use crate::sink::LineSink;
use crate::spec::JobSpec;
use crate::wal::{Wal, WalRecord};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Runtime knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Solver worker threads (`W`): the concurrent-solve ceiling.
    pub workers: usize,
    /// Admission bound, in *units* (the stealable slices jobs decompose
    /// into; a plain job is at least one unit).
    pub queue_capacity: usize,
    /// Directory for the durable job log; `None` (the default) serves
    /// purely in memory, exactly as before PR 9.
    pub wal_dir: Option<PathBuf>,
    /// Per-tenant admission rate limit; `None` (the default) never
    /// throttles.
    pub rate: Option<RateConfig>,
    /// Seeded fault-injection plan (`serve --chaos`). `None` also consults
    /// the `DABS_CHAOS` env var at bind, so tests can arm a storm without
    /// plumbing config.
    pub chaos: Option<Arc<FaultPlan>>,
    /// Keep admitting jobs while the job log is degraded (write/fsync
    /// errors): durability is declared lost instead of refusing submits
    /// with `wal_degraded`.
    pub allow_volatile: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 256,
            wal_dir: None,
            rate: None,
            chaos: None,
            allow_volatile: false,
        }
    }
}

/// Per-connection protocol context: what `hello` negotiated. In-process
/// callers use `ConnCtx::default()` — a v1 connection with no tenant.
#[derive(Debug, Clone)]
pub struct ConnCtx {
    /// Negotiated protocol version (1 until a `hello` arrives).
    pub version: u64,
    /// Tenant named by `hello`, the admission bucket for submits whose
    /// spec does not name its own.
    pub tenant: Option<String>,
}

impl Default for ConnCtx {
    fn default() -> Self {
        Self {
            version: 1,
            tenant: None,
        }
    }
}

/// A successful admission, as the typed in-process API reports it.
#[derive(Debug)]
pub struct Admitted {
    pub job: JobId,
    /// True when an idempotency key collapsed this submit onto an earlier
    /// job — `job` is then the original id and nothing new was admitted.
    pub duplicate: bool,
    /// The original job's terminal `done` line, when a duplicate resolved
    /// to an already-finished job.
    pub terminal: Option<Response>,
}

/// A refused admission: the stable code plus human-readable detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitError {
    pub code: ErrorCode,
    pub reason: String,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.reason)
    }
}

/// State shared by every connection and worker.
pub struct ServerState {
    pub registry: Arc<JobRegistry>,
    pub pool: Arc<ElasticPool>,
    pub config: ServerConfig,
    limiter: TenantRateLimiter,
    wal: Option<Arc<Wal>>,
    shutting_down: AtomicBool,
    /// Fault plan shared with the event loop's accept/read/write hooks.
    pub(crate) chaos: Option<Arc<FaultPlan>>,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("config", &self.config)
            .field("registry", &self.registry)
            .finish()
    }
}

impl ServerState {
    /// Admission, stringly-typed: the pre-v2 in-process API, kept for
    /// embedders and tests. Thin wrapper over [`ServerState::admit`].
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, String> {
        self.admit(spec, &ConnCtx::default())
            .map(|a| a.job)
            .map_err(|e| e.reason)
    }

    /// Admission: validate, rate-limit, collapse idempotent duplicates,
    /// register, hand the record to the pool, and log the admit. On
    /// refusal the record is evicted so rejected jobs leave no trace — in
    /// the registry or the job log.
    pub fn admit(&self, spec: JobSpec, ctx: &ConnCtx) -> Result<Admitted, SubmitError> {
        if self.shutting_down.load(Ordering::Relaxed) {
            return Err(SubmitError {
                code: ErrorCode::ShuttingDown,
                reason: "server is shutting down".into(),
            });
        }
        if !self.config.allow_volatile && self.wal.as_ref().is_some_and(|w| w.is_degraded()) {
            // Declared degradation: the job log cannot currently persist
            // records, so refusing admission is the honest move. The code
            // is retryable — the flusher keeps retrying the sync and clears
            // the flag once the disk recovers.
            return Err(SubmitError {
                code: ErrorCode::WalDegraded,
                reason: "job log is degraded; retry later or start the server with \
                         --allow-volatile to accept non-durable admission"
                    .into(),
            });
        }
        let tenant = spec
            .tenant
            .as_deref()
            .or(ctx.tenant.as_deref())
            .unwrap_or(DEFAULT_TENANT);
        if !self.limiter.try_admit(tenant) {
            net_obs().rate_limited.inc();
            return Err(SubmitError {
                code: ErrorCode::RateLimited,
                reason: format!("tenant {tenant:?} is over its admission rate"),
            });
        }
        spec.validate().map_err(|reason| SubmitError {
            code: ErrorCode::BadSpec,
            reason,
        })?;
        let record = match self.registry.register_keyed(spec) {
            Registered::Duplicate(original) => {
                if original.is_quarantined() {
                    // A poison job is refused re-execution, not silently
                    // collapsed onto its (failed) original.
                    return Err(SubmitError {
                        code: ErrorCode::Quarantined,
                        reason: format!(
                            "job {} is quarantined after repeated unit panics",
                            original.id
                        ),
                    });
                }
                net_obs().duplicate_submits.inc();
                return Ok(Admitted {
                    job: original.id,
                    duplicate: true,
                    terminal: original.terminal_line(),
                });
            }
            Registered::New(record) => record,
        };
        match self.pool.submit(&record) {
            Ok(()) => {
                if let Some(wal) = &self.wal {
                    wal.append(&WalRecord::Admit {
                        job: record.id,
                        spec: record.spec.clone(),
                    });
                }
                Ok(Admitted {
                    job: record.id,
                    duplicate: false,
                    terminal: None,
                })
            }
            Err(e) => {
                self.registry.evict(record.id);
                let code = match e {
                    AdmissionError::Full { .. } => ErrorCode::OverCapacity,
                    AdmissionError::PastDeadline { .. } => ErrorCode::PastDeadline,
                    AdmissionError::Closed => ErrorCode::ShuttingDown,
                    AdmissionError::Shed => ErrorCode::Shed,
                };
                Err(SubmitError {
                    code,
                    reason: e.to_string(),
                })
            }
        }
    }

    /// Full observability snapshot: solver hot-loop counters, pool
    /// scheduler counters and latency histograms, serving-layer and job-log
    /// counters, plus job-phase and occupancy gauges — one metric set,
    /// served by the `metrics` verb.
    pub fn metrics(&self) -> dabs_core::MetricSet {
        use dabs_core::{Direction, Metric};
        let mut set = dabs_core::MetricSet::new();
        dabs_core::solver_obs().metrics_into(&mut set);
        crate::obs::pool_obs().metrics_into(&mut set);
        net_obs().metrics_into(&mut set);
        let (queued, running, finished) = self.registry.phase_counts();
        let gauges = self.pool.gauges();
        let up = Direction::HigherIsBetter;
        set.push(Metric::new("jobs.queued", queued as f64, "count", up));
        set.push(Metric::new("jobs.running", running as f64, "count", up));
        set.push(Metric::new("jobs.finished", finished as f64, "count", up));
        set.push(Metric::new(
            "pool.workers",
            gauges.workers as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "pool.busy_workers",
            gauges.busy as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "pool.queued_units",
            gauges.queued_units as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "pool.live_workers",
            self.pool.live_workers() as f64,
            "count",
            up,
        ));
        set.push(Metric::new(
            "pool.brownout",
            u64::from(gauges.brownout) as f64,
            "count",
            Direction::LowerIsBetter,
        ));
        set.push(Metric::new(
            "trace.dropped",
            dabs_obs::global().dropped() as f64,
            "count",
            Direction::LowerIsBetter,
        ));
        set
    }

    /// Declared health: `draining` while shutting down, `degraded` when the
    /// job log cannot persist or the pool is shedding load (with the
    /// reasons listed), `ok` otherwise. Served by the `health` verb so
    /// load balancers and retrying clients can act on the server's own
    /// judgment instead of probing for symptoms.
    pub fn health(&self) -> Response {
        let mut reasons = Vec::new();
        let status = if self.shutting_down.load(Ordering::Relaxed) {
            reasons.push("shutting_down".to_string());
            "draining"
        } else {
            if self.wal.as_ref().is_some_and(|w| w.is_degraded()) {
                reasons.push("wal_degraded".to_string());
            }
            if self.pool.gauges().brownout {
                reasons.push("brownout".to_string());
            }
            if reasons.is_empty() {
                "ok"
            } else {
                "degraded"
            }
        };
        Response::Health {
            status: status.to_string(),
            reasons,
        }
    }

    fn stats(&self) -> Response {
        let (queued, running, finished) = self.registry.phase_counts();
        let gauges = self.pool.gauges();
        Response::Stats {
            queued,
            running,
            finished,
            workers: gauges.workers,
            queue_capacity: self.pool.capacity() as u64,
            busy_workers: gauges.busy,
            queued_units: gauges.queued_units,
            steals: gauges.steals,
            splits: gauges.splits,
        }
    }

    /// Handle one request, pushing any responses onto the connection's
    /// outbound sink. `sink` may also be registered for future lines
    /// (result waits, subscriptions). `ctx` carries (and `hello` mutates)
    /// the connection's negotiated protocol state.
    pub fn dispatch(&self, request: Request, sink: &Arc<dyn LineSink>, ctx: &mut ConnCtx) {
        let send = |r: Response| {
            let _ = sink.send_line(r.encode());
        };
        let no_such_job = |job: JobId| Response::Error {
            job: Some(job),
            code: ErrorCode::NoSuchJob,
            reason: "no such job".into(),
        };
        match request {
            Request::Hello { version, tenant } => {
                ctx.version = version.clamp(1, PROTOCOL_VERSION);
                if tenant.is_some() {
                    ctx.tenant = tenant;
                }
                send(Response::Hello {
                    version: ctx.version,
                    features: PROTOCOL_FEATURES.iter().map(|f| f.to_string()).collect(),
                });
            }
            Request::Submit(spec) => match self.admit(*spec, ctx) {
                Ok(admitted) => send(Response::Submitted {
                    job: admitted.job,
                    duplicate: admitted.duplicate,
                }),
                Err(e) => send(Response::Rejected {
                    code: e.code,
                    reason: e.reason,
                }),
            },
            Request::Status(job) => match self.registry.get(job) {
                Some(record) => send(Response::Status {
                    job,
                    phase: record.phase().name().to_string(),
                    best: record.best_energy(),
                    age_ms: record.age().as_millis() as u64,
                }),
                None => send(no_such_job(job)),
            },
            Request::Cancel(job) => match self.registry.get(job) {
                Some(record) => {
                    let phase = record.request_cancel();
                    send(Response::CancelAck {
                        job,
                        phase: phase.name().to_string(),
                    });
                }
                None => send(no_such_job(job)),
            },
            Request::Result(job) => match self.registry.get(job) {
                // Responds now if terminal, otherwise when the job ends.
                Some(record) => record.add_watcher(Arc::clone(sink), WatchKind::ResultOnly),
                None => send(no_such_job(job)),
            },
            Request::Subscribe(job) => match self.registry.get(job) {
                Some(record) => record.add_watcher(Arc::clone(sink), WatchKind::Subscribe),
                None => send(no_such_job(job)),
            },
            Request::Stats => send(self.stats()),
            Request::Metrics => send(Response::Metrics {
                metrics: Box::new(self.metrics()),
            }),
            Request::Timeline(job) => match self.registry.get(job) {
                Some(record) => {
                    let (events, dropped) = record.timeline_snapshot();
                    send(Response::Timeline {
                        job,
                        events,
                        dropped,
                    });
                }
                None => send(no_such_job(job)),
            },
            Request::Ping => send(Response::Pong),
            Request::Health => send(self.health()),
        }
    }
}

/// A running server: event-loop thread + elastic pool over shared state.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    net: Option<NetHandle>,
}

impl Server {
    /// Bind and start serving. `addr` may use port 0 for an ephemeral port
    /// (see [`Server::local_addr`]). With a `wal_dir` configured, any
    /// existing job log is replayed first: terminal jobs re-register as
    /// history (late `result` requests and idempotency keys still
    /// resolve), and jobs that were queued or running at crash time are
    /// re-admitted before the listener accepts its first connection.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let registry = Arc::new(JobRegistry::new());
        let chaos = config.chaos.clone().or_else(FaultPlan::from_env);
        let pool = Arc::new(ElasticPool::spawn_with_chaos(
            config.workers,
            config.queue_capacity,
            chaos.clone(),
        ));

        let wal = match &config.wal_dir {
            Some(dir) => {
                let (wal, replay) = Wal::open_with_chaos(dir, chaos.clone())?;
                let wal = Arc::new(wal);
                // 1. Terminal history first, with no hook installed: these
                //    records are already in the (just-compacted) log, so
                //    their finish() must not append again.
                for t in replay.terminals {
                    let record = registry.register_with_id(t.job, t.spec);
                    if replay.quarantined.contains(&t.job) {
                        record.restore_quarantine();
                    }
                    record.finish(t.phase, t.result, t.error);
                }
                // 2. Hooks next: every terminal and quarantine from here on
                //    is logged.
                let hook_wal = Arc::clone(&wal);
                registry.set_terminal_hook(Arc::new(move |job, phase, result, error| {
                    hook_wal.append(&WalRecord::Terminal {
                        job,
                        phase,
                        result: result.cloned().map(Box::new),
                        error: error.map(String::from),
                    });
                }));
                let quarantine_wal = Arc::clone(&wal);
                registry.set_quarantine_hook(Arc::new(move |job| {
                    quarantine_wal.append(&WalRecord::Quarantine { job });
                }));
                // 3. Re-admit jobs that were live at crash time. Their
                //    admit records survived compaction; a refusal now
                //    (deadline passed while down, pool full) goes terminal
                //    through the hook, so the log stays truthful. A job
                //    quarantined before the crash stays refused: it fails
                //    terminally instead of getting another chance to kill
                //    workers.
                for (job, spec) in replay.live {
                    let record = registry.register_with_id(job, spec);
                    if replay.quarantined.contains(&job) {
                        record.restore_quarantine();
                        record.finish(
                            JobPhase::Failed,
                            None,
                            Some("job quarantined after repeated unit panics".into()),
                        );
                        continue;
                    }
                    match pool.submit(&record) {
                        Ok(()) => {}
                        Err(AdmissionError::PastDeadline { .. }) => record.finish(
                            JobPhase::Expired,
                            None,
                            Some("deadline passed before restart replay".into()),
                        ),
                        Err(e) => record.finish(JobPhase::Failed, None, Some(e.to_string())),
                    }
                }
                Some(wal)
            }
            None => None,
        };

        let state = Arc::new(ServerState {
            registry,
            pool,
            limiter: TenantRateLimiter::new(config.rate),
            wal,
            config,
            shutting_down: AtomicBool::new(false),
            chaos,
        });
        let net = event_loop::spawn(listener, Arc::clone(&state))?;
        Ok(Server {
            state,
            addr,
            net: Some(net),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for in-process embedding (benchmarks, tests).
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Block forever serving connections (`dabs serve`).
    pub fn run_forever(mut self) {
        if let Some(net) = self.net.take() {
            net.join();
        }
    }

    /// Graceful stop: refuse new work, trip every live job's stop flag
    /// (running units observe it at their next batch), stop dispatch so the
    /// workers drain still-queued units in revoked mode, join the pool —
    /// at which point every job is terminal and its `done` lines are
    /// queued — then give the event loop a short flush window before
    /// closing every socket. With a WAL, all appended records are synced
    /// before return.
    pub fn shutdown(mut self) {
        self.state.shutting_down.store(true, Ordering::Relaxed);
        self.state.registry.stop_all();
        self.state.pool.close();
        self.state.pool.join();
        if let Some(net) = self.net.take() {
            net.shutdown();
        }
        if let Some(wal) = &self.state.wal {
            wal.flush();
        }
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("addr", &self.addr).finish()
    }
}

/// Upper bound on one request line. Large enough for an `inline` problem
/// spec of any size this repo handles, small enough that a client streaming
/// bytes without a newline cannot grow a line buffer unboundedly and OOM
/// the server past the bounded-admission-queue guarantee.
pub const MAX_REQUEST_LINE_BYTES: usize = 4 * 1024 * 1024;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSpec;
    use std::net::TcpStream;
    use std::time::Duration;

    fn server() -> Server {
        Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 2,
                queue_capacity: 8,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral")
    }

    fn job(seed: u64, batches: u64) -> JobSpec {
        JobSpec {
            problem: ProblemSpec::random(18, seed),
            seed,
            max_batches: Some(batches),
            ..JobSpec::default()
        }
    }

    #[test]
    fn in_process_submit_executes_to_done() {
        let srv = server();
        let id = srv.state().submit(job(1, 100)).unwrap();
        let record = srv.state().registry.get(id).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(30)));
        let (phase, result, _) = record.snapshot();
        assert_eq!(phase.name(), "done");
        assert!(result.unwrap().batches >= 100);
        srv.shutdown();
    }

    #[test]
    fn submit_validates_and_rejects() {
        let srv = server();
        let unbounded = JobSpec {
            max_batches: None,
            ..job(1, 0)
        };
        assert!(srv.state().submit(unbounded).is_err());
        let past_deadline = JobSpec {
            deadline_unix_ms: Some(1),
            ..job(1, 10)
        };
        let err = srv.state().submit(past_deadline).unwrap_err();
        assert!(err.contains("deadline"), "{err}");
        srv.shutdown();
    }

    #[test]
    fn typed_admit_carries_stable_codes() {
        let srv = server();
        let err = srv
            .state()
            .admit(
                JobSpec {
                    deadline_unix_ms: Some(1),
                    ..job(1, 10)
                },
                &ConnCtx::default(),
            )
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::PastDeadline);
        srv.shutdown();
    }

    #[test]
    fn rejected_jobs_leave_no_registry_trace() {
        let srv = server();
        let err = srv
            .state()
            .submit(JobSpec {
                deadline_unix_ms: Some(1),
                ..job(2, 10)
            })
            .unwrap_err();
        assert!(err.contains("deadline"));
        let (queued, running, terminal) = srv.state().registry.phase_counts();
        assert_eq!((queued, running, terminal), (0, 0, 0));
        srv.shutdown();
    }

    #[test]
    fn duplicate_idempotency_key_collapses_and_resolves_result() {
        let srv = server();
        let spec = JobSpec {
            idempotency_key: Some("in-proc-1".into()),
            ..job(3, 50)
        };
        let first = srv
            .state()
            .admit(spec.clone(), &ConnCtx::default())
            .unwrap();
        assert!(!first.duplicate);
        let record = srv.state().registry.get(first.job).unwrap();
        assert!(record.wait_terminal(Duration::from_secs(30)));
        let dup = srv.state().admit(spec, &ConnCtx::default()).unwrap();
        assert!(dup.duplicate);
        assert_eq!(dup.job, first.job);
        assert!(
            matches!(dup.terminal, Some(Response::Done { .. })),
            "terminal result must ride along for finished duplicates"
        );
        srv.shutdown();
    }

    #[test]
    fn rate_limited_submit_gets_the_retryable_code() {
        let srv = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                workers: 1,
                queue_capacity: 64,
                rate: Some(RateConfig {
                    rate_per_sec: 0.001,
                    burst: 1.0,
                }),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert!(srv.state().admit(job(1, 5), &ConnCtx::default()).is_ok());
        let err = srv
            .state()
            .admit(job(2, 5), &ConnCtx::default())
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::RateLimited);
        // A different tenant is unaffected.
        let other = ConnCtx {
            tenant: Some("other".into()),
            ..ConnCtx::default()
        };
        assert!(srv.state().admit(job(3, 5), &other).is_ok());
        srv.shutdown();
    }

    #[test]
    fn hello_negotiates_version_and_tenant() {
        let srv = server();
        let (tx, rx) = std::sync::mpsc::channel();
        let sink: Arc<dyn LineSink> = Arc::new(tx);
        let mut ctx = ConnCtx::default();
        srv.state().dispatch(
            Request::Hello {
                version: 99,
                tenant: Some("acme".into()),
            },
            &sink,
            &mut ctx,
        );
        assert_eq!(ctx.version, PROTOCOL_VERSION, "server caps the version");
        assert_eq!(ctx.tenant.as_deref(), Some("acme"));
        match Response::parse_line(&rx.try_recv().unwrap()).unwrap() {
            Response::Hello { version, features } => {
                assert_eq!(version, PROTOCOL_VERSION);
                assert!(features.iter().any(|f| f == "idempotency"), "{features:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        srv.shutdown();
    }

    #[test]
    fn oversized_request_line_drops_the_connection_with_an_error() {
        use std::io::{BufRead, BufReader, Write};
        let srv = server();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        // Flood well past the cap with no newline. The server must consume
        // (and discard) the excess before closing — unread bytes at close
        // would RST the socket and destroy the error line in flight.
        for _ in 0..3 {
            conn.write_all(&vec![b'x'; MAX_REQUEST_LINE_BYTES]).unwrap();
        }
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut lines = BufReader::new(conn).lines();
        let reply = lines.next().expect("error line before close").unwrap();
        assert!(reply.contains("exceeds"), "{reply}");
        assert!(reply.contains("line_too_long"), "{reply}");
        assert!(lines.next().is_none(), "connection must be closed");
        srv.shutdown();
    }

    #[test]
    fn oversized_line_closes_promptly_despite_live_subscription() {
        use std::io::{BufRead, BufReader, Write};
        let srv = server();
        // A job that stays alive well past the assertion window, so its
        // watcher list keeps holding this connection's sink.
        let id = srv
            .state()
            .submit(JobSpec {
                time_ms: Some(10_000),
                max_batches: None,
                ..job(4, 0)
            })
            .unwrap();
        let mut conn = TcpStream::connect(srv.local_addr()).unwrap();
        conn.write_all(format!("{{\"op\":\"subscribe\",\"job\":{id}}}\n").as_bytes())
            .unwrap();
        conn.write_all(&vec![b'y'; MAX_REQUEST_LINE_BYTES + 1])
            .unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let t0 = std::time::Instant::now();
        let mut saw_error = false;
        for line in BufReader::new(conn).lines() {
            let Ok(line) = line else { break };
            // Incumbent lines may legitimately precede the error.
            saw_error |= line.contains("exceeds");
        }
        assert!(saw_error, "error line never arrived");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "socket stayed open behind a live subscription: {:?}",
            t0.elapsed()
        );
        srv.shutdown();
    }

    #[test]
    fn health_reports_ok_then_draining() {
        let srv = server();
        match srv.state().health() {
            Response::Health { status, reasons } => {
                assert_eq!(status, "ok");
                assert!(reasons.is_empty(), "{reasons:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        srv.state().shutting_down.store(true, Ordering::Relaxed);
        match srv.state().health() {
            Response::Health { status, reasons } => {
                assert_eq!(status, "draining");
                assert_eq!(reasons, vec!["shutting_down".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
        srv.state().shutting_down.store(false, Ordering::Relaxed);
        srv.shutdown();
    }

    #[test]
    fn degraded_wal_refuses_submits_unless_volatile() {
        // Every fsync fails (uncapped): the WAL goes degraded at the first
        // admit and stays there, so the second admit must be refused with
        // the retryable wal_degraded code — except under --allow-volatile.
        let plan = Arc::new(FaultPlan::parse("seed=1,wal_fsync=1").unwrap());
        let dir = std::env::temp_dir().join(format!("dabs-degraded-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let srv = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                wal_dir: Some(dir.clone()),
                chaos: Some(plan),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert!(srv.state().admit(job(1, 20), &ConnCtx::default()).is_ok());
        let t0 = std::time::Instant::now();
        while !srv.state().wal.as_ref().unwrap().is_degraded() {
            assert!(t0.elapsed() < Duration::from_secs(10), "never degraded");
            std::thread::sleep(Duration::from_millis(5));
        }
        match srv.state().health() {
            Response::Health { status, reasons } => {
                assert_eq!(status, "degraded");
                assert!(reasons.contains(&"wal_degraded".to_string()), "{reasons:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        let err = srv
            .state()
            .admit(job(2, 20), &ConnCtx::default())
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::WalDegraded);
        srv.shutdown();

        // Same permanently-broken disk, but volatile admission was opted
        // into: submits keep landing.
        let plan = Arc::new(FaultPlan::parse("seed=1,wal_fsync=1").unwrap());
        let volatile = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                wal_dir: Some(dir.clone()),
                chaos: Some(plan),
                allow_volatile: true,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert!(volatile
            .state()
            .admit(job(3, 20), &ConnCtx::default())
            .is_ok());
        let t0 = std::time::Instant::now();
        while !volatile.state().wal.as_ref().unwrap().is_degraded() {
            assert!(t0.elapsed() < Duration::from_secs(10), "never degraded");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(volatile
            .state()
            .admit(job(4, 20), &ConnCtx::default())
            .is_ok());
        volatile.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_is_prompt_even_with_queued_work() {
        let srv = server();
        // More work than the two workers finish instantly, then shut down.
        for seed in 0..6 {
            let _ = srv.state().submit(job(seed, 50));
        }
        let t0 = std::time::Instant::now();
        srv.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "shutdown hung: {:?}",
            t0.elapsed()
        );
    }
}
