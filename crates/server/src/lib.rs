//! `dabs-server` — a multi-tenant solve-job runtime for the DABS engine.
//!
//! The paper's architecture is a long-lived search engine: pools, islands,
//! adaptive operator selection. This crate adds the layer that turns it from
//! a one-shot CLI process into a service:
//!
//! * **Elastic pool** ([`ElasticPool`]) — `W` long-lived solver workers
//!   over per-worker unit deques: jobs decompose at admission into
//!   stealable *units* (slices of the batch budget, cube-seeded starts for
//!   large instances), idle workers steal the most urgent queued unit, and
//!   a running unit splits off half its remaining budget when the pool goes
//!   idle. Admission is bounded and unit-granular; jobs with already-passed
//!   deadlines are refused at the door and re-checked at dequeue.
//! * **Job lifecycle** ([`JobRecord`]) — per-job [`StopFlag`] cancellation
//!   (honored between batches), incumbent broadcast between units of the
//!   same job, streamed incumbents to subscribers, and terminal
//!   notifications for waiting clients; a job's terminal phase is the fold
//!   of its unit outcomes.
//! * **Line protocol** ([`Request`]/[`Response`]) — newline-delimited JSON
//!   over plain TCP: `submit`, `status`, `cancel`, `result`, `subscribe`,
//!   `stats`, `ping`. See `docs/PROTOCOL.md` for the wire reference.
//! * **Reference client** ([`Client`]) — the blocking client used by
//!   `dabs loadgen`, the throughput benchmark, and the integration tests.
//!
//! ```no_run
//! use dabs_server::{Client, JobSpec, ProblemSpec, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! let job = client
//!     .submit(&JobSpec {
//!         problem: ProblemSpec::random(64, 7),
//!         max_batches: Some(1_000),
//!         ..JobSpec::default()
//!     })
//!     .unwrap();
//! let outcome = client.wait_result(job).unwrap();
//! println!("energy {}", outcome.result.unwrap().energy);
//! server.shutdown();
//! ```

mod admission;
mod chaos;
mod client;
mod event_loop;
mod job;
mod metrics;
mod obs;
mod pool;
mod protocol;
mod queue;
mod server;
mod sink;
mod spec;
mod wal;

pub use admission::{RateConfig, TenantRateLimiter};
pub use chaos::{chaos_hit, FaultPlan, FaultSite};
pub use client::{Client, ClientBuilder, ClientError, JobOutcome, SubmitAck};
pub use dabs_core::StopFlag;
pub use job::{
    JobPhase, JobRecord, JobRegistry, QuarantineHook, Registered, TerminalHook, WatchKind,
    QUARANTINE_PANIC_THRESHOLD,
};
pub use metrics::{drive_fleet, percentile, LatencySummary, PoolLoad};
pub use obs::{
    net_obs, pool_obs, timeline_to_chrome, NetObs, PoolObs, TimelineEvent, TimelineKind,
};
pub use pool::{execute, ElasticPool, PoolGauges, MIN_UNIT_BATCHES};
pub use protocol::{
    ErrorCode, JobId, ProtocolError, Request, Response, PROTOCOL_FEATURES, PROTOCOL_VERSION,
};
pub use queue::{AdmissionError, JobQueue};
pub use server::{Server, ServerConfig, ServerState};
pub use sink::LineSink;
pub use spec::{
    now_unix_ms, ExecMode, JobSpec, ProblemSpec, MAX_BLOCKS, MAX_DEVICES, MAX_PROBLEM_N,
    MAX_QAP_SIZE, MAX_UNITS_PER_JOB,
};
pub use wal::{ReplayedTerminal, Wal, WalRecord, WalReplay};
